//! Reliability-layer integration tests: seeded loss injection, the
//! ack/retransmit/dedup transport, and the stall watchdog.
//!
//! The properties under test mirror the layer's contract (`DESIGN.md`,
//! "Reliability layer"):
//!
//! * Seeded loss replays: the same seed drops the same messages and yields a
//!   byte-identical delivery trace; a different seed yields a different one.
//! * Applications are loss-transparent: SOR and matmul at 8 and 16 nodes
//!   produce bit-identical results under 1% and 5% seeded loss across 16
//!   seeds each, with zero watchdog stalls and observable retransmissions.
//! * With retransmission disabled, total loss produces a structured
//!   `StallReport` from every node — never a hang.
//! * At zero loss the transport is inert by default, and forcing it on costs
//!   only the 8-byte id/ack frame plus the occasional standalone ack.
//!
//! CI additionally runs this binary with `MUNIN_LOSS=0.02` and a fixed
//! engine seed; the `env_configured_loss` test below picks that up through
//! the apps' default `EngineConfig::from_env()` path.

use std::time::Duration;

use munin::apps::{matmul, sor};
use munin::sim::{CostModel, EngineConfig, FaultPlan, Network, NodeClock, NodeId};
use munin::{AccessMode, MuninConfig, MuninError, MuninProgram, SharingAnnotation};

const LOSS_1PCT: u32 = 10_000;
const LOSS_5PCT: u32 = 50_000;
const SEEDS: u64 = 16;

/// Wall-clock retransmit pacing for the loss-stress runs. The default 20 ms
/// is tuned for interactive diagnosis; at 1 ms a 16-node run recovers its
/// dropped messages in well under a second.
const FAST_PACING: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Seeded loss replays byte-identical delivery traces (engine level).
// ---------------------------------------------------------------------------

/// Scripted lossy exchange: three single-threaded endpoints, every node
/// sends ten rounds to both peers, then each inbox is drained. Returns the
/// delivery-trace digest, the drop count, and the per-node delivered payload
/// sequences.
fn scripted_lossy_run(seed: u64) -> (u64, u64, Vec<Vec<u64>>) {
    let faults = FaultPlan::none().with_loss(200_000); // 20%: drops certain
    let mut net: Network<u64> = Network::with_engine(
        3,
        CostModel::fast_test(),
        EngineConfig::seeded(seed).with_faults(faults).with_trace(),
    );
    let endpoints: Vec<_> = (0..3)
        .map(|i| net.endpoint(i, NodeClock::new()).unwrap())
        .collect();
    for round in 0..10u64 {
        for (me, (tx, _)) in endpoints.iter().enumerate() {
            for peer in 0..3 {
                if peer != me {
                    let bytes = 64 * (1 + (me as u64 + round) % 3);
                    tx.send(NodeId::new(peer), "round", bytes, round * 3 + me as u64)
                        .unwrap();
                }
            }
        }
    }
    let delivered: Vec<Vec<u64>> = endpoints
        .iter()
        .map(|(_, rx)| {
            let mut got = Vec::new();
            while let Ok(Some((_, v))) = rx.try_recv() {
                got.push(v);
            }
            got
        })
        .collect();
    let engine = net.engine();
    (
        engine.trace_digest(),
        engine.stats().messages_dropped,
        delivered,
    )
}

#[test]
fn lossy_delivery_replays_byte_identical_traces() {
    let (digest_a, dropped_a, seq_a) = scripted_lossy_run(41);
    let (digest_b, dropped_b, seq_b) = scripted_lossy_run(41);
    assert!(
        dropped_a > 0,
        "20% loss over 60 messages must drop something"
    );
    assert_eq!(
        dropped_a, dropped_b,
        "same seed must drop the same messages"
    );
    assert_eq!(digest_a, digest_b, "same seed must replay the same trace");
    assert_eq!(seq_a, seq_b, "same seed must deliver identical sequences");

    let (digest_c, _, _) = scripted_lossy_run(42);
    assert_ne!(
        digest_a, digest_c,
        "the loss schedule must depend on the seed"
    );
}

// ---------------------------------------------------------------------------
// Applications are loss-transparent: bit-identical results, zero stalls,
// observable retransmissions.
// ---------------------------------------------------------------------------

/// Runs SOR once with seeded loss and once loss-free under the same seed,
/// demands bit-identical grids and a stall-free lossy run, and returns the
/// lossy run's `(messages_dropped, retransmits)`.
fn sor_loss_vs_clean(seed: u64, loss_ppm: u32, procs: usize) -> (u64, u64) {
    sor_loss_vs_clean_mode(seed, loss_ppm, procs, AccessMode::Explicit)
}

/// [`sor_loss_vs_clean`] with a selectable access-detection mode, so the
/// loss-recovery contract is also proven over real `mprotect`/`SIGSEGV`
/// write traps.
fn sor_loss_vs_clean_mode(seed: u64, loss_ppm: u32, procs: usize, mode: AccessMode) -> (u64, u64) {
    let (rows, cols, iters) = (32, 12, 3);
    let run = |ppm: u32| {
        let mut p = sor::SorParams::small(rows, cols, iters, procs);
        p.engine = EngineConfig::seeded(seed).with_faults(FaultPlan::none().with_loss(ppm));
        p.retransmit_pacing = Some(FAST_PACING);
        p.access_mode = mode;
        sor::run_munin(p, CostModel::fast_test()).unwrap()
    };
    let (clean_m, clean_grid) = run(0);
    assert_eq!(
        clean_m.stats.retransmits, 0,
        "transport must stay off at zero loss"
    );
    let (m, grid) = run(loss_ppm);
    assert_eq!(
        grid, clean_grid,
        "SOR grid must be bit-identical under loss (seed {seed}, {loss_ppm} ppm, {procs} nodes)"
    );
    assert_eq!(
        m.stats.watchdog_stalls, 0,
        "no stalls allowed under recoverable loss (seed {seed})"
    );
    if m.engine.messages_dropped > 0 {
        assert!(
            m.stats.retransmits > 0,
            "a completed run with drops implies retransmissions (seed {seed})"
        );
    }
    (m.engine.messages_dropped, m.stats.retransmits)
}

/// Matmul analogue of [`sor_loss_vs_clean`].
fn matmul_loss_vs_clean(seed: u64, loss_ppm: u32, procs: usize) -> (u64, u64) {
    matmul_loss_vs_clean_mode(seed, loss_ppm, procs, AccessMode::Explicit)
}

/// [`matmul_loss_vs_clean`] with a selectable access-detection mode.
fn matmul_loss_vs_clean_mode(
    seed: u64,
    loss_ppm: u32,
    procs: usize,
    mode: AccessMode,
) -> (u64, u64) {
    let n = 16;
    let run = |ppm: u32| {
        let mut p = matmul::MatmulParams::small(n, procs);
        p.engine = EngineConfig::seeded(seed).with_faults(FaultPlan::none().with_loss(ppm));
        p.retransmit_pacing = Some(FAST_PACING);
        p.access_mode = mode;
        matmul::run_munin(p, CostModel::fast_test()).unwrap()
    };
    let (clean_m, clean_c) = run(0);
    assert_eq!(
        clean_m.stats.retransmits, 0,
        "transport must stay off at zero loss"
    );
    assert_eq!(
        clean_c,
        matmul::serial(n),
        "loss-free matmul must match serial"
    );
    let (m, c) = run(loss_ppm);
    assert_eq!(
        c, clean_c,
        "matmul product must be bit-identical under loss (seed {seed}, {loss_ppm} ppm, {procs} nodes)"
    );
    assert_eq!(
        m.stats.watchdog_stalls, 0,
        "no stalls allowed (seed {seed})"
    );
    if m.engine.messages_dropped > 0 {
        assert!(
            m.stats.retransmits > 0,
            "drops imply retransmissions (seed {seed})"
        );
    }
    (m.engine.messages_dropped, m.stats.retransmits)
}

/// Sums a seed sweep and demands the sweep as a whole both dropped and
/// retransmitted messages (individual seeds may legitimately draw no loss on
/// a small run; sixteen together cannot).
fn assert_sweep_exercised(label: &str, totals: (u64, u64)) {
    let (dropped, retransmits) = totals;
    assert!(
        dropped > 0,
        "{label}: no seed drew any loss — sweep proved nothing"
    );
    assert!(
        retransmits > 0,
        "{label}: loss occurred but nothing was retransmitted"
    );
}

#[test]
fn sor_bit_identical_under_1pct_loss_8_nodes() {
    let mut totals = (0, 0);
    for seed in 0..SEEDS {
        let (d, r) = sor_loss_vs_clean(seed, LOSS_1PCT, 8);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("sor 1% x8", totals);
}

#[test]
fn sor_bit_identical_under_5pct_loss_16_nodes() {
    let mut totals = (0, 0);
    for seed in 0..SEEDS {
        let (d, r) = sor_loss_vs_clean(seed, LOSS_5PCT, 16);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("sor 5% x16", totals);
}

#[test]
fn matmul_bit_identical_under_1pct_loss_8_nodes() {
    let mut totals = (0, 0);
    for seed in 0..SEEDS {
        let (d, r) = matmul_loss_vs_clean(seed, LOSS_1PCT, 8);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("matmul 1% x8", totals);
}

#[test]
fn matmul_bit_identical_under_5pct_loss_16_nodes() {
    let mut totals = (0, 0);
    for seed in 0..SEEDS {
        let (d, r) = matmul_loss_vs_clean(seed, LOSS_5PCT, 16);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("matmul 5% x16", totals);
}

// ---------------------------------------------------------------------------
// VM-trap mode: the same loss-recovery contract over real SIGSEGV write
// traps. Retransmission delivers duplicate data messages, and under VM traps
// applying a redundant update walks the mprotect/trap machinery — the
// recovery path must stay bit-identical there too.
// ---------------------------------------------------------------------------

/// Skip guard for the VM-trap subset: clean no-op off Linux/x86_64.
fn vm_available() -> bool {
    if AccessMode::vm_supported() {
        true
    } else {
        eprintln!("skipping: AccessMode::VmTraps requires 64-bit Linux on x86_64");
        false
    }
}

#[test]
fn sor_vm_mode_bit_identical_under_loss() {
    if !vm_available() {
        return;
    }
    let mut totals = (0, 0);
    for seed in 0..8u64 {
        let (d, r) = sor_loss_vs_clean_mode(seed, LOSS_1PCT, 8, AccessMode::VmTraps);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("sor vm 1% x8", totals);
}

#[test]
fn matmul_vm_mode_bit_identical_under_loss() {
    if !vm_available() {
        return;
    }
    let mut totals = (0, 0);
    for seed in 0..8u64 {
        let (d, r) = matmul_loss_vs_clean_mode(seed, LOSS_5PCT, 8, AccessMode::VmTraps);
        totals = (totals.0 + d, totals.1 + r);
    }
    assert_sweep_exercised("matmul vm 5% x8", totals);
}

// ---------------------------------------------------------------------------
// Watchdog: unrecoverable loss fails loudly with a structured report.
// ---------------------------------------------------------------------------

#[test]
fn total_loss_without_retransmission_raises_structured_stall_report() {
    // Every message is dropped and the reliability layer is explicitly
    // disabled, so the run cannot make progress past its start barrier. The
    // watchdog must convert that into a per-node `MuninError::Stalled` with
    // a populated report — and the run must terminate, not hang.
    let cfg = MuninConfig::fast_test(2)
        .with_engine(EngineConfig::seeded(7).with_faults(FaultPlan::none().with_loss(1_000_000)))
        .with_reliability(false)
        .with_watchdog(Duration::from_millis(300));
    let mut prog = MuninProgram::new(cfg);
    let v = prog.declare::<i32>("v", 4, SharingAnnotation::WriteShared);
    let sync = prog.create_barrier("sync");
    prog.user_init(move |init| init.write_slice(&v, 0, &[0; 4]).unwrap());
    let report = prog
        .run(move |ctx| {
            ctx.wait_at_barrier(sync)?;
            Ok(())
        })
        .unwrap();

    assert_eq!(report.results.len(), 2);
    for (node, result) in report.results.iter().enumerate() {
        match result {
            Err(MuninError::Stalled(stall)) => {
                assert_eq!(stall.node.as_usize(), node);
                assert_eq!(stall.op, "barrier", "both nodes stall at the start barrier");
                assert!(stall.sync_id.is_some());
                assert!(
                    stall.waited >= Duration::from_millis(300),
                    "watchdog fired before its deadline: {:?}",
                    stall.waited
                );
                assert_eq!(
                    stall.frontiers.len(),
                    2,
                    "report must cover every destination"
                );
                assert!(
                    stall.unacked.is_empty(),
                    "transport is off: no unacked bookkeeping expected"
                );
                // Flight-recorder forensics: the run driver extends the
                // report with every node's event tail, and each node did at
                // least arrive at the barrier, so no tail can be empty.
                assert_eq!(
                    stall.last_events.len(),
                    2,
                    "stall forensics must cover every node"
                );
                for peer in 0..2 {
                    let (_, events) = stall
                        .last_events
                        .iter()
                        .find(|(n, _)| *n == peer)
                        .expect("tail for every node");
                    assert!(
                        !events.is_empty(),
                        "node {peer} recorded no events before the stall"
                    );
                    assert!(
                        events.iter().all(|e| e.starts_with("t=")),
                        "tails hold rendered events: {events:?}"
                    );
                }
                assert!(
                    stall
                        .last_events
                        .iter()
                        .find(|(n, _)| *n == node)
                        .map(|(_, evs)| evs.iter().any(|e| e.contains("stall")))
                        .unwrap_or(false),
                    "the stalled node's own tail must include the stall event"
                );
                // The rendered report surfaces the forensics section.
                let rendered = stall.to_string();
                assert!(rendered.contains("last events N0"));
                assert!(rendered.contains("last events N1"));
            }
            other => panic!("node {node}: expected a stall report, got {other:?}"),
        }
    }
    let stalls: u64 = report.stats.iter().map(|s| s.watchdog_stalls).sum();
    assert!(
        stalls >= 2,
        "every node's watchdog must have fired (got {stalls})"
    );
}

// ---------------------------------------------------------------------------
// CI path: loss configured through the environment (`MUNIN_LOSS=0.02`).
// ---------------------------------------------------------------------------

#[test]
fn sor_completes_under_env_configured_loss() {
    // Default engine config — CI injects `MUNIN_LOSS=0.02` here; without the
    // variable this is an ordinary loss-free run. Either way the grid must
    // match the serial reference and no stall may occur.
    let (rows, cols, iters, procs) = (16, 10, 2, 4);
    let reference = sor::serial(rows, cols, iters);
    let mut p = sor::SorParams::small(rows, cols, iters, procs);
    p.retransmit_pacing = Some(FAST_PACING);
    let (m, grid) = sor::run_munin(p, CostModel::fast_test()).unwrap();
    let max_err = grid
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_err < 1e-12,
        "SOR diverged under env-configured engine: {max_err}"
    );
    assert_eq!(m.stats.watchdog_stalls, 0);
    if m.engine.messages_dropped > 0 {
        assert!(
            m.stats.retransmits > 0,
            "env-injected loss must be recovered"
        );
    }
}

// ---------------------------------------------------------------------------
// Zero-loss honesty: the transport is inert unless asked for, and forcing it
// on costs only the id/ack framing.
// ---------------------------------------------------------------------------

#[test]
fn transport_is_inert_without_loss() {
    let mut p = matmul::MatmulParams::small(12, 4);
    p.engine = EngineConfig::seeded(3); // explicit loss-free engine
    let (m, c) = matmul::run_munin(p, CostModel::fast_test()).unwrap();
    assert_eq!(c, matmul::serial(12));
    assert_eq!(m.stats.retransmits, 0);
    assert_eq!(m.stats.net_acks_sent, 0);
    assert_eq!(m.stats.dup_msgs_dropped, 0);
    assert_eq!(m.stats.watchdog_stalls, 0);
}

#[test]
fn reliability_framing_overhead_is_bounded_at_zero_loss() {
    // The same seeded run with the transport forced on and off. The frame
    // adds 8 modelled bytes per wrapped message; standalone acks only appear
    // when a lane owes acks with no reverse traffic to ride. On this
    // data-carrying SOR size the measured byte overhead is ~5.3% (see
    // `BENCH_rel.json`); smaller control-message-dominated runs pay a higher
    // relative tax because the 8-byte frame is fixed per message.
    let run = |reliability: bool| {
        let mut p = sor::SorParams::small(64, 48, 3, 8);
        p.engine = EngineConfig::seeded(9);
        p.reliability = Some(reliability);
        // Pacing far beyond the run's wall time: ack-flush ticks still fire
        // (timers run whenever a node goes idle), but a slow CI machine can
        // never trigger a spurious wall-clock retransmission.
        p.retransmit_pacing = Some(Duration::from_secs(30));
        sor::run_munin(p, CostModel::fast_test()).unwrap()
    };
    let (m_off, grid_off) = run(false);
    let (m_on, grid_on) = run(true);
    assert_eq!(
        grid_on, grid_off,
        "forcing the transport on must not change results"
    );
    assert_eq!(
        m_on.stats.retransmits, 0,
        "nothing is lost, nothing may be resent"
    );
    assert_eq!(m_on.stats.dup_msgs_dropped, 0);

    let bytes_off = m_off.engine.bytes_sent;
    let bytes_on = m_on.engine.bytes_sent;
    assert!(
        bytes_on <= bytes_off + bytes_off * 8 / 100,
        "reliability framing exceeded its byte-overhead budget: {bytes_off} -> {bytes_on}"
    );
    let msgs_off = m_off.engine.messages_sent;
    let msgs_on = m_on.engine.messages_sent;
    let acks = m_on.stats.net_acks_sent;
    assert!(
        msgs_on <= msgs_off + acks,
        "unexpected extra messages beyond standalone acks: {msgs_off} -> {msgs_on} (acks {acks})"
    );
    // Accounting: the extra bytes can never exceed the per-message frame tax
    // (8 bytes per wrapped message) plus the standalone acks (40 bytes each).
    // They can come in *under* it when ack piggybacking lets the protocol
    // coalesce traffic it would otherwise have sent separately.
    let frame_budget = 8 * (msgs_on - acks) + 40 * acks;
    assert!(
        bytes_on - bytes_off <= frame_budget,
        "byte delta {} exceeds the frame accounting budget {frame_budget}",
        bytes_on - bytes_off
    );
}
