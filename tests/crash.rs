//! Crash-fault chaos suite: seeded node-crash injection against the full DSM
//! runtime.
//!
//! The contract under test (`DESIGN.md`, "Crash-fault tolerance"): every run
//! with an injected crash *terminates* — either it completes and the
//! surviving results are exactly the serial reference, or it fails fast with
//! a structured [`MuninError::NodeDown`] — and a crash plan that never
//! triggers leaves the delivery schedule byte-identical to no plan at all.
//! Zero hangs, zero watchdog stalls, no third outcome.
//!
//! Like `tests/stress_schedules.rs`, the suite deliberately runs in the
//! default parallel test harness: host-scheduling noise changes wall-clock
//! interleavings, and the outcome contract must hold under all of them.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use munin::apps::{matmul, sor};
use munin::sim::{
    Cluster, CostModel, CrashSpec, CrashTrigger, EngineConfig, FaultPlan, NodeId, TraceEntry,
};
use munin::{MuninConfig, MuninError, MuninProgram, SharingAnnotation};

/// Failure-detection window for the chaos runs: small enough that degraded
/// runs confirm deaths in well under a second, large enough that a busy
/// parallel test harness cannot starve a *live* peer into a false positive
/// (heartbeats go out every `DETECT/4` = 75 ms).
const DETECT: Duration = Duration::from_millis(300);

/// Retransmit pacing for the auto-enabled reliability layer, dropped from
/// the default so freeze-window gaps are re-covered quickly.
const PACING: Duration = Duration::from_millis(1);

/// Stall watchdog: in this suite a watchdog stall is always a bug (the
/// failure detector must resolve every crash-induced wait first), so the
/// window only bounds how long a regression takes to fail.
const WATCHDOG: Duration = Duration::from_secs(25);

/// Wall-clock ceiling for one degraded run. Far above the expected cost of a
/// handful of sequential 300 ms detection waits, but below `WATCHDOG`: a run
/// that overruns this either wedged outright or is crawling through
/// stall-recovery paths it should never enter.
const RUN_WALL_CEILING: Duration = Duration::from_secs(20);

/// A permanent crash of `node` at `trigger`.
fn crash(node: usize, trigger: CrashTrigger) -> FaultPlan {
    FaultPlan::none().with_crash(CrashSpec {
        node,
        trigger,
        until_ns: 0,
    })
}

/// The sweep victim for a seed: never node 0 — the root homes every object,
/// lock, and barrier, so killing it loses the run by construction and
/// exercises only the fail-fast path. Roadmap-level root fail-over is out of
/// scope for this layer.
fn victim(nodes: usize, seed: u64) -> usize {
    1 + (seed as usize) % (nodes - 1)
}

/// Runs 8- or 16-node SOR with one injected crash and asserts the
/// terminate-correct-or-fail-fast contract.
fn sor_crash_case(nodes: usize, seed: u64, trigger: CrashTrigger) {
    let (rows, cols, iters) = (20, 12, 3);
    let reference = sor::serial(rows, cols, iters);
    let mut params = sor::SorParams::small(rows, cols, iters, nodes);
    params.engine = EngineConfig::seeded(seed).with_faults(crash(victim(nodes, seed), trigger));
    params.detect = Some(DETECT);
    params.retransmit_pacing = Some(PACING);
    params.watchdog = Some(WATCHDOG);
    let start = Instant::now();
    let outcome = sor::run_munin(params, CostModel::fast_test());
    let wall = start.elapsed();
    assert!(
        wall < RUN_WALL_CEILING,
        "SOR nodes={nodes} seed={seed} {trigger:?}: run took {wall:?} — \
         crash-induced waits must resolve via detection, not crawl"
    );
    match outcome {
        Ok((_m, grid)) => {
            // A fully-Ok run means every node — the victim included — got
            // through the whole protocol (shutdown handshake and all) before
            // its crash point, so no data was lost: results must be exact.
            let max_err = grid
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_err < 1e-12,
                "SOR nodes={nodes} seed={seed} {trigger:?}: run completed but \
                 diverged from serial (max error {max_err})"
            );
        }
        Err(MuninError::NodeDown { node, .. }) => {
            assert!(
                node.as_usize() < nodes,
                "NodeDown blames nonexistent node {node}"
            );
        }
        Err(other) => panic!(
            "SOR nodes={nodes} seed={seed} {trigger:?}: expected completion or \
             NodeDown, got {other:?}"
        ),
    }
}

/// Matmul variant of [`sor_crash_case`].
fn matmul_crash_case(nodes: usize, seed: u64, trigger: CrashTrigger) {
    let n = 16;
    let reference = matmul::serial(n);
    let mut params = matmul::MatmulParams::small(n, nodes);
    params.engine = EngineConfig::seeded(seed).with_faults(crash(victim(nodes, seed), trigger));
    params.detect = Some(DETECT);
    params.retransmit_pacing = Some(PACING);
    params.watchdog = Some(WATCHDOG);
    let start = Instant::now();
    let outcome = matmul::run_munin(params, CostModel::fast_test());
    let wall = start.elapsed();
    assert!(
        wall < RUN_WALL_CEILING,
        "matmul nodes={nodes} seed={seed} {trigger:?}: run took {wall:?}"
    );
    match outcome {
        Ok((_m, c)) => assert_eq!(
            c, reference,
            "matmul nodes={nodes} seed={seed} {trigger:?}: run completed but \
             diverged from serial"
        ),
        Err(MuninError::NodeDown { node, .. }) => {
            assert!(node.as_usize() < nodes);
        }
        Err(other) => panic!(
            "matmul nodes={nodes} seed={seed} {trigger:?}: expected completion \
             or NodeDown, got {other:?}"
        ),
    }
}

#[test]
fn sor_crash_sweep_8_nodes() {
    for seed in [1u64, 2, 3] {
        // 600 µs virtual lands mid-protocol for this instance; delivery #40
        // lands mid-startup. Both must yield a terminating outcome.
        sor_crash_case(8, seed, CrashTrigger::VirtTime(600_000));
        sor_crash_case(8, seed, CrashTrigger::MsgCount(40));
    }
}

#[test]
fn matmul_crash_sweep_8_nodes() {
    for seed in [1u64, 2, 3] {
        matmul_crash_case(8, seed, CrashTrigger::VirtTime(400_000));
        matmul_crash_case(8, seed, CrashTrigger::MsgCount(60));
    }
}

#[test]
fn sor_crash_sweep_16_nodes() {
    for seed in [5u64, 9] {
        sor_crash_case(16, seed, CrashTrigger::VirtTime(700_000));
    }
    sor_crash_case(16, 12, CrashTrigger::MsgCount(80));
}

#[test]
fn matmul_crash_sweep_16_nodes() {
    for seed in [4u64, 11] {
        matmul_crash_case(16, seed, CrashTrigger::MsgCount(100));
    }
    matmul_crash_case(16, 6, CrashTrigger::VirtTime(500_000));
}

/// Replicated data survives its owner's death: node 2 produces a value whose
/// updates reach replicas before the crash, so after detection the directory
/// re-homes the object to the lowest-id surviving holder and every survivor
/// still reads the produced value. The victim's own result is the structured
/// `NodeDown` it hits once the cluster stops talking to it.
#[test]
fn replicated_value_survives_owner_crash() {
    let victim = 2usize;
    // 5 ms virtual: far past the µs-scale produce/replicate phase, inside
    // the 10 ms compute stretch below.
    let faults = crash(victim, CrashTrigger::VirtTime(5_000_000));
    let cfg = MuninConfig::fast_test(4)
        .with_engine(EngineConfig::seeded(7).with_faults(faults))
        .with_detect(DETECT)
        .with_retransmit_pacing(PACING)
        .with_watchdog(WATCHDOG);
    let mut prog = MuninProgram::new(cfg);
    let value = prog.declare::<i64>("value", 1, SharingAnnotation::ProducerConsumer);
    let produced = prog.create_barrier("produced");
    let replicated = prog.create_barrier("replicated");
    prog.user_init(move |init| init.write(&value, 0, 0).unwrap());
    let start = Instant::now();
    let report = prog
        .run(move |ctx| {
            let me = ctx.node_id();
            if me == victim {
                ctx.write(&value, 0, 42)?;
            }
            ctx.wait_at_barrier(produced)?;
            if me != victim {
                // Pull a replica while the producer is still alive.
                let got: i64 = ctx.read(&value, 0)?;
                if got != 42 {
                    return Err(MuninError::ProtocolViolation(
                        "replica read stale value before the crash",
                    ));
                }
            }
            ctx.wait_at_barrier(replicated)?;
            // Carry virtual time across the 5 ms crash point (timers never
            // advance clocks, so only compute/traffic moves virtual time).
            ctx.compute(1_000_000); // 10 ms at 10 ns/op
            ctx.read(&value, 0)
        })
        .unwrap();
    let wall = start.elapsed();
    assert!(wall < RUN_WALL_CEILING, "recovery run took {wall:?}");

    for (node, result) in report.results.iter().enumerate() {
        if node == victim {
            assert!(
                matches!(result, Err(MuninError::NodeDown { .. })),
                "victim must fail fast once isolated, got {result:?}"
            );
        } else {
            assert_eq!(
                *result.as_ref().unwrap_or_else(|e| panic!(
                    "survivor {node} must recover the replicated value, got {e:?}"
                )),
                42,
                "survivor {node} read the wrong value after recovery"
            );
        }
    }
    let stats = report.stats_total();
    assert!(stats.peers_dead >= 1, "no node confirmed the death");
    assert!(
        stats.objects_rehomed >= 1,
        "directory never re-homed the dead owner's object"
    );
    assert_eq!(
        stats.watchdog_stalls, 0,
        "detection must resolve every wait before the watchdog"
    );
}

/// Sole-copy loss fails fast: a Migratory object's only copy dies with its
/// owner, so the next access reports `NodeDown` naming the dead node and the
/// lost object — within a small multiple of the detection window, not after
/// a watchdog timeout.
#[test]
fn sole_copy_loss_fails_fast_with_lost_objects() {
    let victim = 2usize;
    let faults = crash(victim, CrashTrigger::VirtTime(5_000_000));
    let cfg = MuninConfig::fast_test(4)
        .with_engine(EngineConfig::seeded(13).with_faults(faults))
        .with_detect(DETECT)
        .with_retransmit_pacing(PACING)
        .with_watchdog(WATCHDOG);
    let mut prog = MuninProgram::new(cfg);
    let value = prog.declare::<i64>("sole", 1, SharingAnnotation::Migratory);
    let taken = prog.create_barrier("taken");
    prog.user_init(move |init| init.write(&value, 0, 0).unwrap());
    let start = Instant::now();
    let report = prog
        .run(move |ctx| {
            let me = ctx.node_id();
            if me == victim {
                // Migratory write: the single copy migrates to the victim
                // and every other copy is invalidated.
                ctx.write(&value, 0, 7)?;
            }
            ctx.wait_at_barrier(taken)?;
            ctx.compute(1_000_000); // cross the 5 ms crash point
            if me == 0 {
                // The only copy died with the victim: this access must
                // surface the loss, not hang.
                ctx.read(&value, 0)?;
            }
            Ok(0i64)
        })
        .unwrap();
    let wall = start.elapsed();
    // Fail-fast bound: one detection window to confirm the death plus the
    // victim's own (concurrent) shutdown detection, with scheduling slack
    // for a loaded test harness — nowhere near the 25 s watchdog.
    assert!(
        wall < 2 * DETECT + Duration::from_secs(2),
        "sole-copy loss took {wall:?} to surface; want ~2x the {DETECT:?} \
         detection window"
    );
    match &report.results[0] {
        Err(MuninError::NodeDown { node, lost_objects }) => {
            assert_eq!(node.as_usize(), victim, "NodeDown blames wrong node");
            assert!(
                !lost_objects.is_empty(),
                "sole-copy loss must name the lost object"
            );
        }
        other => panic!("node 0 must observe NodeDown with lost objects, got {other:?}"),
    }
    assert_eq!(report.stats_total().watchdog_stalls, 0);
}

/// Freeze-thaw: a node that drops off the network for a 250 µs virtual
/// window (a GC pause, in paper terms) is covered by the reliability layer —
/// the forwarded fetch that died in the window is retransmitted once a
/// survivor's clock passes the thaw, and the run completes with the right
/// value everywhere and nobody declared dead.
///
/// The detection window is set far beyond the run so no heartbeat probes
/// fire: an idle-tick probe stamped with a post-window clock would drag the
/// reader's virtual clock past the freeze and the drop under test would
/// (legitimately) never happen. The freeze is then driven purely by the
/// deterministic virtual timeline below.
#[test]
fn freeze_thaw_recovers_without_casualties() {
    let frozen = 2usize;
    let faults = FaultPlan::none().with_crash(CrashSpec {
        node: frozen,
        trigger: CrashTrigger::VirtTime(150_000),
        until_ns: 400_000,
    });
    let cfg = MuninConfig::fast_test(3)
        .with_engine(EngineConfig::seeded(11).with_faults(faults))
        .with_detect(Duration::from_secs(3600))
        .with_retransmit_pacing(PACING)
        .with_watchdog(WATCHDOG);
    let mut prog = MuninProgram::new(cfg);
    let value = prog.declare::<i64>("frozen_owned", 1, SharingAnnotation::Migratory);
    let setup = prog.create_barrier("setup");
    let finale = prog.create_barrier("finale");
    prog.user_init(move |init| init.write(&value, 0, 0).unwrap());
    let report = prog
        .run(move |ctx| {
            let me = ctx.node_id();
            if me == frozen {
                // Take sole ownership before the freeze window opens
                // (setup runs at µs scale, the window at 150 µs).
                ctx.write(&value, 0, 7)?;
            }
            ctx.wait_at_barrier(setup)?;
            match me {
                // The frozen owner computes across its own window, then
                // holds back (wall clock) until the reader's fetch has been
                // forwarded and dropped; its finale arrival then hands node
                // 0 a post-thaw clock, and the next retransmission of the
                // dropped forward gets through.
                2 => {
                    ctx.compute(50_000); // 500 µs — past the thaw
                    std::thread::sleep(Duration::from_millis(100));
                }
                // Node 1 fetches at ~200 µs virtual — inside the window.
                // The request forwards via home node 0 and the hop into the
                // frozen node is dropped.
                1 => ctx.compute(18_000), // 180 µs
                // Node 0 stays below the window start so the first forward
                // is genuinely stamped inside it.
                _ => ctx.compute(8_000), // 80 µs
            }
            if me == 1 {
                let got: i64 = ctx.read(&value, 0)?;
                if got != 7 {
                    return Err(MuninError::ProtocolViolation(
                        "freeze-thaw read returned a stale value",
                    ));
                }
            }
            ctx.wait_at_barrier(finale)?;
            ctx.read(&value, 0)
        })
        .unwrap();
    for (node, result) in report.results.iter().enumerate() {
        assert_eq!(
            *result.as_ref().unwrap_or_else(|e| panic!(
                "freeze-thaw must recover everywhere; node {node} got {e:?}"
            )),
            7
        );
    }
    let stats = report.stats_total();
    assert_eq!(stats.peers_dead, 0, "a 250 µs freeze is not a death");
    assert_eq!(stats.watchdog_stalls, 0);
    assert!(
        stats.retransmits >= 1,
        "the freeze window should have forced at least one retransmission"
    );
}

// ---------------------------------------------------------------------------
// BENCH_crash.json probe: measured rows for the committed benchmark file.
// ---------------------------------------------------------------------------

/// Prints the measurements `BENCH_crash.json` records: detection latency,
/// recovery-walk latency, fail-fast wall time, and the zero-crash overhead
/// of arming detection + an (untriggered) crash plan on an 8-node SOR.
/// Run with `cargo test --release --test crash -- --ignored --nocapture`.
#[test]
#[ignore = "probe for refreshing BENCH_crash.json"]
fn bench_crash_probe() {
    // Detection + recovery latency: the replicated-value program above.
    let victim = 2usize;
    let cfg = MuninConfig::fast_test(4)
        .with_engine(
            EngineConfig::seeded(7).with_faults(crash(victim, CrashTrigger::VirtTime(5_000_000))),
        )
        .with_detect(DETECT)
        .with_retransmit_pacing(PACING)
        .with_watchdog(WATCHDOG);
    let mut prog = MuninProgram::new(cfg);
    let value = prog.declare::<i64>("value", 1, SharingAnnotation::ProducerConsumer);
    let produced = prog.create_barrier("produced");
    let replicated = prog.create_barrier("replicated");
    prog.user_init(move |init| init.write(&value, 0, 0).unwrap());
    let start = Instant::now();
    let report = prog
        .run(move |ctx| {
            if ctx.node_id() == victim {
                ctx.write(&value, 0, 42)?;
            }
            ctx.wait_at_barrier(produced)?;
            if ctx.node_id() != victim {
                ctx.read(&value, 0)?;
            }
            ctx.wait_at_barrier(replicated)?;
            ctx.compute(1_000_000);
            ctx.read(&value, 0)
        })
        .unwrap();
    let wall = start.elapsed();
    let obs = report.obs_total();
    let stats = report.stats_total();
    for kind in ["peer_detect", "peer_recovery"] {
        if let Some(h) = obs.waits.get(kind) {
            eprintln!(
                "{kind}: count={} mean_ms={:.1} p50_ms={:.1} max_ms={:.1}",
                h.count(),
                h.mean_ns() as f64 / 1e6,
                h.p50_ns() as f64 / 1e6,
                h.max_ns() as f64 / 1e6,
            );
        }
    }
    eprintln!(
        "recovery_run: wall_ms={:.0} peers_dead={} objects_rehomed={} \
         copysets_pruned={} heartbeats={} watchdog_stalls={}",
        wall.as_secs_f64() * 1e3,
        stats.peers_dead,
        stats.objects_rehomed,
        stats.copysets_pruned,
        stats.heartbeats_sent,
        stats.watchdog_stalls,
    );

    // Fail-fast wall time: sole-copy loss (NodeDown, not a hang).
    let cfg = MuninConfig::fast_test(4)
        .with_engine(
            EngineConfig::seeded(13).with_faults(crash(victim, CrashTrigger::VirtTime(5_000_000))),
        )
        .with_detect(DETECT)
        .with_retransmit_pacing(PACING)
        .with_watchdog(WATCHDOG);
    let mut prog = MuninProgram::new(cfg);
    let sole = prog.declare::<i64>("sole", 1, SharingAnnotation::Migratory);
    let taken = prog.create_barrier("taken");
    prog.user_init(move |init| init.write(&sole, 0, 0).unwrap());
    let start = Instant::now();
    let report = prog
        .run(move |ctx| {
            if ctx.node_id() == victim {
                ctx.write(&sole, 0, 7)?;
            }
            ctx.wait_at_barrier(taken)?;
            ctx.compute(1_000_000);
            if ctx.node_id() == 0 {
                ctx.read(&sole, 0)?;
            }
            Ok(0i64)
        })
        .unwrap();
    eprintln!(
        "sole_copy_fail_fast: wall_ms={:.0} detect_ms={} first_error={:?}",
        start.elapsed().as_secs_f64() * 1e3,
        DETECT.as_millis(),
        report.first_error(),
    );

    // Zero-crash overhead: 8-node SOR, plain vs armed detector + untriggered
    // crash plan (which also auto-enables the reliability transport).
    let sor_run = |armed: bool| {
        let mut p = sor::SorParams::small(32, 12, 3, 8);
        let mut engine = EngineConfig::seeded(9);
        if armed {
            engine = engine.with_faults(crash(1, CrashTrigger::VirtTime(u64::MAX)));
        }
        p.engine = engine;
        if armed {
            p.detect = Some(DETECT);
        }
        p.retransmit_pacing = Some(PACING);
        sor::run_munin(p, CostModel::fast_test()).unwrap()
    };
    let (m_off, grid_off) = sor_run(false);
    let (m_on, grid_on) = sor_run(true);
    assert_eq!(grid_on, grid_off, "armed detector must not change results");
    eprintln!(
        "zero_crash_overhead: messages {} -> {} bytes {} -> {} \
         virt_elapsed_ms {:.3} -> {:.3} heartbeats={} retransmits={}",
        m_off.engine.messages_sent,
        m_on.engine.messages_sent,
        m_off.engine.bytes_sent,
        m_on.engine.bytes_sent,
        m_off.elapsed.as_nanos() as f64 / 1e6,
        m_on.elapsed.as_nanos() as f64 / 1e6,
        m_on.stats.heartbeats_sent,
        m_on.stats.retransmits,
    );
}

/// Same recv-driven round-gated all-to-all as `tests/stress_schedules.rs`,
/// for proving schedule identity under an untriggered crash plan.
fn traced_alltoall(
    nodes: usize,
    rounds: usize,
    seed: u64,
    faults: FaultPlan,
) -> (Vec<TraceEntry>, u64) {
    let gate = Arc::new(Barrier::new(nodes));
    let cluster: Cluster<u64> = Cluster::new(nodes, CostModel::fast_test())
        .with_engine(EngineConfig::seeded(seed).with_faults(faults).with_trace());
    let report = cluster
        .run(|ctx| {
            let me = ctx.node_id().as_usize();
            for round in 0..rounds {
                for peer in 0..nodes {
                    if peer != me {
                        let bytes = 64 * (1 + ((me + round) % 3) as u64);
                        ctx.sender()
                            .send(
                                NodeId::new(peer),
                                "round",
                                bytes,
                                (round * nodes + me) as u64,
                            )
                            .unwrap();
                    }
                }
                gate.wait();
                for _ in 0..nodes - 1 {
                    ctx.receiver().recv().unwrap();
                }
                gate.wait();
            }
        })
        .unwrap();
    (report.trace, report.trace_digest)
}

/// The zero-crash determinism contract: crashes are evaluated at delivery
/// time, never at submit time, so a plan that never fires must leave the
/// schedule — RNG streams, sequence numbers, traces — byte-identical to no
/// plan at all. Checked against the same pre-shard golden digests
/// `tests/stress_schedules.rs` pins, which predate crash injection entirely.
#[test]
fn untriggered_crash_plan_matches_golden_digests() {
    // (nodes, rounds, seed, jitter_ppm, window_ns, digest) — must stay in
    // sync with PRE_SHARD_GOLDEN_DIGESTS in tests/stress_schedules.rs.
    const GOLDEN: &[(usize, usize, u64, u32, u64, u64)] = &[
        (4, 5, 42, 300_000, 5_000, 0xeca276dab35382ca),
        (4, 5, 7, 300_000, 5_000, 0x353ef95aa8871243),
        (4, 5, 1, 0, 0, 0x9a0cb692375090cb),
        (16, 3, 42, 300_000, 5_000, 0x3a1a40c707d940db),
        (16, 3, 9, 0, 0, 0x42702d6b4a74806d),
    ];
    for &(nodes, rounds, seed, ppm, window, want) in GOLDEN {
        let base = if ppm == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::jittery(ppm, window)
        };
        // A crash armed at the end of virtual time plus a freeze that thaws
        // before it could ever bite: neither may perturb a single delivery.
        let faults = base
            .with_crash(CrashSpec {
                node: 0,
                trigger: CrashTrigger::VirtTime(u64::MAX),
                until_ns: 0,
            })
            .with_crash(CrashSpec {
                node: nodes - 1,
                trigger: CrashTrigger::MsgCount(u64::MAX),
                until_ns: 0,
            });
        let (_, digest) = traced_alltoall(nodes, rounds, seed, faults);
        assert_eq!(
            digest, want,
            "untriggered crash plan perturbed the schedule: nodes={nodes} \
             rounds={rounds} seed={seed} faults=({ppm}ppm,{window}ns) — \
             got {digest:#018x}, want {want:#018x}"
        );
    }
}
