//! Property-based tests on the core data structures and invariants:
//! the twin/diff run-length encoding, copysets, object splitting, the
//! distributed lock state machine, the annotation → parameter table, and the
//! discrete-event delivery engine (ordering and replay determinism).

use proptest::prelude::*;

use munin::dsm::annotation::{ProtocolParams, SharingAnnotation};
use munin::dsm::copyset::CopySet;
use munin::dsm::diff;
use munin::dsm::object::split_sizes;
use munin::dsm::sync::{BarrierState, LockState, RemoteAcquireAction};
use munin::sim::{CostModel, EngineConfig, Network, NodeClock, NodeId, VirtTime};

fn word_buffer(len_words: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u32>(), len_words).prop_map(|words| {
        words
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect::<Vec<u8>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying the encoded diff of `current` vs `twin` to a copy of `twin`
    /// reconstructs `current` exactly, for arbitrary contents.
    #[test]
    fn diff_roundtrip(words in 1usize..64, seed in any::<u64>()) {
        let mut twin = vec![0u8; words * 4];
        let mut current = vec![0u8; words * 4];
        let mut state = seed;
        for i in 0..words {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let old = (state >> 16) as u32;
            let changed = state.is_multiple_of(3);
            twin[i * 4..i * 4 + 4].copy_from_slice(&old.to_le_bytes());
            let new = if changed { old.wrapping_add(1) } else { old };
            current[i * 4..i * 4 + 4].copy_from_slice(&new.to_le_bytes());
        }
        let d = diff::encode(&current, &twin);
        let mut target = twin.clone();
        diff::apply(&d, &mut target).unwrap();
        prop_assert_eq!(target, current);
    }

    /// Diffs of writers that touch disjoint words merge cleanly into the
    /// original in either order (the multiple-writers guarantee).
    #[test]
    fn disjoint_diffs_merge_in_any_order(original in word_buffer(32), mask in any::<u32>()) {
        let words = original.len() / 4;
        let mut writer_a = original.clone();
        let mut writer_b = original.clone();
        for w in 0..words {
            let bit = (mask >> (w % 32)) & 1 == 1;
            let slot = w * 4;
            if bit {
                writer_a[slot] = writer_a[slot].wrapping_add(1);
            } else {
                writer_b[slot] = writer_b[slot].wrapping_add(1);
            }
        }
        let diff_a = diff::encode(&writer_a, &original);
        let diff_b = diff::encode(&writer_b, &original);

        let mut ab = original.clone();
        diff::apply(&diff_a, &mut ab).unwrap();
        diff::apply(&diff_b, &mut ab).unwrap();
        let mut ba = original.clone();
        diff::apply(&diff_b, &mut ba).unwrap();
        diff::apply(&diff_a, &mut ba).unwrap();
        prop_assert_eq!(&ab, &ba);
        // Every word carries exactly one writer's change.
        for w in 0..words {
            let slot = w * 4;
            let expected = original[slot].wrapping_add(1);
            prop_assert_eq!(ab[slot], expected);
        }
    }

    /// The encoded size is bounded: never more than header + per-word data
    /// plus the worst-case run overhead.
    #[test]
    fn encoded_size_is_bounded(current in word_buffer(64), twin in word_buffer(64)) {
        let d = diff::encode(&current, &twin);
        let words = current.len() / 4;
        prop_assert!(d.changed_words() <= words);
        prop_assert!(d.run_count() <= words.div_ceil(2) + 1);
        prop_assert!(d.encoded_bytes() <= 4 + words * 4 + d.run_count() * 8);
    }

    /// The block-skip encoder is bit-identical to the word-by-word reference
    /// encoder on arbitrary buffer pairs (the differential oracle for the
    /// flat wire format).
    #[test]
    fn block_skip_encoder_matches_reference(current in word_buffer(96), twin in word_buffer(96)) {
        let fast = diff::encode(&current, &twin);
        let reference = diff::encode_reference(&current, &twin);
        prop_assert_eq!(fast.as_wire_bytes(), reference.as_wire_bytes());
    }

    /// Wire round-trip: re-framing the encoded bytes with `from_wire` and
    /// applying reconstructs `current` exactly.
    #[test]
    fn wire_round_trip_reconstructs(current in word_buffer(48), twin in word_buffer(48)) {
        let d = diff::encode(&current, &twin);
        let wire: std::sync::Arc<[u8]> = std::sync::Arc::from(d.as_wire_bytes());
        let decoded = diff::Diff::from_wire(wire).expect("encoder output is valid framing");
        let mut target = twin.clone();
        diff::apply(&decoded, &mut target).unwrap();
        prop_assert_eq!(target, current);
    }

    /// Splitting a variable into page-sized objects covers it exactly (up to
    /// word padding) with no object exceeding the page size.
    #[test]
    fn split_sizes_cover_variable(byte_len in 0usize..100_000, page_exp in 3usize..14) {
        let page = (1usize << page_exp).max(4);
        let sizes = split_sizes(byte_len, page, false);
        let total: usize = sizes.iter().sum();
        prop_assert!(total >= byte_len);
        prop_assert!(total < byte_len + 4);
        prop_assert!(sizes.iter().all(|s| *s <= page && *s % 4 == 0 && *s > 0));
    }

    /// Copyset membership behaves like a set over node ids.
    #[test]
    fn copyset_behaves_like_a_set(members in proptest::collection::btree_set(0usize..32, 0..10)) {
        let cs = CopySet::from_nodes(members.iter().map(|n| NodeId::new(*n)));
        for n in 0..32 {
            prop_assert_eq!(cs.contains(NodeId::new(n)), members.contains(&n));
        }
        prop_assert_eq!(cs.len(32), members.len());
        let listed = cs.members(32, None);
        prop_assert_eq!(listed.len(), members.len());
    }

    /// The distributed lock hands ownership to every requester exactly once
    /// and in FIFO order, regardless of when the requests arrive. Queueing
    /// is idempotent: a duplicate acquire (the crash-recovery re-send) must
    /// not queue its sender twice.
    #[test]
    fn lock_queue_is_fifo(requests in proptest::collection::vec(1usize..8, 1..12)) {
        let mut lock = LockState::new(NodeId::new(0), NodeId::new(0));
        prop_assert!(lock.try_local_acquire());
        let mut queued: Vec<NodeId> = Vec::new();
        for r in &requests {
            let node = NodeId::new(*r);
            match lock.handle_remote_acquire(node) {
                RemoteAcquireAction::Queued => {
                    if !queued.contains(&node) {
                        queued.push(node);
                    }
                }
                other => prop_assert!(false, "unexpected action {other:?}"),
            }
        }
        // Release: ownership goes to the first waiter together with the rest
        // of the queue, preserving order.
        if let Some((next, rest)) = lock.release() {
            prop_assert_eq!(next, queued[0]);
            prop_assert_eq!(rest, queued[1..].to_vec());
        } else {
            prop_assert!(queued.is_empty());
        }
    }

    /// The event engine delivers per destination in nondecreasing virtual
    /// time with a stable seeded tie-break: arbitrary send timestamps and
    /// seeds never produce an out-of-order or unstable delivery sequence.
    #[test]
    fn engine_delivers_per_destination_in_nondecreasing_virtual_time(
        sends in proptest::collection::vec(any::<u64>(), 1..80),
        seed in any::<u64>(),
    ) {
        let deliveries = engine_run(&sends, seed);
        let mut last_per_dst = [0u64; ENGINE_NODES];
        for (dst, _src, _payload, arrival_ns) in &deliveries {
            prop_assert!(
                *arrival_ns >= last_per_dst[*dst],
                "destination {dst} delivered {arrival_ns}ns after {}ns",
                last_per_dst[*dst]
            );
            last_per_dst[*dst] = *arrival_ns;
        }
        prop_assert_eq!(deliveries.len(), sends.len());
    }

    /// Replaying the same sends with the same seed yields the identical
    /// delivery order (same sources, payloads, and delivery times); ties in
    /// `deliver_at` are broken identically on every replay.
    #[test]
    fn engine_replay_with_same_seed_is_identical(
        sends in proptest::collection::vec(any::<u64>(), 1..80),
        seed in any::<u64>(),
    ) {
        prop_assert_eq!(engine_run(&sends, seed), engine_run(&sends, seed));
    }

    /// The sharded engine delivers exactly what the pre-shard single-lock
    /// engine delivered: for arbitrary schedules and seeds, the per-
    /// destination sequences match an independent, single-threaded reference
    /// implementation of the documented delivery semantics (lane FIFO clamp,
    /// seeded tie-break, frontier monotonicity, submission seqno) — the
    /// semantics the pre-shard engine's global lock serialized. Sharding is
    /// a lock-domain refactor, not a semantics change.
    #[test]
    fn sharded_engine_matches_single_lock_reference_model(
        sends in proptest::collection::vec(any::<u64>(), 1..80),
        seed in any::<u64>(),
    ) {
        prop_assert_eq!(engine_run(&sends, seed), reference_run(&sends, seed));
    }

    /// A barrier opens exactly when the configured number of parties has
    /// arrived, and is reusable afterwards.
    #[test]
    fn barrier_opens_at_parties(parties in 1usize..16, episodes in 1usize..4) {
        let mut barrier = BarrierState::new(NodeId::new(0), parties);
        for episode in 0..episodes {
            for i in 0..parties {
                let released = barrier.arrive(NodeId::new(i % 4));
                if i + 1 < parties {
                    prop_assert!(released.is_none());
                } else {
                    prop_assert_eq!(released.unwrap().len(), parties);
                }
            }
            prop_assert_eq!(barrier.generation, (episode + 1) as u64);
        }
    }
}

const ENGINE_NODES: usize = 3;

/// Feeds the event engine a sequence of sends decoded from raw words
/// (source, destination, explicit virtual send time, modelled size) and
/// drains every destination, returning the observed delivery sequence as
/// `(dst, src, payload, effective_arrival_ns)` tuples ordered per
/// destination.
fn engine_run(sends: &[u64], seed: u64) -> Vec<(usize, usize, u64, u64)> {
    // A zero cost model makes arrival == send time, maximizing timestamp
    // collisions so the seeded tie-break is actually exercised.
    let mut net: Network<u64> =
        Network::with_engine(ENGINE_NODES, CostModel::zero(), EngineConfig::seeded(seed));
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for i in 0..ENGINE_NODES {
        let (tx, rx) = net.endpoint(i, NodeClock::new()).unwrap();
        txs.push(tx);
        rxs.push(rx);
    }
    for (k, word) in sends.iter().enumerate() {
        let src = (*word % ENGINE_NODES as u64) as usize;
        let dst = ((*word >> 2) % ENGINE_NODES as u64) as usize;
        // Coarse timestamps (multiples of 100ns over a small range) force
        // frequent exact ties between unrelated sends.
        let at = VirtTime::from_nanos(((*word >> 8) % 32) * 100);
        let bytes = (*word >> 16) % 512;
        txs[src]
            .send_at(NodeId::new(dst), "prop", bytes, k as u64, at)
            .unwrap();
    }
    let mut out = Vec::new();
    for (dst, rx) in rxs.iter().enumerate() {
        while let Some((env, payload)) = rx.try_recv().unwrap() {
            out.push((dst, env.src.as_usize(), payload, env.arrival.as_nanos()));
        }
    }
    out
}

/// Independent single-threaded reference model of the engine's delivery
/// semantics, as specified in `DESIGN.md` ("Deterministic event engine") and
/// implemented by the pre-shard single-lock engine: per-lane FIFO clamping in
/// submission order, a SplitMix64 tie-break over `(seed, src, dst,
/// deliver_at)`, global submission sequence numbers as the final key
/// component, and the per-destination frontier clamp at pop time. The
/// constants mirror the spec on purpose — this is the oracle the sharded
/// engine is compared against.
mod reference_model {
    /// SplitMix64 step (the engine's only randomness primitive).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `(deliver_at_ns, tie, seq, src, payload)` — the delivery sort key
    /// plus the message identity.
    type RefScheduled = (u64, u64, u64, usize, u64);

    pub struct RefEngine {
        seed: u64,
        lanes: std::collections::HashMap<(u32, u32), u64>,
        queues: Vec<Vec<RefScheduled>>,
        next_seq: u64,
    }

    impl RefEngine {
        pub fn new(nodes: usize, seed: u64) -> Self {
            RefEngine {
                seed,
                lanes: std::collections::HashMap::new(),
                queues: vec![Vec::new(); nodes],
                next_seq: 0,
            }
        }

        /// Schedules one faultless submission (mirrors `EventEngine::submit`
        /// in `DeliveryMode::VirtualTime` with `FaultPlan::none()`).
        pub fn submit(&mut self, src: usize, dst: usize, arrival_ns: u64, payload: u64) {
            let seq = self.next_seq;
            self.next_seq += 1;
            let last = self.lanes.entry((src as u32, dst as u32)).or_insert(0);
            let arrival_ns = arrival_ns.max(*last);
            *last = arrival_ns;
            let tie = {
                let mut s = self.seed
                    ^ arrival_ns.rotate_left(17)
                    ^ ((src as u64) << 40)
                    ^ ((dst as u64) << 20);
                splitmix64(&mut s)
            };
            self.queues[dst].push((arrival_ns, tie, seq, src, payload));
        }

        /// Drains every destination in `(deliver_at, tie, seq)` order with
        /// the frontier clamp, returning `(dst, src, payload,
        /// effective_arrival_ns)` tuples ordered per destination.
        pub fn drain(mut self) -> Vec<(usize, usize, u64, u64)> {
            let mut out = Vec::new();
            for (dst, mut q) in self.queues.drain(..).enumerate() {
                q.sort();
                let mut frontier = 0u64;
                for (arrival, _tie, _seq, src, payload) in q {
                    frontier = frontier.max(arrival);
                    out.push((dst, src, payload, frontier));
                }
            }
            out
        }
    }
}

/// Runs the same decoded schedule as [`engine_run`] through the reference
/// model.
fn reference_run(sends: &[u64], seed: u64) -> Vec<(usize, usize, u64, u64)> {
    let mut reference = reference_model::RefEngine::new(ENGINE_NODES, seed);
    for (k, word) in sends.iter().enumerate() {
        let src = (*word % ENGINE_NODES as u64) as usize;
        let dst = ((*word >> 2) % ENGINE_NODES as u64) as usize;
        let at = ((*word >> 8) % 32) * 100;
        // CostModel::zero() makes arrival == send time, so `bytes` plays no
        // role in the reference; only the timestamp matters.
        reference.submit(src, dst, at, k as u64);
    }
    reference.drain()
}

#[test]
fn every_annotation_has_consistent_parameters() {
    for ann in SharingAnnotation::ALL {
        let p = ProtocolParams::for_annotation(ann);
        // Only read-only data is non-writable.
        assert_eq!(!p.is_writable(), ann == SharingAnnotation::ReadOnly);
        // Delayed operations imply an update-based protocol in the prototype
        // (the invalidation-based delayed variant was considered but not
        // implemented — Section 3.2).
        if p.allows_delay() {
            assert!(!p.uses_invalidate(), "{ann}: delayed protocols use updates");
        }
        // Multiple writers require updates to be mergeable, i.e. twins.
        if p.allows_multiple_writers() {
            assert!(p.allows_replicas(), "{ann}: multiple writers need replicas");
        }
        // Flush-to-owner only makes sense with a fixed owner.
        if p.flushes_to_owner() {
            assert!(p.has_fixed_owner(), "{ann}: Fl requires FO");
        }
    }
}
