//! Differential tests for the carrier/outbox layer (`MUNIN_PIGGYBACK`).
//!
//! The piggyback path must be *invisible* except in message counts: for
//! every workload and engine seed, `on` and `off` must produce bit-identical
//! results, and `on` must never send more protocol messages than `off`.
//! Seeds include adversarial delay/reorder injection, the load that exposed
//! every protocol race the earlier PRs fixed.

use std::time::{Duration, Instant};

use munin::apps::{matmul, sor, tsp};
use munin::sim::{CostModel, CrashSpec, CrashTrigger, EngineConfig, FaultPlan};
use munin::{AccessMode, MuninError};

/// Same adversarial plan as the stress suite: 20% of messages get up to
/// 20 µs of extra virtual latency or jitter.
const STRESS_FAULTS: FaultPlan = FaultPlan::jittery(200_000, 20_000);

fn sor_run(seed: u64, piggyback: bool, access_mode: AccessMode) -> (Vec<f64>, u64, u64) {
    let mut params = sor::SorParams::small(20, 12, 3, 4);
    params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
    params.piggyback = piggyback;
    params.access_mode = access_mode;
    let (m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
    (grid, m.engine.messages_sent, m.engine.bytes_sent)
}

#[test]
fn sor_piggyback_is_bit_identical_and_strictly_cheaper_across_16_seeds() {
    for seed in 0..16u64 {
        let (on, on_msgs, _) = sor_run(seed, true, AccessMode::Explicit);
        let (off, off_msgs, _) = sor_run(seed, false, AccessMode::Explicit);
        assert_eq!(
            on.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "SOR grids diverged between piggyback on/off under seed {seed}"
        );
        // Messages drop strictly. Bytes are asserted only on the 16-node
        // page-aligned instance below: at this small scale the per-seed
        // payload mix is too noisy for a tight ratio, but the adaptive
        // relay threshold (`MUNIN_RELAY_MAX_BYTES`) bounds the double-transit
        // cost there to <= 1.1x piggyback-off.
        assert!(
            on_msgs < off_msgs,
            "piggybacking must strictly reduce SOR messages (seed {seed}: {on_msgs} vs {off_msgs})"
        );
    }
}

#[test]
fn matmul_piggyback_is_bit_identical_and_strictly_cheaper_across_16_seeds() {
    let reference = matmul::serial(16);
    for seed in 0..16u64 {
        let run = |piggyback: bool| {
            let mut params = matmul::MatmulParams::small(16, 4);
            params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
            params.piggyback = piggyback;
            let (m, c) = matmul::run_munin(params, CostModel::fast_test()).unwrap();
            (c, m.engine.messages_sent)
        };
        let (on, on_msgs) = run(true);
        let (off, off_msgs) = run(false);
        assert_eq!(
            on, reference,
            "matmul diverged with piggyback on, seed {seed}"
        );
        assert_eq!(
            on, off,
            "matmul results diverged between on/off, seed {seed}"
        );
        // Each non-root worker's single result update rides its final
        // barrier arrive instead of a standalone update+ack round.
        assert!(
            on_msgs < off_msgs,
            "piggybacking must strictly reduce matmul messages (seed {seed}: {on_msgs} vs {off_msgs})"
        );
    }
}

#[test]
fn tsp_piggyback_is_result_identical_across_16_seeds() {
    let reference = tsp::serial(8);
    for seed in 0..16u64 {
        let run = |piggyback: bool| {
            let mut params = tsp::TspParams {
                cities: 8,
                ..tsp::TspParams::default_instance(3)
            };
            params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
            params.piggyback = piggyback;
            let (_m, r) = tsp::run_munin(params, CostModel::fast_test()).unwrap();
            r
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(
            on.best_len, reference.best_len,
            "TSP bound wrong, seed {seed}"
        );
        assert_eq!(
            on.best_len, off.best_len,
            "TSP bounds diverged on/off, seed {seed}"
        );
        // No message-count assertion for TSP: its flushes are mostly empty
        // (migratory data rides lock grants in both modes), and the
        // free-running branch-and-bound trajectory makes per-run message
        // counts host-timing dependent in either direction. The economy
        // claims are carried by the SOR and matmul assertions above, whose
        // traffic is phase-structured and seed-deterministic.
    }
}

/// The headline acceptance criterion: at 16 nodes, SOR's total protocol
/// message count drops by at least 20% with piggybacking on AND total bytes
/// stay within 1.1x of piggyback-off, with bit-identical results — in both
/// access-detection modes. The byte bound is what the adaptive relay
/// threshold buys back: before it, the relay's double transit (flusher →
/// barrier owner → destination) cost ~1.5x bytes for the message savings.
fn assert_16_node_sor_saving(access_mode: AccessMode) {
    let (on, on_m) = sor_run_16(true, access_mode);
    let (off, off_m) = sor_run_16(false, access_mode);
    assert_eq!(
        on.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "16-node SOR grids diverged between piggyback on/off"
    );
    let (on_msgs, off_msgs) = (on_m.engine.messages_sent, off_m.engine.messages_sent);
    let drop = 1.0 - on_msgs as f64 / off_msgs as f64;
    assert!(
        drop >= 0.20,
        "16-node SOR must shed >= 20% of its messages ({on_msgs} vs {off_msgs}, drop {:.1}%)",
        drop * 100.0
    );
    let ratio = on_m.engine.bytes_sent as f64 / off_m.engine.bytes_sent as f64;
    assert!(
        ratio <= 1.1,
        "16-node SOR bytes must stay within 1.1x of piggyback-off ({} vs {}, ratio {ratio:.3})",
        on_m.engine.bytes_sent,
        off_m.engine.bytes_sent
    );
    // The threshold mechanism is live: page-scale payloads were bypassed
    // direct-to-destination instead of riding the relay twice...
    assert!(
        on_m.stats.relay_bypassed_bytes > 0,
        "page-scale SOR payloads should trip the relay size threshold"
    );
    // ...and owner-authoritative copyset elision retired broadcast
    // determination rounds for the flusher-owned boundary pages.
    assert!(
        on_m.net.class("copyset_query").msgs < off_m.net.class("copyset_query").msgs,
        "piggybacking must elide owned-object determination broadcasts ({} vs {})",
        on_m.net.class("copyset_query").msgs,
        off_m.net.class("copyset_query").msgs
    );
}

fn sor_run_16(
    piggyback: bool,
    access_mode: AccessMode,
) -> (Vec<f64>, munin::apps::measure::RunMeasurement) {
    // Page-aligned sections like the paper's instance (1024x512 over 8 KB
    // pages): each worker's band is exactly one 512-byte page (4 rows x
    // 16 cols x 8 bytes), so every flushed page has a single writer that
    // also owns it, and enough iterations that the stable producer-consumer
    // phase (where the paper's message-economy claim lives) dominates the
    // one-off first-touch and copyset-determination traffic.
    let mut params = sor::SorParams::small(64, 16, 12, 16);
    params.engine = EngineConfig::seeded(7).with_faults(STRESS_FAULTS);
    params.piggyback = piggyback;
    params.access_mode = access_mode;
    let (m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
    (grid, m)
}

#[test]
fn sixteen_node_sor_sheds_a_fifth_of_its_messages_explicit_mode() {
    assert_16_node_sor_saving(AccessMode::Explicit);
}

#[test]
fn sixteen_node_sor_sheds_a_fifth_of_its_messages_vm_mode() {
    if !AccessMode::vm_supported() {
        eprintln!("skipping: AccessMode::VmTraps requires 64-bit Linux on x86_64");
        return;
    }
    assert_16_node_sor_saving(AccessMode::VmTraps);
}

/// Per-message-kind accounting: the carrier framing must keep class counts
/// meaningful (a carrier counts under its inner class), while the update
/// class collapses into the barrier traffic.
#[test]
fn per_class_engine_counts_reflect_the_carrier_framing() {
    let (_, _, _) = sor_run(3, true, AccessMode::Explicit);
    let mut params = sor::SorParams::small(20, 12, 3, 4);
    params.engine = EngineConfig::seeded(3).with_faults(STRESS_FAULTS);
    params.piggyback = true;
    let (on, _) = sor::run_munin(params, CostModel::fast_test()).unwrap();
    let mut params_off = sor::SorParams::small(20, 12, 3, 4);
    params_off.engine = EngineConfig::seeded(3).with_faults(STRESS_FAULTS);
    params_off.piggyback = false;
    let (off, _) = sor::run_munin(params_off, CostModel::fast_test()).unwrap();
    // Barrier traffic is identical in count — the savings come from updates
    // and acks riding it, not from changing the synchronization protocol.
    assert_eq!(
        on.engine.class("barrier_arrive").msgs,
        off.engine.class("barrier_arrive").msgs
    );
    assert_eq!(
        on.engine.class("barrier_release").msgs,
        off.engine.class("barrier_release").msgs
    );
    assert!(
        on.engine.class("update").msgs < off.engine.class("update").msgs,
        "standalone update messages must collapse into carriers"
    );
    assert!(on.stats.msgs_piggybacked > 0);
    // The kind breakdown sums to the total.
    let sum: u64 = on.engine.per_class.values().map(|v| v.msgs).sum();
    assert_eq!(sum, on.engine.messages_sent);
}

/// The carrier layer under a lossy wire: with 1% seeded message loss and the
/// reliability transport on, piggyback on/off must still produce
/// bit-identical grids across 16 seeds, with zero watchdog stalls — lost
/// carriers (and the relay bundles riding them) are retransmitted like any
/// other frame, and a dropped `RelayFanout`/`RelayForward` must not wedge
/// the origin's ack loop.
#[test]
fn sor_piggyback_survives_one_percent_loss_across_16_seeds() {
    let lossy = |seed: u64, piggyback: bool| {
        let mut params = sor::SorParams::small(20, 12, 3, 4);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS.with_loss(10_000));
        params.piggyback = piggyback;
        params.reliability = Some(true);
        params.retransmit_pacing = Some(Duration::from_millis(1));
        params.watchdog = Some(Duration::from_secs(25));
        let (m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        assert_eq!(
            m.stats.watchdog_stalls, 0,
            "lossy run stalled (seed {seed}, piggyback {piggyback})"
        );
        grid
    };
    for seed in 0..16u64 {
        let on = lossy(seed, true);
        let off = lossy(seed, false);
        assert_eq!(
            on.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "lossy SOR grids diverged between piggyback on/off under seed {seed}"
        );
    }
}

/// Crash during a barrier relay: the barrier owner dies while it may still
/// be holding relay bundles stashed for re-attachment to releases (and, as
/// the root, it homes every object). The terminate-correct-or-NodeDown
/// contract of `tests/crash.rs` must hold with piggybacking on: the run
/// either completes with exact results (crash landed after the protocol
/// finished) or fails fast with a structured `NodeDown` — never a hang or a
/// watchdog stall.
#[test]
fn crash_during_barrier_relay_terminates_or_fails_fast() {
    let (rows, cols, iters, nodes) = (20, 12, 3, 8);
    let reference = sor::serial(rows, cols, iters);
    for trigger in [CrashTrigger::VirtTime(600_000), CrashTrigger::MsgCount(120)] {
        let mut params = sor::SorParams::small(rows, cols, iters, nodes);
        params.engine =
            EngineConfig::seeded(3).with_faults(FaultPlan::none().with_crash(CrashSpec {
                node: 0, // the barrier owner, holding undistributed bundles
                trigger,
                until_ns: 0,
            }));
        params.piggyback = true;
        params.detect = Some(Duration::from_millis(300));
        params.retransmit_pacing = Some(Duration::from_millis(1));
        params.watchdog = Some(Duration::from_secs(25));
        let start = Instant::now();
        let outcome = sor::run_munin(params, CostModel::fast_test());
        let wall = start.elapsed();
        assert!(
            wall < Duration::from_secs(20),
            "{trigger:?}: crash-during-relay run took {wall:?} — must resolve \
             via detection, not a watchdog crawl"
        );
        match outcome {
            Ok((_m, grid)) => {
                let max_err = grid
                    .iter()
                    .zip(&reference)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_err < 1e-12,
                    "{trigger:?}: run completed but diverged (max error {max_err})"
                );
            }
            Err(MuninError::NodeDown { node, .. }) => {
                assert!(node.as_usize() < nodes, "NodeDown blames nonexistent node");
            }
            Err(other) => {
                panic!("{trigger:?}: expected completion or NodeDown, got {other:?}")
            }
        }
    }
}
