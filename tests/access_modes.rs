//! Differential tests proving the two access-detection modes equivalent.
//!
//! `AccessMode::Explicit` (software rights checks) and `AccessMode::VmTraps`
//! (real `mprotect`/SIGSEGV write traps, the paper's actual mechanism) must
//! be *behaviourally identical*: the same application results, bit for bit,
//! and the same protocol activity. These tests run matmul, SOR, and TSP
//! end-to-end in both modes on the same engine seeds and assert exactly
//! that.
//!
//! Which counters are asserted equal follows DESIGN.md ("VM-trap access
//! mode — what the differential tests pin down"):
//!
//! * matmul's entire protocol counter set is schedule-deterministic, so it
//!   is compared wholesale — including `updates_sent` and
//!   `invalidations_sent`.
//! * SOR's update counters (`updates_sent`, `update_bytes_sent`,
//!   `updates_applied`, `updates_healed`) and its advisory
//!   `runtime_errors` (stable-sharing checks) vary run-to-run *within a
//!   single mode* — the producer-consumer copyset becomes `fixed` at a
//!   schedule-dependent flush — so they are excluded for SOR, as are the
//!   copyset-determination counters (`copyset_queries`,
//!   `copyset_query_msgs`): determination runs only for owner-flushed
//!   objects since the owner-cooperative relay, and first-touch ownership
//!   of SOR's boundary rows is itself schedule-dependent (see
//!   [`sor_stable_subset`]). Every other protocol counter is compared
//!   exactly.
//! * TSP's pruning (and therefore its reduction/lock/fetch/update traffic —
//!   even `objects_fetched`, since the migratory best-tour record may or may
//!   not ride each lock grant's piggyback) depends on the global-bound
//!   propagation order even for a fixed seed, so only its
//!   schedule-independent counters and the optimal result are compared.
//! * Fault-detection counters: `vm_read_traps`/`vm_write_traps` are zero in
//!   explicit mode by construction; in VM mode they must equal the
//!   `read_faults`/`write_faults` the protocol recorded (every fault was
//!   detected by hardware, none were double-counted).
//!
//! On platforms without the trap substrate (non-Linux or non-x86_64) every
//! test here skips cleanly.

use munin::apps::{matmul, sor, tsp};
use munin::sim::{CostModel, EngineConfig};
use munin::{AccessMode, MuninConfig, MuninProgram, MuninStatsSnapshot, SharingAnnotation};

/// Skip guard for platforms without the trap substrate.
fn vm_available() -> bool {
    if AccessMode::vm_supported() {
        true
    } else {
        eprintln!("skipping: AccessMode::VmTraps requires 64-bit Linux on x86_64");
        false
    }
}

/// The counters that are schedule-deterministic for *every* workload tested
/// here (see the module docs for what is deliberately excluded per
/// workload).
fn stable_subset(s: &MuninStatsSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("read_faults", s.read_faults),
        ("write_faults", s.write_faults),
        ("twins_created", s.twins_created),
        ("objects_fetched", s.objects_fetched),
        ("fetch_bytes", s.fetch_bytes),
        ("invalidations_sent", s.invalidations_sent),
        ("invalidations_received", s.invalidations_received),
        ("duq_flushes", s.duq_flushes),
        ("duq_objects_flushed", s.duq_objects_flushed),
        ("copyset_queries", s.copyset_queries),
        ("copyset_query_msgs", s.copyset_query_msgs),
        ("barrier_waits", s.barrier_waits),
    ]
}

/// The SOR variant of [`stable_subset`]: the copyset-determination counters
/// are additionally excluded. Determination runs only for *owner*-flushed
/// fan-out objects (non-owned bundles take the owner-cooperative relay,
/// which never queries), and ownership of a never-materialized page follows
/// its first toucher — for SOR's boundary rows that race between the
/// writing band and the reading neighbour, so the query counts vary
/// run-to-run even within one mode.
fn sor_stable_subset(s: &MuninStatsSnapshot) -> Vec<(&'static str, u64)> {
    stable_subset(s)
        .into_iter()
        .filter(|(name, _)| *name != "copyset_queries" && *name != "copyset_query_msgs")
        .collect()
}

/// The full protocol counter set (everything except the fault-detection
/// counters, which legitimately differ between the modes).
fn full_protocol_set(s: &MuninStatsSnapshot) -> Vec<(&'static str, u64)> {
    let mut v = stable_subset(s);
    v.extend([
        ("updates_sent", s.updates_sent),
        ("update_bytes_sent", s.update_bytes_sent),
        ("updates_applied", s.updates_applied),
        ("updates_healed", s.updates_healed),
        ("lock_acquires", s.lock_acquires),
        ("lock_local_acquires", s.lock_local_acquires),
        ("lock_messages", s.lock_messages),
        ("reductions", s.reductions),
        ("runtime_errors", s.runtime_errors),
    ]);
    v
}

/// In VM mode every fault must have been detected by a hardware trap: the
/// trap counters and the protocol's fault counters agree exactly.
fn assert_traps_account_for_faults(label: &str, s: &MuninStatsSnapshot) {
    assert_eq!(
        s.vm_write_traps, s.write_faults,
        "{label}: write traps must equal write faults"
    );
    assert_eq!(
        s.vm_read_traps, s.read_faults,
        "{label}: read traps must equal read faults"
    );
}

#[test]
fn matmul_bit_identical_and_full_stats_equal_across_modes() {
    if !vm_available() {
        return;
    }
    for seed in 0..6u64 {
        let run = |mode: AccessMode| {
            let mut p = matmul::MatmulParams::small(16, 3);
            p.engine = EngineConfig::seeded(seed);
            p.access_mode = mode;
            matmul::run_munin(p, CostModel::fast_test()).unwrap()
        };
        let (me, ce) = run(AccessMode::Explicit);
        let (mv, cv) = run(AccessMode::VmTraps);
        assert_eq!(ce, cv, "matmul results diverged under seed {seed}");
        assert_eq!(
            full_protocol_set(&me.stats),
            full_protocol_set(&mv.stats),
            "matmul protocol stats diverged under seed {seed}"
        );
        assert_eq!(me.stats.vm_write_traps, 0, "no traps in explicit mode");
        assert_eq!(me.stats.vm_read_traps, 0, "no traps in explicit mode");
        assert_traps_account_for_faults("matmul", &mv.stats);
    }
}

#[test]
fn sor_bit_identical_with_stable_stats_equal_across_modes() {
    let (rows, cols, iters, procs) = (20, 12, 3, 4);
    if !vm_available() {
        return;
    }
    let reference = sor::serial(rows, cols, iters);
    for seed in 0..6u64 {
        let run = |mode: AccessMode| {
            let mut p = sor::SorParams::small(rows, cols, iters, procs);
            p.engine = EngineConfig::seeded(seed);
            p.access_mode = mode;
            sor::run_munin(p, CostModel::fast_test()).unwrap()
        };
        let (me, ge) = run(AccessMode::Explicit);
        let (mv, gv) = run(AccessMode::VmTraps);
        // Bit-identical grids, and both equal to the serial reference.
        let bits = |g: &[f64]| g.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ge), bits(&gv), "SOR grids diverged under seed {seed}");
        assert_eq!(
            bits(&ge),
            bits(&reference),
            "SOR diverged from serial under seed {seed}"
        );
        assert_eq!(
            sor_stable_subset(&me.stats),
            sor_stable_subset(&mv.stats),
            "SOR protocol stats diverged under seed {seed}"
        );
        assert_traps_account_for_faults("sor", &mv.stats);
    }
}

#[test]
fn tsp_identical_results_across_modes() {
    if !vm_available() {
        return;
    }
    let reference = tsp::serial(8);
    for seed in 0..4u64 {
        let run = |mode: AccessMode| {
            let mut p = tsp::TspParams {
                cities: 8,
                ..tsp::TspParams::default_instance(3)
            };
            p.engine = EngineConfig::seeded(seed);
            p.access_mode = mode;
            tsp::run_munin(p, CostModel::fast_test()).unwrap()
        };
        let (me, re) = run(AccessMode::Explicit);
        let (mv, rv) = run(AccessMode::VmTraps);
        assert_eq!(
            re.best_len, rv.best_len,
            "TSP bound diverged under seed {seed}"
        );
        assert_eq!(
            re.best_len, reference.best_len,
            "TSP bound wrong under seed {seed}"
        );
        // TSP's data traffic (even `objects_fetched`: the migratory
        // best-tour record travels — or not — with each lock grant's
        // piggyback depending on publication order) varies run-to-run
        // within a single mode, so only the schedule-independent counters
        // are compared; the bound equality above is the real equivalence
        // witness.
        assert_eq!(
            (me.stats.barrier_waits, me.stats.runtime_errors),
            (mv.stats.barrier_waits, mv.stats.runtime_errors),
            "TSP stats diverged under seed {seed}"
        );
        assert_traps_account_for_faults("tsp", &mv.stats);
    }
}

/// The satellite unit check: on a deterministic single-writer workload
/// (conventional annotation — every write miss acquires ownership and
/// invalidates), the VM mode's trap counts must match the explicit mode's
/// fault counts exactly, along with the whole protocol counter set.
#[test]
fn trap_counts_match_explicit_fault_counts_on_single_writer_workload() {
    if !vm_available() {
        return;
    }
    let run = |mode: AccessMode| {
        let cfg = MuninConfig::fast_test(2)
            .with_engine(EngineConfig::seeded(11))
            .with_access_mode(mode);
        let mut prog = MuninProgram::new(cfg);
        let x = prog.declare::<i64>("x", 32, SharingAnnotation::Conventional);
        let turn = prog.create_barrier("turn");
        let done = prog.create_barrier("done");
        prog.user_init(move |init| {
            for i in 0..32 {
                init.write(&x, i, i as i64).unwrap();
            }
        });
        let report = prog
            .run(move |ctx| {
                // Strict alternation: both nodes read everything (creating
                // replicas), then node 0 doubles / node 1 adds one —
                // barrier-separated on both sides, so every fault,
                // ownership transfer, and replica invalidation count is
                // schedule-independent.
                for round in 0..3 {
                    let _ = ctx.read_slice(&x, 0, 32)?;
                    ctx.wait_at_barrier(turn)?;
                    if ctx.node_id() == round % 2 {
                        for i in 0..32 {
                            let v: i64 = ctx.read(&x, i)?;
                            ctx.write(&x, i, if round % 2 == 0 { v * 2 } else { v + 1 })?;
                        }
                    }
                    ctx.wait_at_barrier(turn)?;
                }
                ctx.wait_at_barrier(done)?;
                ctx.read_slice(&x, 0, 32)
            })
            .unwrap();
        for r in &report.results {
            assert!(r.is_ok());
        }
        (
            report.results[0].as_ref().unwrap().clone(),
            report.stats_total(),
        )
    };
    let (res_e, st_e) = run(AccessMode::Explicit);
    let (res_v, st_v) = run(AccessMode::VmTraps);
    assert_eq!(res_e, res_v, "single-writer results diverged");
    assert_eq!(full_protocol_set(&st_e), full_protocol_set(&st_v));
    // Explicit mode never traps; VM mode detects every fault by trap.
    assert_eq!((st_e.vm_write_traps, st_e.vm_read_traps), (0, 0));
    assert_eq!(st_v.vm_write_traps, st_v.write_faults);
    assert_eq!(st_v.vm_read_traps, st_v.read_faults);
    assert!(st_v.vm_write_traps > 0, "workload must actually trap");
    assert!(st_v.invalidations_sent > 0, "single-writer must invalidate");
}

/// Runtime errors must propagate out of the trap path: the SIGSEGV handler
/// cannot fail the faulting store, so the error is parked and surfaced by
/// the touch wrapper — the worker sees exactly the explicit-mode error.
#[test]
fn read_only_write_error_propagates_through_the_trap_path() {
    if !vm_available() {
        return;
    }
    let cfg = MuninConfig::fast_test(1).with_access_mode(AccessMode::VmTraps);
    let mut prog = MuninProgram::new(cfg);
    let input = prog.declare::<i32>("input", 4, SharingAnnotation::ReadOnly);
    prog.user_init(move |init| init.write(&input, 0, 7).unwrap());
    let report = prog
        .run(move |ctx| {
            // Reading still works...
            assert_eq!(ctx.read(&input, 0)?, 7);
            // ...but writing must fail with the explicit-mode error, and the
            // runtime must stay usable afterwards.
            let err = ctx.write(&input, 0, 1).unwrap_err();
            assert!(matches!(err, munin::MuninError::ReadOnlyWrite(_)));
            assert_eq!(ctx.read(&input, 0)?, 7, "failed write must not land");
            Ok(())
        })
        .unwrap();
    assert!(report.results[0].is_ok());
    assert_eq!(report.stats_total().runtime_errors, 1);
}

/// Accesses spanning several objects exercise the VM layout's per-object
/// copies (objects are page-aligned and *not* contiguous in the region,
/// unlike the packed explicit-mode segment).
#[test]
fn multi_object_slice_round_trips_in_vm_mode() {
    if !vm_available() {
        return;
    }
    let cfg = MuninConfig::fast_test(2).with_access_mode(AccessMode::VmTraps);
    let mut prog = MuninProgram::new(cfg);
    // 64-byte pages and 8-byte elements: 40 elements span 5 objects.
    let x = prog.declare::<i64>("x", 40, SharingAnnotation::WriteShared);
    let done = prog.create_barrier("done");
    prog.user_init(move |init| {
        let vals: Vec<i64> = (0..40).collect();
        init.write_slice(&x, 0, &vals).unwrap();
    });
    let report = prog
        .run(move |ctx| {
            if ctx.node_id() == 1 {
                // One write call spanning all five objects, offset so it is
                // unaligned at both ends.
                let vals: Vec<i64> = (0..38).map(|i| 1000 + i).collect();
                ctx.write_slice(&x, 1, &vals)?;
            }
            ctx.wait_at_barrier(done)?;
            ctx.read_slice(&x, 0, 40)
        })
        .unwrap();
    let expected: Vec<i64> = std::iter::once(0)
        .chain((0..38).map(|i| 1000 + i))
        .chain(std::iter::once(39))
        .collect();
    for r in &report.results {
        assert_eq!(r.as_ref().unwrap(), &expected);
    }
}

/// Forcing the VM mode on an unsupported platform is a clean, typed error —
/// not a crash; on supported platforms the capability probe answers true.
#[test]
fn forcing_vm_mode_reports_capability_cleanly() {
    if AccessMode::vm_supported() {
        // `from_env` must honour the variable the CI tiers set.
        let expect = match std::env::var("MUNIN_ACCESS_MODE") {
            Ok(v) if v == "vm" || v == "traps" => AccessMode::VmTraps,
            _ => AccessMode::Explicit,
        };
        assert_eq!(AccessMode::from_env(), expect);
        return;
    }
    let cfg = MuninConfig::fast_test(1).with_access_mode(AccessMode::VmTraps);
    let prog = MuninProgram::new(cfg);
    let err = prog.run(|_ctx| Ok(())).err().expect("must be rejected");
    assert!(matches!(err, munin::MuninError::VmUnavailable(_)));
}
