//! Observability-subsystem integration tests.
//!
//! The contract under test (`DESIGN.md`, "Observability"):
//!
//! * The flight recorder is invisible to the protocol: a recording-on run
//!   produces bit-identical results and identical schedule-deterministic
//!   protocol counters to a recording-off run. (Which counters are
//!   schedule-deterministic per workload follows the access-mode
//!   differential tests: matmul's full protocol set, SOR's stable subset —
//!   the excluded SOR counters vary run-to-run *within* one configuration,
//!   recording or not.)
//! * The Perfetto exporter is a pure function of the snapshots with a
//!   stable schema: a synthetic snapshot renders to a golden trace, and a
//!   real multi-node run renders to a schema-valid trace with one track per
//!   node and every update send paired with its install by flow arrows.
//! * Wait and fault-service histograms are populated for the operations a
//!   run actually performed, recording on or off.

use munin::apps::matmul::{self, MatmulParams};
use munin::apps::sor::{self, SorParams};
use munin::dsm::obs::perfetto;
use munin::sim::{CostModel, EngineConfig, NodeId};
use munin::{
    EventKind, MuninConfig, MuninProgram, MuninStatsSnapshot, ObsEvent, ObsSnapshot,
    SharingAnnotation,
};

/// Ring capacity large enough that no event of a small run is evicted.
const UNBOUNDED: usize = 1 << 20;

/// The protocol counters that are schedule-deterministic for every workload
/// (mirrors `tests/access_modes.rs`).
fn stable_subset(s: &MuninStatsSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("read_faults", s.read_faults),
        ("write_faults", s.write_faults),
        ("twins_created", s.twins_created),
        ("objects_fetched", s.objects_fetched),
        ("fetch_bytes", s.fetch_bytes),
        ("invalidations_sent", s.invalidations_sent),
        ("invalidations_received", s.invalidations_received),
        ("duq_flushes", s.duq_flushes),
        ("duq_objects_flushed", s.duq_objects_flushed),
        ("copyset_queries", s.copyset_queries),
        ("copyset_query_msgs", s.copyset_query_msgs),
        ("barrier_waits", s.barrier_waits),
    ]
}

/// Matmul's entire protocol counter set is schedule-deterministic, so the
/// recording differential compares it wholesale.
fn full_protocol_set(s: &MuninStatsSnapshot) -> Vec<(&'static str, u64)> {
    let mut v = stable_subset(s);
    v.extend([
        ("updates_sent", s.updates_sent),
        ("update_bytes_sent", s.update_bytes_sent),
        ("updates_applied", s.updates_applied),
        ("updates_healed", s.updates_healed),
        ("lock_acquires", s.lock_acquires),
        ("lock_local_acquires", s.lock_local_acquires),
        ("lock_messages", s.lock_messages),
        ("reductions", s.reductions),
        ("runtime_errors", s.runtime_errors),
    ]);
    v
}

// ---------------------------------------------------------------------------
// Differential: recording on vs off changes nothing the protocol can see.
// ---------------------------------------------------------------------------

#[test]
fn sor_16_nodes_is_bit_identical_with_recording_on_and_off() {
    let (rows, cols, iters, procs) = (64, 16, 3, 16);
    let reference = sor::serial(rows, cols, iters);
    let run = |flight_events: usize, seed: u64| {
        let mut p = SorParams::small(rows, cols, iters, procs);
        p.engine = EngineConfig::seeded(seed);
        p.flight_events = Some(flight_events);
        sor::run_munin(p, CostModel::fast_test()).unwrap()
    };
    for seed in [5u64, 23] {
        let (on, grid_on) = run(UNBOUNDED, seed);
        let (off, grid_off) = run(0, seed);

        // Results: both grids agree to the bit, and with the serial
        // reference.
        let bits = |g: &[f64]| g.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&grid_on),
            bits(&grid_off),
            "grids diverged under seed {seed}"
        );
        assert_eq!(
            bits(&grid_on),
            bits(&reference),
            "grid diverged from serial under seed {seed}"
        );

        // Protocol behaviour: the schedule-deterministic counters match.
        assert_eq!(
            stable_subset(&on.stats),
            stable_subset(&off.stats),
            "protocol counters diverged under seed {seed}"
        );
        assert_eq!(on.stats.watchdog_stalls, 0);
        assert_eq!(off.stats.watchdog_stalls, 0);

        // The recording-on run did record: waits and fault-service classes
        // SOR necessarily exercises are present, with plausible shapes.
        let waits = &on.obs.waits;
        assert!(waits.contains_key("barrier"), "waits: {:?}", waits.keys());
        assert!(waits.contains_key("fetch"), "waits: {:?}", waits.keys());
        let barrier = &waits["barrier"];
        assert!(barrier.count() > 0);
        assert!(barrier.p50_ns() <= barrier.p95_ns());
        assert!(barrier.p95_ns() <= barrier.p99_ns());
        assert!(barrier.p99_ns() <= barrier.max_ns());
        assert!(
            on.obs.fault_service.contains_key("producer_consumer"),
            "SOR's matrix is producer_consumer: {:?}",
            on.obs.fault_service.keys()
        );

        // Histograms stay on with the ring disabled (they are the cheap
        // half of the subsystem).
        assert!(off.obs.waits.contains_key("barrier"));
    }
}

#[test]
fn matmul_16_nodes_full_counter_set_unchanged_by_recording() {
    let run = |flight_events: usize| {
        let mut p = MatmulParams::small(32, 16);
        p.engine = EngineConfig::seeded(9);
        p.flight_events = Some(flight_events);
        matmul::run_munin(p, CostModel::fast_test()).unwrap()
    };
    let (on, c_on) = run(UNBOUNDED);
    let (off, c_off) = run(0);
    assert_eq!(c_on, c_off, "outputs must be bit-identical");
    assert_eq!(c_on, matmul::serial(32));
    assert_eq!(
        full_protocol_set(&on.stats),
        full_protocol_set(&off.stats),
        "matmul's whole protocol counter set is schedule-deterministic"
    );
    assert!(on.obs.fault_service.contains_key("read_only"));
    assert!(on.obs.fault_service.contains_key("result"));
}

// ---------------------------------------------------------------------------
// Golden trace: the exporter is a pure function with a pinned schema.
// ---------------------------------------------------------------------------

/// Builds a fully synthetic two-node snapshot pair (fixed virtual and wall
/// times) exercising a slice, a flow pair, and an instant.
fn synthetic_snapshots() -> Vec<ObsSnapshot> {
    let ev = |kind: EventKind, t: u64| ObsEvent {
        kind,
        t_virt_ns: t,
        t_wall_ns: t + 7,
        dur_ns: 0,
        object: None,
        sync_id: None,
        peer: None,
        seq: None,
        note: None,
    };
    let mut send = ev(EventKind::UpdateSend, 1_000);
    send.peer = Some(NodeId::new(1));
    send.seq = Some(3);
    let mut grant = ev(EventKind::LockGrant, 5_000);
    grant.sync_id = Some(2);
    grant.dur_ns = 4_000;
    let mut install = ev(EventKind::UpdateInstall, 2_500);
    install.peer = Some(NodeId::new(0));
    install.seq = Some(3);
    let fire = ev(EventKind::TimerFire, 9_000);
    vec![
        ObsSnapshot {
            node: 0,
            events: vec![send, grant],
            events_recorded: 2,
            events_dropped: 0,
            waits: Default::default(),
            fault_service: Default::default(),
        },
        ObsSnapshot {
            node: 1,
            events: vec![install, fire],
            events_recorded: 2,
            events_dropped: 0,
            waits: Default::default(),
            fault_service: Default::default(),
        },
    ]
}

#[test]
fn exporter_renders_the_golden_trace_for_synthetic_events() {
    let trace = perfetto::render_trace(&synthetic_snapshots());
    // Deterministic: rendering is a pure function of the snapshots.
    assert_eq!(trace, perfetto::render_trace(&synthetic_snapshots()));
    let check = perfetto::validate_trace_str(&trace).expect("golden trace is schema-valid");
    assert_eq!(check.nodes, 2);
    assert_eq!(check.flows_matched, 1);
    assert_eq!(check.dropped, 0);
    // Golden fragments pin the schema: timestamps are integer-formatted
    // microseconds, flow ids are the (src, dst, seq) triple as a string,
    // span-end events become complete slices shifted back by their
    // duration.
    for fragment in [
        // The update send's flow start on node 0's track at t=1µs.
        r#""ph":"s","pid":1,"tid":0,"ts":1.000,"cat":"update","name":"update","id":"0-1-3""#,
        // Its install's flow finish on node 1's track, binding to the
        // enclosing slice's end (`bp:"e"`).
        r#""ph":"f","bp":"e","pid":1,"tid":1,"ts":2.500,"cat":"update","name":"update","id":"0-1-3""#,
        // The lock-grant slice spans [1µs, 5µs): ts is the *begin* time.
        r#""ph":"X","pid":1,"tid":0,"name":"lock_acquire","cat":"munin","ts":1.000,"dur":4.000"#,
        // Instants keep their own timestamp.
        r#""ph":"i","pid":1,"tid":1,"name":"timer_fire","cat":"munin","s":"t","ts":9.000"#,
    ] {
        assert!(
            trace.contains(fragment),
            "golden fragment missing from trace:\n{fragment}\n--- trace ---\n{trace}"
        );
    }
}

// ---------------------------------------------------------------------------
// Trace export: schema-valid, per-node tracks, fully paired flow arrows.
// ---------------------------------------------------------------------------

/// A 4-node workload that exercises every event family: faults (read and
/// write), fetches, lock transfers, barriers, and flushed updates.
fn traced_report() -> munin::MuninReport<i64> {
    let cfg = MuninConfig::fast_test(4)
        .with_engine(EngineConfig::seeded(11))
        .with_flight_events(UNBOUNDED);
    let mut prog = MuninProgram::new(cfg);
    let data = prog.declare::<i64>("data", 64, SharingAnnotation::WriteShared);
    let counter = prog.declare::<i64>("counter", 1, SharingAnnotation::Migratory);
    let lock = prog.create_lock("counter_lock");
    let step = prog.create_barrier("step");
    prog.user_init(move |init| {
        init.write_slice(&data, 0, &[1i64; 64]).unwrap();
    });
    prog.run(move |ctx| {
        let me = ctx.node_id() as i64;
        for round in 0..3 {
            ctx.acquire_lock(lock)?;
            let v: i64 = ctx.read(&counter, 0)?;
            ctx.write(&counter, 0, v + me + 1)?;
            ctx.release_lock(lock)?;
            ctx.write(&data, (ctx.node_id() * 16 + round) % 64, me)?;
            ctx.wait_at_barrier(step)?;
        }
        let mut sum = 0;
        for i in 0..64 {
            sum += ctx.read(&data, i)?;
        }
        ctx.wait_at_barrier(step)?;
        Ok(sum)
    })
    .unwrap()
}

#[test]
fn exported_trace_validates_with_fully_paired_flows() {
    let report = traced_report();
    assert!(report.first_error().is_none());
    for snap in &report.obs {
        assert!(
            snap.events_recorded > 0,
            "node {} recorded nothing",
            snap.node
        );
        assert_eq!(
            snap.events_dropped, 0,
            "ring was sized to hold the whole run"
        );
    }

    let trace = perfetto::render_trace(&report.obs);
    let check = perfetto::validate_trace_str(&trace).expect("schema-valid trace");
    assert_eq!(check.nodes, 4, "one track per node");
    assert!(check.slices > 0, "fault/lock/barrier spans become slices");
    assert!(check.flows_started > 0, "updates flowed between nodes");
    assert_eq!(check.dropped, 0);
    assert_eq!(
        (check.flows_matched, check.flows_finished),
        (check.flows_started, check.flows_started),
        "with nothing dropped, every update send pairs with its install"
    );
}

#[test]
fn stall_tails_surface_through_the_report() {
    // Covered in depth by tests/reliability.rs; here only the plumbing from
    // recorder to snapshot tails is checked on a healthy run.
    let report = traced_report();
    for snap in &report.obs {
        let tail = snap.tail(8);
        assert!(!tail.is_empty());
        assert!(tail.len() <= 8);
        assert!(tail.iter().all(|e| e.starts_with("t=")));
    }
}

// ---------------------------------------------------------------------------
// Aggregation: obs_total merges node histograms.
// ---------------------------------------------------------------------------

#[test]
fn obs_total_merges_per_node_wait_histograms() {
    let report = traced_report();
    let total = report.obs_total();
    let per_node: u64 = report
        .obs
        .iter()
        .map(|s| s.waits.get("lock_acquire").map_or(0, |h| h.count()))
        .sum();
    assert!(
        per_node > 0,
        "remote lock handoffs must have been waited on"
    );
    assert_eq!(total.waits["lock_acquire"].count(), per_node);
}
