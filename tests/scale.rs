//! Wide-cluster scaling suite: 64-, 128- and 256-node runs exercising the
//! hierarchical combining-tree barriers against the flat owner-collected
//! path.
//!
//! The contracts under test:
//!
//! * **Transparency** — the barrier topology is invisible to the program:
//!   tree and flat runs of the same SOR instance produce bit-identical
//!   grids, for shallow (k = 16) and deep (k = 2) trees alike.
//! * **Ingress economy** — the whole point of the tree: the barrier owner's
//!   per-episode message ingress drops from N (every participant's arrival,
//!   its own included) to its static fan-in k, asserted exactly via the
//!   `barrier_owner_ingress` counter.
//! * **Crash tolerance** — a crash of an *interior* tree node (one whose
//!   death orphans a whole reporting subtree) keeps the
//!   terminate-correct-or-fail-fast contract of `tests/crash.rs`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use munin::apps::sor::{self, SorParams};
use munin::sim::{CostModel, CrashSpec, CrashTrigger, EngineConfig, FaultPlan};
use munin::MuninError;

/// One 256-node run is ~500 OS threads; several at once oversubscribe the
/// host so badly that wall-clock detection windows and ceilings stop
/// meaning anything. Unlike the small-cluster chaos suites (which *want*
/// scheduling noise), this file serializes its tests.
static SEQUENTIAL: Mutex<()> = Mutex::new(());

/// All-node barrier episodes in one SOR run: the program's internal start
/// barrier, one `copied` wait after the init phase, then a `computed` and a
/// `copied` wait per iteration.
fn episodes(iterations: usize) -> u64 {
    2 * iterations as u64 + 2
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

/// Runs one SOR instance with the given barrier fan-out override and
/// returns (grid, total `barrier_owner_ingress`). The counter is only ever
/// bumped at a barrier owner, so the cluster-wide total *is* the owner's
/// ingress.
fn sor_run(nodes: usize, rows: usize, iterations: usize, fanout: Option<usize>) -> (Vec<f64>, u64) {
    let mut params = SorParams::small(rows, 8, iterations, nodes);
    params.engine = EngineConfig::seeded(7);
    params.barrier_fanout = fanout;
    let (m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
    (grid, m.stats.barrier_owner_ingress)
}

/// 128 nodes: the tree changes the owner's ingress from O(N) to O(k) per
/// episode and nothing else — the grids are bit-identical.
#[test]
fn tree_barrier_matches_flat_bit_for_bit_at_128_nodes() {
    let _serial = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (nodes, rows, iters) = (128, 132, 2);
    let (flat_grid, flat_ingress) = sor_run(nodes, rows, iters, Some(usize::MAX));
    let (tree_grid, tree_ingress) = sor_run(nodes, rows, iters, Some(8));
    assert_eq!(
        flat_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        tree_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "barrier topology must be invisible to the computation"
    );
    assert!(close(&flat_grid, &sor::serial(rows, 8, iters)));
    // Flat: every participant's arrival (the owner's own included) lands at
    // the owner. Tree: only the owner's k static children report to it.
    assert_eq!(flat_ingress, nodes as u64 * episodes(iters));
    assert_eq!(tree_ingress, 8 * episodes(iters));
    assert!(
        tree_ingress < flat_ingress,
        "tree ingress {tree_ingress} must be strictly below flat {flat_ingress}"
    );
}

/// Fan-out sweep at 64 nodes: a binary tree (depth 6, maximal bundle
/// transit hops) and a wide tree (k = 16) both match the flat grid exactly.
#[test]
fn every_tree_fanout_is_transparent_at_64_nodes() {
    let _serial = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (nodes, rows, iters) = (64, 68, 2);
    let (flat_grid, flat_ingress) = sor_run(nodes, rows, iters, Some(usize::MAX));
    assert!(close(&flat_grid, &sor::serial(rows, 8, iters)));
    let flat_bits: Vec<u64> = flat_grid.iter().map(|v| v.to_bits()).collect();
    for k in [2usize, 16] {
        let (grid, ingress) = sor_run(nodes, rows, iters, Some(k));
        assert_eq!(
            flat_bits,
            grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fan-out {k} diverged from the flat grid"
        );
        assert_eq!(ingress, k as u64 * episodes(iters));
        assert!(ingress < flat_ingress);
    }
}

/// 256 nodes complete correctly under the auto policy (tree, k = 8, on by
/// default at 32 nodes and up — no override needed).
#[test]
fn sor_completes_correctly_at_256_nodes() {
    let _serial = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (nodes, rows, iters) = (256, 260, 1);
    let (grid, ingress) = sor_run(nodes, rows, iters, None);
    assert!(close(&grid, &sor::serial(rows, 8, iters)));
    assert_eq!(ingress, 8 * episodes(iters));
}

/// An interior tree node (rank 1: it relays eight grandchild reports toward
/// the owner) crashes mid-run at 64 nodes. The run must terminate inside
/// the wall ceiling and either complete with the exact serial grid or fail
/// fast with `NodeDown` — never hang, never return wrong data.
#[test]
fn crash_of_an_interior_tree_node_terminates_or_fails_fast() {
    let _serial = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (nodes, rows, iters) = (64, 68, 3);
    let reference = sor::serial(rows, 8, iters);
    for victim in [1usize, 9] {
        // Node 1 is the owner's first static child; node 9 is node 1's
        // first child — both deaths orphan a reporting subtree.
        let mut params = SorParams::small(rows, 8, iters, nodes);
        params.engine =
            EngineConfig::seeded(11).with_faults(FaultPlan::none().with_crash(CrashSpec {
                node: victim,
                trigger: CrashTrigger::VirtTime(600_000),
                until_ns: 0,
            }));
        params.barrier_fanout = Some(8);
        params.detect = Some(Duration::from_millis(300));
        params.retransmit_pacing = Some(Duration::from_millis(1));
        params.watchdog = Some(Duration::from_secs(25));
        let start = Instant::now();
        let outcome = sor::run_munin(params, CostModel::fast_test());
        let wall = start.elapsed();
        assert!(
            wall < Duration::from_secs(20),
            "victim {victim}: run took {wall:?} — crash-induced barrier waits \
             must resolve via detection, not crawl"
        );
        match outcome {
            Ok((_m, grid)) => {
                let max_err = grid
                    .iter()
                    .zip(&reference)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_err < 1e-12,
                    "victim {victim}: run completed but diverged (max error {max_err})"
                );
            }
            Err(MuninError::NodeDown { node, .. }) => {
                assert!(
                    node.as_usize() < nodes,
                    "NodeDown blames nonexistent {node}"
                );
            }
            Err(other) => panic!("victim {victim}: expected Ok or NodeDown, got {other:?}"),
        }
    }
}
