//! Cross-crate integration tests: Munin programs, the message-passing
//! baseline, and the serial references must all agree; the runtime errors the
//! paper describes must be detected; the advanced hints must behave as
//! documented; and the data motion must match the paper's qualitative claims.

use munin::apps::{matmul, sor, tsp, workloads};
use munin::dsm::MuninError;
use munin::{CostModel, MuninConfig, MuninProgram, SharingAnnotation};

const FAST: fn() -> CostModel = CostModel::fast_test;

#[test]
fn matmul_munin_mp_and_serial_agree_across_processor_counts() {
    let n = 20;
    let reference = matmul::serial(n);
    for procs in [1, 2, 5] {
        let params = matmul::MatmulParams::small(n, procs);
        let (_m, c) = matmul::run_munin(params, FAST()).unwrap();
        assert_eq!(c, reference, "munin result at {procs} procs");
        let (_m, c) = matmul::run_message_passing(params, FAST()).unwrap();
        assert_eq!(c, reference, "message passing result at {procs} procs");
    }
}

#[test]
fn sor_munin_mp_and_serial_agree() {
    let (rows, cols, iters) = (20, 12, 3);
    let reference = sor::serial(rows, cols, iters);
    for procs in [1, 2, 4] {
        let params = sor::SorParams::small(rows, cols, iters, procs);
        let (_m, grid) = sor::run_munin(params, FAST()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-9,
            "munin SOR at {procs} procs, max error {max_err}"
        );
        let (_m, grid) = sor::run_message_passing(params, FAST()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-9,
            "MP SOR at {procs} procs, max error {max_err}"
        );
    }
}

#[test]
fn paper_cost_model_runs_end_to_end_at_small_scale() {
    // The same programs run under the 1991 cost model (as the benches do),
    // just at a reduced problem size so the test stays quick.
    let mut params = matmul::MatmulParams::paper(4);
    params.n = 32;
    let (munin_run, c) = matmul::run_munin(params, CostModel::sun_ethernet_1991()).unwrap();
    let (dm_run, c2) = matmul::run_message_passing(params, CostModel::sun_ethernet_1991()).unwrap();
    assert_eq!(c, c2);
    assert_eq!(c, matmul::serial(32));
    // Virtual times are nonzero and of the same order of magnitude.
    assert!(munin_run.secs() > 0.0 && dm_run.secs() > 0.0);
    assert!(munin_run.secs() < dm_run.secs() * 10.0);
}

#[test]
fn tsp_exercises_reduction_migratory_and_lock_association() {
    let params = tsp::TspParams {
        cities: 7,
        procs: 2,
        ..tsp::TspParams::default_instance(1)
    };
    let (run, result) = tsp::run_munin(params, FAST()).unwrap();
    assert_eq!(result.best_len, tsp::serial(7).best_len);
    assert!(run.net.class("reduce_request").msgs > 0);
    // The distance table is replicated on demand to the non-root worker.
    assert!(run.net.class("object_data").msgs > 0);
}

#[test]
fn write_to_read_only_variable_is_detected() {
    let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
    let ro = prog.declare::<i32>("ro", 8, SharingAnnotation::ReadOnly);
    let report = prog.run(move |ctx| ctx.write(&ro, 3, 1)).unwrap();
    assert!(matches!(
        report.results[0],
        Err(MuninError::ReadOnlyWrite(_))
    ));
    assert_eq!(report.stats_total().runtime_errors, 1);
}

#[test]
fn out_of_bounds_accesses_are_rejected_with_context() {
    let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
    let v = prog.declare::<i64>("v", 4, SharingAnnotation::WriteShared);
    let report = prog
        .run(move |ctx| {
            let err = ctx.read(&v, 9).unwrap_err();
            assert!(matches!(err, MuninError::OutOfBounds { var: "v", .. }));
            ctx.write(&v, 0, 5)?;
            ctx.read(&v, 0)
        })
        .unwrap();
    assert_eq!(*report.results[0].as_ref().unwrap(), 5);
}

#[test]
fn change_annotation_switches_protocol_mid_run() {
    let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
    let v = prog.declare::<i32>("v", 16, SharingAnnotation::WriteShared);
    let sync = prog.create_barrier("sync");
    prog.user_init(move |init| init.write_slice(&v, 0, &[0; 16]).unwrap());
    let report = prog
        .run(move |ctx| {
            // Phase 1: both nodes write disjoint halves under write-shared.
            let me = ctx.node_id();
            ctx.write(&v, me * 8, me as i32 + 1)?;
            ctx.wait_at_barrier(sync)?;
            // Phase 2: switch to conventional and have node 0 read both halves.
            ctx.change_annotation(&v, SharingAnnotation::Conventional)?;
            ctx.wait_at_barrier(sync)?;
            if me == 0 {
                Ok((ctx.read(&v, 0)?, ctx.read(&v, 8)?))
            } else {
                Ok((0, 0))
            }
        })
        .unwrap();
    assert_eq!(*report.results[0].as_ref().unwrap(), (1, 2));
}

#[test]
fn flush_and_pre_acquire_hints_work() {
    let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
    let v = prog.declare::<i64>("v", 32, SharingAnnotation::ProducerConsumer);
    let sync = prog.create_barrier("sync");
    prog.user_init(move |init| init.write_slice(&v, 0, &[0; 32]).unwrap());
    let report = prog
        .run(move |ctx| {
            if ctx.node_id() == 1 {
                // Consumer: pre-fetch the producer's region before it is
                // needed, then wait for the producer's flush.
                ctx.pre_acquire(&v, 0, 32)?;
            }
            ctx.wait_at_barrier(sync)?;
            if ctx.node_id() == 0 {
                for i in 0..16 {
                    ctx.write(&v, i, i as i64 * 3)?;
                }
                // Push the buffered writes out explicitly (Flush hint) before
                // the barrier would have done it anyway.
                ctx.flush()?;
            }
            ctx.wait_at_barrier(sync)?;
            let sum: i64 = ctx.read_slice(&v, 0, 16)?.iter().sum();
            Ok(sum)
        })
        .unwrap();
    let expected: i64 = (0..16).map(|i| i * 3).sum();
    for r in &report.results {
        assert_eq!(*r.as_ref().unwrap(), expected);
    }
}

#[test]
fn invalidate_hint_returns_data_to_the_home_node() {
    let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
    let v = prog.declare::<i64>("v", 8, SharingAnnotation::WriteShared);
    let sync = prog.create_barrier("sync");
    prog.user_init(move |init| init.write_slice(&v, 0, &[0; 8]).unwrap());
    let report = prog
        .run(move |ctx| {
            if ctx.node_id() == 1 {
                ctx.write(&v, 0, 99)?;
                ctx.invalidate(v.id())?;
            }
            ctx.wait_at_barrier(sync)?;
            if ctx.node_id() == 0 {
                ctx.read(&v, 0)
            } else {
                Ok(0)
            }
        })
        .unwrap();
    assert_eq!(*report.results[0].as_ref().unwrap(), 99);
}

#[test]
fn matmul_data_motion_matches_the_papers_description() {
    // "In the Munin version, after the workers have acquired their input
    // data, they execute independently without communication, as in the
    // message passing version. Furthermore the various parts of the output
    // matrix are sent from the node where they are computed to the root."
    let params = matmul::MatmulParams::small(24, 4);
    let (m, _c) = matmul::run_munin(params, FAST()).unwrap();
    // Result update transmissions: one per non-root worker (piggybacked
    // onto the final barrier's carriers when `MUNIN_PIGGYBACK` is on).
    assert_eq!(m.stats.updates_sent, 3);
    // No invalidations are needed anywhere in the multi-protocol version.
    assert_eq!(m.net.class("invalidate").msgs, 0);
}

#[test]
fn sor_uses_fewer_messages_with_multiple_protocols_than_forced_conventional() {
    let small = sor::SorParams::small(32, 16, 5, 4);
    let (multi, _) = sor::run_munin(small, FAST()).unwrap();
    let mut forced = small;
    forced.annotation_override = Some(SharingAnnotation::Conventional);
    let (conv, _) = sor::run_munin(forced, FAST()).unwrap();
    assert!(
        conv.net.class("object_fetch").msgs > multi.net.class("object_fetch").msgs,
        "conventional must re-fault boundary pages every iteration"
    );
}

#[test]
fn workload_partition_is_exhaustive_for_paper_sizes() {
    for (total, parts) in [(400, 16), (1024, 16), (400, 7)] {
        let mut covered = 0;
        for idx in 0..parts {
            let (lo, hi) = workloads::partition(total, parts, idx);
            covered += hi - lo;
        }
        assert_eq!(covered, total);
    }
}

#[test]
fn single_object_hint_reduces_access_misses() {
    let n = 48;
    let base = matmul::MatmulParams::small(n, 3);
    let (plain, c1) = matmul::run_munin(base, FAST()).unwrap();
    let mut optimized = base;
    optimized.single_object_input = true;
    let (single, c2) = matmul::run_munin(optimized, FAST()).unwrap();
    assert_eq!(c1, c2);
    let plain_fetches = plain.net.class("object_fetch").msgs;
    let single_fetches = single.net.class("object_fetch").msgs;
    assert!(
        single_fetches < plain_fetches,
        "SingleObject must reduce access misses: {single_fetches} vs {plain_fetches}"
    );
}
