//! Seeded-schedule stress tests for the discrete-event delivery engine.
//!
//! The seed-level flake this PR resolves (`ROADMAP.md`: SOR/matmul divergence
//! under CPU oversubscription) was an ordering race between in-flight object
//! fetches and copyset determination at a flush. These tests drive the same
//! workloads across many engine seeds — including adversarial delay/reorder
//! injection — and demand bit-identical agreement with the serial reference
//! every time. No single-thread isolation is used anywhere: the whole suite
//! runs in the default parallel test harness, which is exactly the load that
//! used to trigger the race.

use std::sync::{Arc, Barrier};

use munin::apps::{matmul, sor};
use munin::sim::{Cluster, CostModel, EngineConfig, FaultPlan, NodeId, TraceEntry};
use munin::{MuninConfig, MuninProgram, SharingAnnotation};

/// Delay/reorder plan for the stress runs: 20% of messages get up to 20 µs of
/// extra virtual latency or jitter (large relative to the fast-test cost
/// model's ~1 µs message overhead, so orderings genuinely change).
const STRESS_FAULTS: FaultPlan = FaultPlan::jittery(200_000, 20_000);

#[test]
fn sor_agrees_with_serial_across_32_seeded_schedules() {
    let (rows, cols, iters, procs) = (20, 12, 3, 4);
    let reference = sor::serial(rows, cols, iters);
    for seed in 0..32u64 {
        let mut params = sor::SorParams::small(rows, cols, iters, procs);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-12,
            "SOR diverged from serial under engine seed {seed}: max error {max_err}"
        );
    }
}

#[test]
fn matmul_agrees_with_serial_across_32_seeded_schedules() {
    let n = 16;
    let reference = matmul::serial(n);
    for seed in 0..32u64 {
        let mut params = matmul::MatmulParams::small(n, 3);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        // Half the seeds also force the single-writer invalidate protocol —
        // the other workload of the documented seed-level race.
        if seed % 2 == 1 {
            params.annotation_override = Some(SharingAnnotation::Conventional);
        }
        let (_m, c) = matmul::run_munin(params, CostModel::fast_test()).unwrap();
        assert_eq!(c, reference, "matmul diverged under engine seed {seed}");
    }
}

#[test]
fn lock_counter_is_exact_under_seeded_jitter() {
    // Migratory data + distributed lock under adversarial schedules: the
    // counter must be exact for every seed or a lock/ownership transfer was
    // mis-ordered.
    for seed in [3u64, 17, 40, 99] {
        let cfg = MuninConfig::fast_test(3)
            .with_engine(EngineConfig::seeded(seed).with_faults(STRESS_FAULTS));
        let mut prog = MuninProgram::new(cfg);
        let counter = prog.declare::<i64>("counter", 1, SharingAnnotation::Migratory);
        let lock = prog.create_lock("lock");
        let done = prog.create_barrier("done");
        prog.user_init(move |init| init.write(&counter, 0, 0).unwrap());
        let report = prog
            .run(move |ctx| {
                for _ in 0..4 {
                    ctx.acquire_lock(lock)?;
                    let v: i64 = ctx.read(&counter, 0)?;
                    ctx.write(&counter, 0, v + 1)?;
                    ctx.release_lock(lock)?;
                }
                ctx.wait_at_barrier(done)?;
                ctx.read(&counter, 0)
            })
            .unwrap();
        for r in &report.results {
            assert_eq!(*r.as_ref().unwrap(), 12, "lost increment under seed {seed}");
        }
    }
}

/// Runs a recv-driven round-gated all-to-all workload on a real threaded
/// cluster and returns the delivery trace and its digest. A `std` barrier
/// gates each round so every message of a round is scheduled before any node
/// drains — delivery order is then a pure function of the engine seed.
fn traced_round_trip(seed: u64, faults: FaultPlan) -> (Vec<TraceEntry>, u64) {
    const NODES: usize = 4;
    const ROUNDS: usize = 5;
    let gate = Arc::new(Barrier::new(NODES));
    let cluster: Cluster<u64> = Cluster::new(NODES, CostModel::fast_test())
        .with_engine(EngineConfig::seeded(seed).with_faults(faults).with_trace());
    let report = cluster
        .run(|ctx| {
            let me = ctx.node_id().as_usize();
            for round in 0..ROUNDS {
                for peer in 0..NODES {
                    if peer != me {
                        // Vary the modelled size so wire times (and thus the
                        // virtual-time ordering) differ per source.
                        let bytes = 64 * (1 + ((me + round) % 3) as u64);
                        ctx.sender()
                            .send(
                                NodeId::new(peer),
                                "round",
                                bytes,
                                (round * NODES + me) as u64,
                            )
                            .unwrap();
                    }
                }
                gate.wait();
                for _ in 0..NODES - 1 {
                    ctx.receiver().recv().unwrap();
                }
                gate.wait();
            }
        })
        .unwrap();
    (report.trace, report.trace_digest)
}

#[test]
fn fixed_seed_replays_byte_identical_delivery_trace() {
    let faults = FaultPlan::jittery(300_000, 5_000);
    let (trace_a, digest_a) = traced_round_trip(42, faults);
    let (trace_b, digest_b) = traced_round_trip(42, faults);
    assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
    assert_eq!(digest_a, digest_b);
    assert_eq!(trace_a.len(), 4 * 3 * 5);
    // Per-destination delivery times are nondecreasing (the engine guarantee).
    for pair in trace_a.windows(2) {
        if pair[0].dst == pair[1].dst {
            assert!(pair[0].seq_at_dst < pair[1].seq_at_dst);
            assert!(pair[0].deliver_at <= pair[1].deliver_at);
        }
    }
}

#[test]
fn different_seeds_schedule_differently() {
    let faults = FaultPlan::jittery(300_000, 5_000);
    let (_, d1) = traced_round_trip(1, faults);
    let (_, d2) = traced_round_trip(2, faults);
    assert_ne!(
        d1, d2,
        "seeds must steer the schedule (jitter and tie-breaks)"
    );
}
