//! Seeded-schedule stress tests for the discrete-event delivery engine.
//!
//! The seed-level flake this PR resolves (`ROADMAP.md`: SOR/matmul divergence
//! under CPU oversubscription) was an ordering race between in-flight object
//! fetches and copyset determination at a flush. These tests drive the same
//! workloads across many engine seeds — including adversarial delay/reorder
//! injection — and demand bit-identical agreement with the serial reference
//! every time. No single-thread isolation is used anywhere: the whole suite
//! runs in the default parallel test harness, which is exactly the load that
//! used to trigger the race.

use std::sync::{Arc, Barrier};

use munin::apps::{matmul, sor};
use munin::sim::{Cluster, CostModel, EngineConfig, FaultPlan, NodeId, TraceEntry};
use munin::{AccessMode, MuninConfig, MuninProgram, SharingAnnotation};

/// Delay/reorder plan for the stress runs: 20% of messages get up to 20 µs of
/// extra virtual latency or jitter (large relative to the fast-test cost
/// model's ~1 µs message overhead, so orderings genuinely change).
const STRESS_FAULTS: FaultPlan = FaultPlan::jittery(200_000, 20_000);

#[test]
fn sor_agrees_with_serial_across_32_seeded_schedules() {
    let (rows, cols, iters, procs) = (20, 12, 3, 4);
    let reference = sor::serial(rows, cols, iters);
    for seed in 0..32u64 {
        let mut params = sor::SorParams::small(rows, cols, iters, procs);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-12,
            "SOR diverged from serial under engine seed {seed}: max error {max_err}"
        );
    }
}

#[test]
fn matmul_agrees_with_serial_across_32_seeded_schedules() {
    let n = 16;
    let reference = matmul::serial(n);
    for seed in 0..32u64 {
        let mut params = matmul::MatmulParams::small(n, 3);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        // Half the seeds also force the single-writer invalidate protocol —
        // the other workload of the documented seed-level race.
        if seed % 2 == 1 {
            params.annotation_override = Some(SharingAnnotation::Conventional);
        }
        let (_m, c) = matmul::run_munin(params, CostModel::fast_test()).unwrap();
        assert_eq!(c, reference, "matmul diverged under engine seed {seed}");
    }
}

/// Skip guard for the VM-trap subset: clean no-op off Linux/x86_64.
fn vm_available() -> bool {
    if AccessMode::vm_supported() {
        true
    } else {
        eprintln!("skipping: AccessMode::VmTraps requires 64-bit Linux on x86_64");
        false
    }
}

/// The VM-trap subset of the seeded stress matrix: the same adversarial
/// delay/reorder injection as the explicit-mode suite, with access detection
/// done by real SIGSEGV write traps. Any divergence from the serial
/// reference means the trap path broke a protocol guarantee the explicit
/// checks uphold.
#[test]
fn sor_vm_mode_agrees_with_serial_across_seeded_schedules() {
    if !vm_available() {
        return;
    }
    let (rows, cols, iters, procs) = (20, 12, 3, 4);
    let reference = sor::serial(rows, cols, iters);
    for seed in 0..8u64 {
        let mut params = sor::SorParams::small(rows, cols, iters, procs);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        params.access_mode = AccessMode::VmTraps;
        let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-12,
            "VM-mode SOR diverged from serial under engine seed {seed}: max error {max_err}"
        );
    }
}

/// Matmul half of the VM-trap stress subset; odd seeds force the
/// single-writer invalidate protocol, so ownership-transferring traps get
/// adversarial schedules too.
#[test]
fn matmul_vm_mode_agrees_with_serial_across_seeded_schedules() {
    if !vm_available() {
        return;
    }
    let n = 16;
    let reference = matmul::serial(n);
    for seed in 0..8u64 {
        let mut params = matmul::MatmulParams::small(n, 3);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        params.access_mode = AccessMode::VmTraps;
        if seed % 2 == 1 {
            params.annotation_override = Some(SharingAnnotation::Conventional);
        }
        let (_m, c) = matmul::run_munin(params, CostModel::fast_test()).unwrap();
        assert_eq!(
            c, reference,
            "VM-mode matmul diverged under engine seed {seed}"
        );
    }
}

#[test]
fn lock_counter_is_exact_under_seeded_jitter() {
    // Migratory data + distributed lock under adversarial schedules: the
    // counter must be exact for every seed or a lock/ownership transfer was
    // mis-ordered.
    for seed in [3u64, 17, 40, 99] {
        let cfg = MuninConfig::fast_test(3)
            .with_engine(EngineConfig::seeded(seed).with_faults(STRESS_FAULTS));
        let mut prog = MuninProgram::new(cfg);
        let counter = prog.declare::<i64>("counter", 1, SharingAnnotation::Migratory);
        let lock = prog.create_lock("lock");
        let done = prog.create_barrier("done");
        prog.user_init(move |init| init.write(&counter, 0, 0).unwrap());
        let report = prog
            .run(move |ctx| {
                for _ in 0..4 {
                    ctx.acquire_lock(lock)?;
                    let v: i64 = ctx.read(&counter, 0)?;
                    ctx.write(&counter, 0, v + 1)?;
                    ctx.release_lock(lock)?;
                }
                ctx.wait_at_barrier(done)?;
                ctx.read(&counter, 0)
            })
            .unwrap();
        for r in &report.results {
            assert_eq!(*r.as_ref().unwrap(), 12, "lost increment under seed {seed}");
        }
    }
}

/// Runs a recv-driven round-gated all-to-all workload on a real threaded
/// cluster of `nodes` nodes and returns the delivery trace and its digest. A
/// `std` barrier gates each round so every message of a round is scheduled
/// before any node drains — delivery order is then a pure function of the
/// engine seed.
fn traced_alltoall(
    nodes: usize,
    rounds: usize,
    seed: u64,
    faults: FaultPlan,
) -> (Vec<TraceEntry>, u64) {
    let gate = Arc::new(Barrier::new(nodes));
    let cluster: Cluster<u64> = Cluster::new(nodes, CostModel::fast_test())
        .with_engine(EngineConfig::seeded(seed).with_faults(faults).with_trace());
    let report = cluster
        .run(|ctx| {
            let me = ctx.node_id().as_usize();
            for round in 0..rounds {
                for peer in 0..nodes {
                    if peer != me {
                        // Vary the modelled size so wire times (and thus the
                        // virtual-time ordering) differ per source.
                        let bytes = 64 * (1 + ((me + round) % 3) as u64);
                        ctx.sender()
                            .send(
                                NodeId::new(peer),
                                "round",
                                bytes,
                                (round * nodes + me) as u64,
                            )
                            .unwrap();
                    }
                }
                gate.wait();
                for _ in 0..nodes - 1 {
                    ctx.receiver().recv().unwrap();
                }
                gate.wait();
            }
        })
        .unwrap();
    (report.trace, report.trace_digest)
}

/// The 4-node, 5-round shape the original (pre-shard) replay tests used.
fn traced_round_trip(seed: u64, faults: FaultPlan) -> (Vec<TraceEntry>, u64) {
    traced_alltoall(4, 5, seed, faults)
}

#[test]
fn fixed_seed_replays_byte_identical_delivery_trace() {
    let faults = FaultPlan::jittery(300_000, 5_000);
    let (trace_a, digest_a) = traced_round_trip(42, faults);
    let (trace_b, digest_b) = traced_round_trip(42, faults);
    assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
    assert_eq!(digest_a, digest_b);
    assert_eq!(trace_a.len(), 4 * 3 * 5);
    // Per-destination delivery times are nondecreasing (the engine guarantee).
    for pair in trace_a.windows(2) {
        if pair[0].dst == pair[1].dst {
            assert!(pair[0].seq_at_dst < pair[1].seq_at_dst);
            assert!(pair[0].deliver_at <= pair[1].deliver_at);
        }
    }
}

/// Trace digests captured from the pre-shard engine (single global
/// `Mutex<EngineState>`, commit 6642519) for fixed schedules: the sharded
/// engine must reproduce them byte-identically, proving the lock-domain
/// refactor changed no delivery decision. Each entry is
/// `(nodes, rounds, seed, jitter_ppm, window_ns, digest)` for the
/// `traced_alltoall` workload above.
const PRE_SHARD_GOLDEN_DIGESTS: &[(usize, usize, u64, u32, u64, u64)] = &[
    (4, 5, 42, 300_000, 5_000, 0xeca276dab35382ca),
    (4, 5, 7, 300_000, 5_000, 0x353ef95aa8871243),
    (4, 5, 1, 0, 0, 0x9a0cb692375090cb),
    (16, 3, 42, 300_000, 5_000, 0x3a1a40c707d940db),
    (16, 3, 9, 0, 0, 0x42702d6b4a74806d),
];

#[test]
fn sharded_engine_matches_pre_shard_golden_digests() {
    for &(nodes, rounds, seed, ppm, window, want) in PRE_SHARD_GOLDEN_DIGESTS {
        let faults = if ppm == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::jittery(ppm, window)
        };
        let (_, digest) = traced_alltoall(nodes, rounds, seed, faults);
        assert_eq!(
            digest, want,
            "digest drift vs pre-shard engine: nodes={nodes} rounds={rounds} seed={seed} \
             faults=({ppm}ppm,{window}ns) — got {digest:#018x}, want {want:#018x}"
        );
    }
}

/// 16-node stress: the all-to-all schedule replays byte-identically under
/// jitter, per-destination sequences stay monotone, and SOR at 16 workers
/// agrees with the serial reference (the scale ROADMAP said the global lock
/// would start to bite at).
#[test]
fn sixteen_node_alltoall_replays_byte_identical() {
    let faults = FaultPlan::jittery(300_000, 5_000);
    let (trace_a, digest_a) = traced_alltoall(16, 3, 42, faults);
    let (trace_b, digest_b) = traced_alltoall(16, 3, 42, faults);
    assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
    assert_eq!(digest_a, digest_b);
    assert_eq!(trace_a.len(), 16 * 15 * 3);
    for pair in trace_a.windows(2) {
        if pair[0].dst == pair[1].dst {
            assert!(pair[0].seq_at_dst < pair[1].seq_at_dst);
            assert!(pair[0].deliver_at <= pair[1].deliver_at);
        }
    }
}

#[test]
fn sixteen_node_sor_agrees_with_serial() {
    let (rows, cols, iters, procs) = (32, 8, 2, 16);
    let reference = sor::serial(rows, cols, iters);
    for seed in [5u64, 23] {
        let mut params = sor::SorParams::small(rows, cols, iters, procs);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-12,
            "16-node SOR diverged from serial under engine seed {seed}: max error {max_err}"
        );
    }
}

/// Regression test for the two late-fetch protocol windows this PR closed
/// (a replica fetched *after* a flusher's copyset query was answered used to
/// silently miss that flush's update — healed via the owner's ack — and an
/// update arriving *while* the fetch is in flight used to be discarded —
/// now deferred). Both only fire under host CPU oversubscription, so this
/// test supplies its own background load. The geometry (one 512-byte page
/// spans four workers' sections) is the many-writers-per-page shape that
/// triggers them.
#[test]
fn sixteen_node_sor_exact_under_host_oversubscription() {
    sixteen_node_sor_oversubscribed(AccessMode::Explicit);
}

/// The VM-trap variant of the oversubscription regression: 16 nodes means 16
/// protected regions with concurrent trap traffic while the host is
/// deliberately starved — the harshest schedule for the touch/verify/pin
/// protocol. Gated to Linux/x86_64 with a clean skip elsewhere.
#[test]
fn sixteen_node_sor_vm_mode_exact_under_host_oversubscription() {
    if !vm_available() {
        return;
    }
    sixteen_node_sor_oversubscribed(AccessMode::VmTraps);
}

fn sixteen_node_sor_oversubscribed(access_mode: AccessMode) {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let spinners: Vec<_> = (0..16)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    std::hint::black_box(x);
                }
            })
        })
        .collect();
    let (rows, cols, iters, procs) = (32, 8, 2, 16);
    let reference = sor::serial(rows, cols, iters);
    // Collect the first divergence instead of asserting inside the loop: a
    // panic here would unwind past the stop/join below and leave 16 spinning
    // threads oversubscribing every remaining test in this binary.
    let mut failure: Option<String> = None;
    for attempt in 0..10u64 {
        let seed = 5 + (attempt % 2) * 18;
        let mut params = sor::SorParams::small(rows, cols, iters, procs);
        params.engine = EngineConfig::seeded(seed).with_faults(STRESS_FAULTS);
        params.access_mode = access_mode;
        let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
        let max_err = grid
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if max_err >= 1e-12 {
            failure = Some(format!(
                "16-node SOR diverged under oversubscription (attempt {attempt}, seed {seed}): \
                 max error {max_err}"
            ));
            break;
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for s in spinners {
        let _ = s.join();
    }
    if let Some(msg) = failure {
        panic!("{msg}");
    }
}

#[test]
fn different_seeds_schedule_differently() {
    let faults = FaultPlan::jittery(300_000, 5_000);
    let (_, d1) = traced_round_trip(1, faults);
    let (_, d2) = traced_round_trip(2, faults);
    assert_ne!(
        d1, d2,
        "seeds must steer the schedule (jitter and tie-breaks)"
    );
}

/// Regenerates the `PRE_SHARD_GOLDEN_DIGESTS` table (run with
/// `cargo test --test stress_schedules capture_golden_digests -- --ignored
/// --nocapture`). Only meaningful to re-capture if the engine's delivery
/// *semantics* change deliberately; a lock-structure refactor must NOT move
/// these values.
#[test]
#[ignore]
fn capture_golden_digests() {
    for (nodes, rounds, seed, ppm, window) in [
        (4usize, 5usize, 42u64, 300_000u32, 5_000u64),
        (4, 5, 7, 300_000, 5_000),
        (4, 5, 1, 0, 0),
        (16, 3, 42, 300_000, 5_000),
        (16, 3, 9, 0, 0),
    ] {
        let faults = if ppm == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::jittery(ppm, window)
        };
        let (_, d) = traced_alltoall(nodes, rounds, seed, faults);
        println!("    ({nodes}, {rounds}, {seed}, {ppm}, {window}, {d:#018x}),");
    }
}
