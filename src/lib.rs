//! Facade crate for the Munin reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single `munin` crate:
//!
//! * [`dsm`] — the Munin distributed shared memory runtime (`munin-core`).
//! * [`sim`] — the simulated cluster substrate (`munin-sim`).
//! * [`msgpass`] — the hand-coded message-passing baseline (`munin-msgpass`).
//! * [`apps`] — the paper's application programs (`munin-apps`).
//! * [`vm`] — the real `mprotect`/`SIGSEGV` write-trap substrate (`munin-vm`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! the flat diff wire-format specification.

#![warn(missing_docs)]

pub use munin_apps as apps;
pub use munin_core as dsm;
pub use munin_msgpass as msgpass;
pub use munin_sim as sim;
pub use munin_vm as vm;

pub use munin_core::{
    AccessMode, BarrierId, EventKind, LatencyHist, LockId, MuninConfig, MuninError, MuninProgram,
    MuninReport, MuninStatsSnapshot, ObsEvent, ObsSnapshot, SharedVar, SharingAnnotation,
    StallReport, WorkerCtx,
};
pub use munin_sim::CostModel;
