//! Experiment drivers shared by the benchmark harnesses.
//!
//! Every table of the paper has a bench target under `benches/` that calls
//! into this crate, runs the corresponding experiment on the simulated
//! 1991-class cluster (10 Mbps shared Ethernet, SUN-class processors), and
//! prints a table with the same columns as the paper. Absolute numbers are
//! not expected to match the paper's hardware; the *shape* (who wins, by
//! roughly what factor, where the overheads come from) is what is being
//! reproduced. `EXPERIMENTS.md` records paper-vs-measured for each one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use munin_apps::matmul::{self, MatmulParams};
use munin_apps::sor::{self, SorParams};
use munin_apps::RunMeasurement;
use munin_core::diff;
use munin_core::{CopysetStrategy, MuninConfig, MuninProgram, SharingAnnotation};
use munin_sim::{CostModel, VirtTime};

/// Processor counts reported by the paper's tables.
pub const PAPER_PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// One row of a Munin vs. message-passing comparison table (Tables 3–5).
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Number of processors.
    pub procs: usize,
    /// Hand-coded message passing ("DM Total" in the paper).
    pub dm: RunMeasurement,
    /// The Munin run.
    pub munin: RunMeasurement,
}

impl ComparisonRow {
    /// Percentage by which the Munin run is slower than message passing.
    pub fn diff_pct(&self) -> f64 {
        self.munin.percent_diff(&self.dm)
    }
}

/// Formats a comparison table in the layout of Tables 3–5:
/// `# of Procs | DM Total | Munin Total | System | User | % Diff`.
pub fn format_comparison_table(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>8} {:>12} {:>14} {:>12} {:>12} {:>8}\n",
        "# Procs", "DM Total(s)", "Munin Total(s)", "System(s)", "User(s)", "% Diff"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>12.2} {:>14.2} {:>12.2} {:>12.2} {:>8.1}\n",
            row.procs,
            row.dm.secs(),
            row.munin.secs(),
            row.munin.root_system.as_secs_f64(),
            row.munin.root_user.as_secs_f64(),
            row.diff_pct()
        ));
    }
    out
}

/// Runs the Table 3 (or Table 4, with `single_object = true`) experiment:
/// Matrix Multiply under Munin and under hand-coded message passing.
pub fn matmul_comparison(procs: &[usize], single_object: bool) -> Vec<ComparisonRow> {
    let cost = CostModel::sun_ethernet_1991();
    procs
        .iter()
        .map(|p| {
            let mut params = MatmulParams::paper(*p);
            params.single_object_input = single_object;
            let (munin, c_munin) = matmul::run_munin(params, cost.clone()).expect("munin matmul");
            let (dm, c_dm) = matmul::run_message_passing(params, cost.clone()).expect("mp matmul");
            assert_eq!(c_munin, c_dm, "Munin and message passing must agree");
            ComparisonRow {
                procs: *p,
                dm,
                munin,
            }
        })
        .collect()
}

/// Runs the Table 5 experiment: SOR under Munin and under message passing.
pub fn sor_comparison(procs: &[usize]) -> Vec<ComparisonRow> {
    let cost = CostModel::sun_ethernet_1991();
    procs
        .iter()
        .map(|p| {
            let params = SorParams::paper(*p);
            let (munin, g_munin) = sor::run_munin(params, cost.clone()).expect("munin sor");
            let (dm, g_dm) = sor::run_message_passing(params, cost.clone()).expect("mp sor");
            let close = g_munin.iter().zip(&g_dm).all(|(a, b)| (a - b).abs() < 1e-6);
            assert!(close, "Munin and message passing must agree");
            ComparisonRow {
                procs: *p,
                dm,
                munin,
            }
        })
        .collect()
}

/// One row of the Table 6 experiment.
#[derive(Clone, Debug)]
pub struct ProtocolRow {
    /// Protocol configuration label.
    pub label: &'static str,
    /// Matrix Multiply execution time.
    pub matmul: VirtTime,
    /// SOR execution time.
    pub sor: VirtTime,
}

/// Runs the Table 6 experiment: Matrix Multiply and SOR at `procs`
/// processors with (a) the multi-protocol annotations, (b) every variable
/// forced to `write_shared`, (c) every variable forced to `conventional`.
pub fn protocol_comparison(procs: usize) -> Vec<ProtocolRow> {
    let cost = CostModel::sun_ethernet_1991();
    let variants: [(&'static str, Option<SharingAnnotation>); 3] = [
        ("Multiple", None),
        ("Write-shared", Some(SharingAnnotation::WriteShared)),
        ("Conventional", Some(SharingAnnotation::Conventional)),
    ];
    variants
        .iter()
        .map(|(label, ann)| {
            let mut mm = MatmulParams::paper(procs);
            mm.annotation_override = *ann;
            let (mm_run, _) = matmul::run_munin(mm, cost.clone()).expect("matmul");
            let mut sp = SorParams::paper(procs);
            sp.annotation_override = *ann;
            let (sor_run, _) = sor::run_munin(sp, cost.clone()).expect("sor");
            ProtocolRow {
                label,
                matmul: mm_run.elapsed,
                sor: sor_run.elapsed,
            }
        })
        .collect()
}

/// Formats the Table 6 rows.
pub fn format_protocol_table(rows: &[ProtocolRow]) -> String {
    let mut out = String::new();
    out.push_str("Effect of Multiple Protocols (16 processors), seconds\n");
    out.push_str(&format!(
        "{:<14} {:>16} {:>10}\n",
        "Protocol", "Matrix Multiply", "SOR"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>16.2} {:>10.2}\n",
            r.label,
            r.matmul.as_secs_f64(),
            r.sor.as_secs_f64()
        ));
    }
    out
}

/// Predicate selecting the changed words of a modification pattern.
type PatternFn = fn(usize) -> bool;

/// Projection of one Table 2 component out of a breakdown row.
type ComponentFn = fn(&DuqBreakdown) -> VirtTime;

/// Component breakdown of pushing one object through the DUQ (Table 2).
#[derive(Clone, Debug)]
pub struct DuqBreakdown {
    /// Modification pattern label.
    pub pattern: &'static str,
    /// Handle the initial write fault (trap, dispatch, resume).
    pub handle_fault: VirtTime,
    /// Copy the object to make the twin.
    pub copy: VirtTime,
    /// Word-by-word comparison and run-length encoding.
    pub encode: VirtTime,
    /// Transmission of the encoded changes.
    pub transmit: VirtTime,
    /// Decoding and merging at the receiver.
    pub decode: VirtTime,
    /// The acknowledgement back to the sender.
    pub reply: VirtTime,
}

impl DuqBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> VirtTime {
        self.handle_fault + self.copy + self.encode + self.transmit + self.decode + self.reply
    }
}

/// Computes the Table 2 breakdown for an object of `size` bytes under the
/// given cost model, using the *actual* run-length encoder on the three
/// modification patterns of the paper: one word changed, every word changed,
/// and every other word changed (the encoder's worst case).
pub fn duq_breakdown(size: usize, cost: &CostModel) -> Vec<DuqBreakdown> {
    let words = size / 4;
    let patterns: [(&'static str, PatternFn); 3] = [
        ("one word", |w| w == 7),
        ("all words", |_| true),
        ("alternate words", |w| w % 2 == 0),
    ];
    patterns
        .iter()
        .map(|(label, changed)| {
            let twin = vec![0u8; size];
            let mut current = twin.clone();
            for w in 0..words {
                if changed(w) {
                    current[w * 4..w * 4 + 4].copy_from_slice(&1u32.to_le_bytes());
                }
            }
            let d = diff::encode(&current, &twin);
            let encoded_bytes = d.encoded_bytes() as u64;
            DuqBreakdown {
                pattern: label,
                handle_fault: cost.fault(),
                copy: cost.copy(size as u64),
                encode: cost.encode(words as u64, d.run_count() as u64),
                transmit: cost.msg_fixed() + cost.wire_time(encoded_bytes + 32),
                decode: cost.decode(d.changed_words() as u64, d.run_count() as u64),
                reply: cost.msg_fixed() + cost.wire_time(40),
            }
        })
        .collect()
}

/// Formats the Table 2 breakdown (milliseconds).
pub fn format_duq_table(rows: &[DuqBreakdown]) -> String {
    let mut out = String::new();
    out.push_str("Time to handle an 8-kilobyte object through the DUQ (msec)\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>16}\n",
        "Component", "One Word", "All Words", "Alternate Words"
    ));
    let components: [(&str, ComponentFn); 6] = [
        ("Handle fault", |r| r.handle_fault),
        ("Copy object", |r| r.copy),
        ("Encode object", |r| r.encode),
        ("Transmit object", |r| r.transmit),
        ("Decode object", |r| r.decode),
        ("Reply", |r| r.reply),
    ];
    for (name, f) in components {
        let v: Vec<f64> = rows.iter().map(|r| f(r).as_millis_f64()).collect();
        out.push_str(&format!(
            "{:<16} {:>10.2} {:>10.2} {:>16.2}\n",
            name, v[0], v[1], v[2]
        ));
    }
    let totals: Vec<f64> = rows.iter().map(|r| r.total().as_millis_f64()).collect();
    out.push_str(&format!(
        "{:<16} {:>10.2} {:>10.2} {:>16.2}\n",
        "Total", totals[0], totals[1], totals[2]
    ));
    out
}

/// Result of the copyset-determination ablation (§3.3): SOR with every
/// variable forced to `write_shared`, under the broadcast algorithm and the
/// improved owner-collected algorithm, plus the multi-protocol baseline.
#[derive(Clone, Debug)]
pub struct CopysetAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Execution time.
    pub elapsed: VirtTime,
    /// Copyset query messages sent during the run.
    pub copyset_queries: u64,
}

/// Runs the copyset ablation at `procs` processors.
pub fn copyset_ablation(procs: usize) -> Vec<CopysetAblationRow> {
    let cost = CostModel::sun_ethernet_1991();
    let mut rows = Vec::new();
    for (label, ann, strategy) in [
        ("producer_consumer", None, CopysetStrategy::Broadcast),
        (
            "write_shared + broadcast",
            Some(SharingAnnotation::WriteShared),
            CopysetStrategy::Broadcast,
        ),
        (
            "write_shared + owner-collected",
            Some(SharingAnnotation::WriteShared),
            CopysetStrategy::OwnerCollected,
        ),
    ] {
        let mut params = SorParams::paper(procs);
        params.annotation_override = ann;
        params.copyset_strategy = strategy;
        let (run, _) = sor::run_munin(params, cost.clone()).expect("sor");
        rows.push(CopysetAblationRow {
            label,
            elapsed: run.elapsed,
            copyset_queries: run.net.class("copyset_query").msgs,
        });
    }
    rows
}

/// Result rows of the lock-hint ablation (§2.4): a critical-section workload
/// with and without `AssociateDataAndSynch`.
#[derive(Clone, Debug)]
pub struct HintAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Execution time.
    pub elapsed: VirtTime,
    /// Object fetch messages (access misses served remotely).
    pub object_fetches: u64,
}

/// A small critical-section workload: `procs` workers repeatedly lock a
/// shared migratory record, update it, and unlock it. With
/// `AssociateDataAndSynch` the record travels inside the lock grant and the
/// access misses disappear.
pub fn hints_ablation(procs: usize, rounds: usize) -> Vec<HintAblationRow> {
    let cost = CostModel::sun_ethernet_1991();
    let mut rows = Vec::new();
    for (label, associate) in [("plain lock", false), ("AssociateDataAndSynch", true)] {
        let cfg = MuninConfig::paper(procs).with_cost(cost.clone());
        let mut prog = MuninProgram::new(cfg);
        let record = prog.declare::<i64>("record", 16, SharingAnnotation::Migratory);
        let lock = prog.create_lock("record_lock");
        if associate {
            prog.associate_data_and_synch(lock, &record);
        }
        let done = prog.create_barrier("done");
        prog.user_init(move |init| {
            init.write_slice(&record, 0, &[0i64; 16]).unwrap();
        });
        let report = prog
            .run(move |ctx| {
                for _ in 0..rounds {
                    ctx.acquire_lock(lock)?;
                    let v: i64 = ctx.read(&record, 0)?;
                    ctx.write(&record, 0, v + 1)?;
                    ctx.compute(200);
                    ctx.release_lock(lock)?;
                }
                ctx.wait_at_barrier(done)?;
                Ok(())
            })
            .expect("hint workload");
        rows.push(HintAblationRow {
            label,
            elapsed: report.elapsed,
            object_fetches: report.net.class("object_fetch").msgs,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duq_breakdown_matches_paper_structure() {
        let rows = duq_breakdown(8192, &CostModel::sun_ethernet_1991());
        assert_eq!(rows.len(), 3);
        // All components are in the millisecond range for an 8 KB object.
        for r in &rows {
            assert!(r.total().as_millis_f64() > 1.0);
            assert!(r.total().as_millis_f64() < 100.0);
        }
        // The all-words pattern moves the most data, so it is the slowest;
        // the alternate-words pattern has the most runs, so it encodes slower
        // than the single-word pattern.
        assert!(rows[1].total() > rows[0].total());
        assert!(rows[2].encode >= rows[0].encode);
        let table = format_duq_table(&rows);
        assert!(table.contains("Encode object"));
    }

    #[test]
    fn comparison_row_diff_formats() {
        // Use a tiny instance so the test stays fast; shapes are asserted by
        // the bench harnesses at paper scale.
        let cost = CostModel::fast_test();
        let params = MatmulParams::small(16, 2);
        let (munin, _) = matmul::run_munin(params, cost.clone()).unwrap();
        let (dm, _) = matmul::run_message_passing(params, cost).unwrap();
        let row = ComparisonRow {
            procs: 2,
            dm,
            munin,
        };
        let table = format_comparison_table("test", &[row]);
        assert!(table.contains("# Procs"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn hints_ablation_reduces_access_misses() {
        let rows = hints_ablation(3, 4);
        assert_eq!(rows.len(), 2);
        let plain = &rows[0];
        let associated = &rows[1];
        assert!(
            associated.object_fetches <= plain.object_fetches,
            "piggybacking must not increase access misses: {associated:?} vs {plain:?}"
        );
    }
}
