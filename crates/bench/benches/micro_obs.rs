//! Microbenchmark of the observability subsystem's overhead.
//!
//! Three things are measured:
//!
//! * **Wall clock** of complete 8- and 16-node SOR runs with the flight
//!   recorder at its default capacity vs disabled (`MUNIN_FLIGHT_EVENTS=0`)
//!   — recording must be cheap enough to stay on by default (the committed
//!   budget is ≤5% on the 8-node run).
//! * **Per-record cost**: nanoseconds per flight-recorder event and per
//!   wait-histogram sample, measured in a tight loop.
//! * **Trace weight**: exported Perfetto JSON bytes per 1000 events.
//!
//! The measured numbers are printed on every run and are the source of the
//! committed `BENCH_obs.json` baseline. Refresh with:
//! `cargo bench -p munin-bench --bench micro_obs` (copy the printed table).
//!
//! CI runs this bench with `-- --quick` as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use munin_apps::sor::{self, SorParams};
use munin_core::obs::{EventKind, Recorder};
use munin_sim::{CostModel, EngineConfig, NodeId};
use std::time::{Duration, Instant};

/// The same page-aligned SOR shape as `micro_flush`, with the recorder ring
/// pinned to `flight_events`.
fn params(nodes: usize, iterations: usize, flight_events: usize) -> SorParams {
    let mut p = SorParams::small(nodes * 4, 16, iterations, nodes);
    p.engine = EngineConfig::seeded(7);
    p.flight_events = Some(flight_events);
    p
}

/// Default ring capacity (`MuninConfig::flight_events` without overrides).
const DEFAULT_RING: usize = 256;

/// SOR iteration count for the wall-clock comparison. High enough that
/// protocol work (where the recorder sits) dominates the fixed per-run
/// thread spawn/join cost, which would otherwise drown the signal.
const WALLCLOCK_ITERS: usize = 120;

/// One timed SOR run, in wall-clock milliseconds.
fn run_ms(nodes: usize, flight_events: usize) -> f64 {
    let t0 = Instant::now();
    let (m, grid) = sor::run_munin(
        params(nodes, WALLCLOCK_ITERS, flight_events),
        CostModel::fast_test(),
    )
    .expect("SOR run");
    criterion::black_box((m.elapsed, grid));
    t0.elapsed().as_secs_f64() * 1e3
}

/// Best-of-N wall-clock milliseconds of recording-on vs recording-off runs.
/// On/off samples are interleaved so machine-speed drift during the
/// measurement hits both sides equally, and the minimum is compared: a run
/// spawns far more threads than the host has cores, so wall clock carries
/// heavy positive scheduler noise and the minimum is the estimator of the
/// interference-free cost.
fn best_on_off_ms(nodes: usize, reps: usize) -> (f64, f64) {
    let mut on = f64::INFINITY;
    let mut off = f64::INFINITY;
    for _ in 0..reps {
        on = on.min(run_ms(nodes, DEFAULT_RING));
        off = off.min(run_ms(nodes, 0));
    }
    (on, off)
}

/// Nanoseconds per `Recorder::record` into a default-capacity ring, with a
/// representative fill (peer + seq).
fn ns_per_event(iters: u64) -> f64 {
    let rec = Recorder::new(NodeId::new(0), DEFAULT_RING, false);
    let t0 = Instant::now();
    for i in 0..iters {
        rec.record(i, EventKind::UpdateSend, |ev| {
            ev.peer = Some(NodeId::new(1));
            ev.seq = Some(i);
        });
    }
    criterion::black_box(rec.snapshot());
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Nanoseconds per wait-histogram sample.
fn ns_per_wait(iters: u64) -> f64 {
    let rec = Recorder::new(NodeId::new(0), 0, false);
    let t0 = Instant::now();
    for i in 0..iters {
        rec.record_wait("barrier", (i % 1_000_000) * 64);
    }
    criterion::black_box(rec.snapshot());
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Exported trace bytes per 1000 events, for a representative event mix.
fn trace_bytes_per_1k_events() -> f64 {
    const EVENTS: u64 = 1_000;
    let rec = Recorder::new(NodeId::new(0), EVENTS as usize, false);
    for i in 0..EVENTS {
        match i % 4 {
            0 => rec.record(i * 100, EventKind::UpdateSend, |ev| {
                ev.peer = Some(NodeId::new(1));
                ev.seq = Some(i);
            }),
            1 => rec.record(i * 100, EventKind::ReadFaultEnd, |ev| {
                ev.object = Some(munin_core::ObjectId::new((i % 64) as u32));
                ev.dur_ns = 5_000;
            }),
            2 => rec.record(i * 100, EventKind::LockGrant, |ev| {
                ev.sync_id = Some((i % 8) as u32);
                ev.dur_ns = 2_000;
            }),
            _ => rec.record(i * 100, EventKind::TimerFire, |_| {}),
        }
    }
    let trace = munin_core::obs::perfetto::render_trace(&[rec.snapshot()]);
    trace.len() as f64 * 1_000.0 / EVENTS as f64
}

fn report_obs_overhead(quick: bool) {
    let (reps8, reps16, loop_iters) = if quick {
        (3, 2, 200_000)
    } else {
        (21, 11, 2_000_000)
    };
    eprintln!(
        "micro_obs overhead (SOR, page-aligned bands, {WALLCLOCK_ITERS} iterations, \
         seeded engine, interleaved best-of-N):"
    );
    eprintln!(
        "{:>6} {:>14} {:>14} {:>10}",
        "nodes", "on (ms)", "off (ms)", "overhead"
    );
    for (nodes, reps) in [(8usize, reps8), (16usize, reps16)] {
        let (on, off) = best_on_off_ms(nodes, reps);
        eprintln!(
            "{nodes:>6} {on:>14.2} {off:>14.2} {:>9.1}%",
            (on / off - 1.0) * 100.0
        );
    }
    eprintln!(
        "per-event record: {:.0} ns   per-wait sample: {:.0} ns   trace: {:.0} bytes / 1k events",
        ns_per_event(loop_iters),
        ns_per_wait(loop_iters),
        trace_bytes_per_1k_events()
    );
}

fn bench_obs(c: &mut Criterion) {
    report_obs_overhead(criterion::quick_mode());
    let mut group = c.benchmark_group("obs");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for (label, flight_events) in [("recording_on", DEFAULT_RING), ("recording_off", 0)] {
        group.bench_function(format!("sor_8node/{label}"), |b| {
            b.iter(|| {
                let (m, grid) =
                    sor::run_munin(params(8, 4, flight_events), CostModel::fast_test()).unwrap();
                criterion::black_box((m.elapsed, grid))
            });
        });
    }
    group.bench_function("record_event", |b| {
        let rec = Recorder::new(NodeId::new(0), DEFAULT_RING, false);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.record(i, EventKind::UpdateSend, |ev| {
                ev.peer = Some(NodeId::new(1));
                ev.seq = Some(i);
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
