//! Criterion microbenchmarks of the discrete-event delivery engine: wall
//! clock per message through the virtual-time scheduler, compared against the
//! legacy passthrough (raw FIFO) mode, the pure submit/drain heap cost, and a
//! scaling story: contended all-to-all submit/drain at 2–128 nodes and
//! concurrent ping-pong pairs at 8–256 nodes. The scaling benches are the
//! ones that expose engine-level lock contention — with a single global
//! engine lock every send and receive in the cluster serializes; with
//! per-destination shards only same-destination traffic does. The 64+ sizes
//! oversubscribe the 1-core measurement host on purpose: they measure the
//! engine's behaviour under heavy thread multiplexing, which is exactly what
//! a 256-node simulated cluster does to it.
//!
//! Refresh the committed baseline with:
//! `BENCH_JSON_OUT=BENCH_sim.json cargo bench -p munin-bench --bench micro_event`
//!
//! CI runs this bench with `-- --quick` (short measurement, few samples) as a
//! smoke test; see the criterion shim's quick mode.

use criterion::{criterion_group, criterion_main, Criterion};
use munin_sim::{CostModel, DeliveryMode, EngineConfig, Network, NodeClock, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Messages each node sends to each peer per all-to-all round. Large enough
/// that per-message engine work dominates the two barrier crossings per
/// round, so the measurement tracks the submit/drain path rather than
/// scheduler noise.
const MSGS_PER_PEER: u64 = 16;

/// Round trips each ping-pong pair performs per contended round.
const TRIPS_PER_ROUND: u64 = 8;

/// Measures a two-node ping-pong round trip (send + deliver + reply).
fn bench_pingpong(c: &mut Criterion, mode: DeliveryMode, label: &str) {
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    group.bench_function(format!("pingpong/{label}"), |b| {
        let cfg = EngineConfig::seeded(7).with_mode(mode);
        let mut net: Network<u64> = Network::with_engine(2, CostModel::fast_test(), cfg);
        let (tx0, rx0) = net.endpoint(0, NodeClock::new()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        // Payload 0 is the stop sentinel: the echo thread holds its own
        // sender, so it would never observe channel disconnection.
        let echo = std::thread::spawn(move || {
            while let Ok((_env, v)) = rx1.recv() {
                if v == 0 || tx1.send(NodeId::new(0), "pong", 8, v).is_err() {
                    break;
                }
            }
        });
        b.iter(|| {
            tx0.send(NodeId::new(1), "ping", 8, 1).unwrap();
            rx0.recv().unwrap().1
        });
        tx0.send(NodeId::new(1), "stop", 8, 0).unwrap();
        drop(tx0);
        drop(rx0);
        drop(net);
        let _ = echo.join();
    });
    group.finish();
}

/// Measures the single-threaded submit+drain cost of a 1024-message batch
/// (the pure priority-queue overhead, no thread handoff).
fn bench_submit_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    group.bench_function("submit_drain_1024/virtual_time", |b| {
        let mut net: Network<u64> =
            Network::with_engine(2, CostModel::fast_test(), EngineConfig::seeded(7));
        let (tx0, _rx0) = net.endpoint(0, NodeClock::new()).unwrap();
        let (_tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        b.iter(|| {
            for i in 0..1024u64 {
                tx0.send(NodeId::new(1), "batch", 64, i).unwrap();
            }
            let mut n = 0u64;
            while let Some(_msg) = rx1.try_recv().unwrap() {
                n += 1;
            }
            n
        });
    });
    group.finish();
}

/// One all-to-all round from the perspective of node `me`: submit
/// [`MSGS_PER_PEER`] messages to every peer, wait for every node to finish
/// submitting, then drain exactly the expected number of deliveries. The
/// trailing gate keeps rounds from overlapping.
fn alltoall_round(
    me: usize,
    nodes: usize,
    tx: &munin_sim::Sender<u64>,
    rx: &munin_sim::Receiver<u64>,
    gate: &Barrier,
) {
    for k in 0..MSGS_PER_PEER {
        for peer in 0..nodes {
            if peer != me {
                // Vary the modelled size so arrival times (and heap orderings)
                // differ across sources.
                let bytes = 64 * (1 + (me as u64 + k) % 3);
                tx.send(NodeId::new(peer), "a2a", bytes, (me as u64) << 32 | k)
                    .unwrap();
            }
        }
    }
    gate.wait();
    for _ in 0..(nodes as u64 - 1) * MSGS_PER_PEER {
        rx.recv().unwrap();
    }
    gate.wait();
}

/// Contended all-to-all submit/drain: every node concurrently sends
/// [`MSGS_PER_PEER`] messages to every other node, then drains its own
/// queue. With one global engine lock all `nodes * (nodes-1) * MSGS_PER_PEER`
/// submits and as many receives serialize on it; with per-destination shards
/// only same-destination submits contend.
fn bench_alltoall(c: &mut Criterion, nodes: usize) {
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    group.bench_function(format!("alltoall_{nodes}/submit_drain"), |b| {
        let cfg = EngineConfig::seeded(7);
        let mut net: Network<u64> = Network::with_engine(nodes, CostModel::fast_test(), cfg);
        let gate = Arc::new(Barrier::new(nodes));
        let stop = Arc::new(AtomicBool::new(false));
        let mut endpoints = Vec::with_capacity(nodes);
        for i in 0..nodes {
            endpoints.push(net.endpoint(i, NodeClock::new()).unwrap());
        }
        drop(net);
        let (tx0, rx0) = endpoints.remove(0);
        let mut workers = Vec::with_capacity(nodes - 1);
        for (idx, (tx, rx)) in endpoints.into_iter().enumerate() {
            let me = idx + 1;
            let gate = Arc::clone(&gate);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || loop {
                gate.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                alltoall_round(me, nodes, &tx, &rx, &gate);
            }));
        }
        b.iter(|| {
            gate.wait();
            alltoall_round(0, nodes, &tx0, &rx0, &gate);
        });
        stop.store(true, Ordering::Release);
        gate.wait();
        for w in workers {
            let _ = w.join();
        }
    });
    group.finish();
}

/// Contended ping-pong: `nodes / 2` independent pairs round-trip
/// concurrently. Under a global engine lock the pairs' latencies degrade as
/// pairs are added even though their traffic is completely disjoint.
fn bench_pingpong_contended(c: &mut Criterion, nodes: usize) {
    assert!(nodes >= 2 && nodes.is_multiple_of(2));
    let pairs = nodes / 2;
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    group.bench_function(format!("pingpong_contended_{nodes}/round"), |b| {
        let cfg = EngineConfig::seeded(7);
        let mut net: Network<u64> = Network::with_engine(nodes, CostModel::fast_test(), cfg);
        let gate = Arc::new(Barrier::new(pairs));
        let stop = Arc::new(AtomicBool::new(false));
        let mut endpoints = Vec::with_capacity(nodes);
        for i in 0..nodes {
            endpoints.push(net.endpoint(i, NodeClock::new()).unwrap());
        }
        drop(net);
        // Odd nodes echo until they see the stop sentinel (payload 0).
        let mut echoes = Vec::with_capacity(pairs);
        let mut pingers = Vec::with_capacity(pairs);
        // Walk pairs from the back so endpoint ownership moves out cleanly;
        // pair p is (2p, 2p+1) with 2p pinging and 2p+1 echoing.
        for p in (0..pairs).rev() {
            let (tx_echo, rx_echo) = endpoints.remove(2 * p + 1);
            let (tx_ping, rx_ping) = endpoints.remove(2 * p);
            let pinger_node = 2 * p;
            echoes.push(std::thread::spawn(move || {
                while let Ok((_env, v)) = rx_echo.recv() {
                    if v == 0
                        || tx_echo
                            .send(NodeId::new(pinger_node), "pong", 8, v)
                            .is_err()
                    {
                        break;
                    }
                }
            }));
            if p == 0 {
                // The main thread drives pair 0 inside `b.iter`.
                pingers.push(None);
                endpoints.push((tx_ping, rx_ping));
            } else {
                let gate = Arc::clone(&gate);
                let stop = Arc::clone(&stop);
                let echo_node = 2 * p + 1;
                pingers.push(Some(std::thread::spawn(move || {
                    loop {
                        gate.wait();
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        for _ in 0..TRIPS_PER_ROUND {
                            tx_ping.send(NodeId::new(echo_node), "ping", 8, 1).unwrap();
                            rx_ping.recv().unwrap();
                        }
                        gate.wait();
                    }
                    // Release the echo partner.
                    let _ = tx_ping.send(NodeId::new(echo_node), "stop", 8, 0);
                })));
            }
        }
        let (tx0, rx0) = endpoints.pop().unwrap();
        b.iter(|| {
            gate.wait();
            for _ in 0..TRIPS_PER_ROUND {
                tx0.send(NodeId::new(1), "ping", 8, 1).unwrap();
                rx0.recv().unwrap();
            }
            gate.wait();
        });
        stop.store(true, Ordering::Release);
        gate.wait();
        let _ = tx0.send(NodeId::new(1), "stop", 8, 0);
        drop(tx0);
        drop(rx0);
        for p in pingers.into_iter().flatten() {
            let _ = p.join();
        }
        for e in echoes {
            let _ = e.join();
        }
    });
    group.finish();
}

fn bench_event(c: &mut Criterion) {
    bench_pingpong(c, DeliveryMode::VirtualTime, "virtual_time");
    bench_pingpong(c, DeliveryMode::Passthrough, "passthrough");
    bench_submit_drain(c);
    for nodes in [2, 8, 16, 32, 64, 128] {
        bench_alltoall(c, nodes);
    }
    for nodes in [8, 16, 32, 64, 128, 256] {
        bench_pingpong_contended(c, nodes);
    }
}

criterion_group!(benches, bench_event);
criterion_main!(benches);
