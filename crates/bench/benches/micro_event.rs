//! Criterion microbenchmarks of the discrete-event delivery engine: wall
//! clock per message through the virtual-time scheduler, compared against the
//! legacy passthrough (raw FIFO) mode, plus the pure submit/drain heap cost.
//!
//! Refresh the committed baseline with:
//! `BENCH_JSON_OUT=BENCH_sim.json cargo bench -p munin-bench --bench micro_event`

use criterion::{criterion_group, criterion_main, Criterion};
use munin_sim::{CostModel, DeliveryMode, EngineConfig, Network, NodeClock, NodeId};
use std::time::Duration;

/// Measures a two-node ping-pong round trip (send + deliver + reply).
fn bench_pingpong(c: &mut Criterion, mode: DeliveryMode, label: &str) {
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    group.bench_function(format!("pingpong/{label}"), |b| {
        let cfg = EngineConfig::seeded(7).with_mode(mode);
        let mut net: Network<u64> = Network::with_engine(2, CostModel::fast_test(), cfg);
        let (tx0, rx0) = net.endpoint(0, NodeClock::new()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        // Payload 0 is the stop sentinel: the echo thread holds its own
        // sender, so it would never observe channel disconnection.
        let echo = std::thread::spawn(move || {
            while let Ok((_env, v)) = rx1.recv() {
                if v == 0 || tx1.send(NodeId::new(0), "pong", 8, v).is_err() {
                    break;
                }
            }
        });
        b.iter(|| {
            tx0.send(NodeId::new(1), "ping", 8, 1).unwrap();
            rx0.recv().unwrap().1
        });
        tx0.send(NodeId::new(1), "stop", 8, 0).unwrap();
        drop(tx0);
        drop(rx0);
        drop(net);
        let _ = echo.join();
    });
    group.finish();
}

/// Measures the single-threaded submit+drain cost of a 1024-message batch
/// (the pure priority-queue overhead, no thread handoff).
fn bench_submit_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    group.bench_function("submit_drain_1024/virtual_time", |b| {
        let mut net: Network<u64> =
            Network::with_engine(2, CostModel::fast_test(), EngineConfig::seeded(7));
        let (tx0, _rx0) = net.endpoint(0, NodeClock::new()).unwrap();
        let (_tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        b.iter(|| {
            for i in 0..1024u64 {
                tx0.send(NodeId::new(1), "batch", 64, i).unwrap();
            }
            let mut n = 0u64;
            while let Some(_msg) = rx1.try_recv().unwrap() {
                n += 1;
            }
            n
        });
    });
    group.finish();
}

fn bench_event(c: &mut Criterion) {
    bench_pingpong(c, DeliveryMode::VirtualTime, "virtual_time");
    bench_pingpong(c, DeliveryMode::Passthrough, "passthrough");
    bench_submit_drain(c);
}

criterion_group!(benches, bench_event);
criterion_main!(benches);
