//! Regenerates Table 1 of the paper: "Munin Annotations and Corresponding
//! Protocol Parameters".

fn main() {
    println!("=== Table 1: Munin annotations and protocol parameters ===");
    print!("{}", munin_core::render_table1());
}
