//! Regenerates Table 5 of the paper: Successive Over-Relaxation, Munin vs.
//! hand-coded message passing, 1–16 processors.

use munin_bench::{format_comparison_table, sor_comparison, PAPER_PROCS};

fn main() {
    println!("=== Table 5: performance of SOR (sec) ===");
    let rows = sor_comparison(&PAPER_PROCS);
    print!(
        "{}",
        format_comparison_table("SOR, 1024x512 grid, 20 iterations", &rows)
    );
    let worst = rows.iter().map(|r| r.diff_pct()).fold(f64::MIN, f64::max);
    println!("worst-case Munin overhead vs message passing: {worst:.1}%");
}
