//! Regenerates Table 2 of the paper: the component breakdown of the time to
//! handle an 8-kilobyte object through the delayed update queue, for the
//! one-word, all-words, and alternate-words modification patterns.

use munin_bench::{duq_breakdown, format_duq_table};
use munin_sim::CostModel;

fn main() {
    println!("=== Table 2: time to handle an 8 KB object through the DUQ ===");
    let rows = duq_breakdown(8192, &CostModel::sun_ethernet_1991());
    print!("{}", format_duq_table(&rows));
}
