//! Microbenchmark of the *real* virtual-memory write-fault mechanism
//! (`munin-vm`): the modern-hardware analogue of Table 2's "handle fault"
//! and "copy object" rows — time to take a SIGSEGV write trap, make a twin of
//! the 8 KB page, and re-enable writes.

use std::time::Instant;

fn main() {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        use munin_vm::ProtectedRegion;
        let pages = 64;
        let mut region = ProtectedRegion::new(pages).expect("mmap protected region");
        region.protect_all().expect("write-protect");
        let page_size = region.page_size();
        let start = Instant::now();
        for p in 0..pages {
            // SAFETY: `p * page_size` lies inside the region we just mapped.
            unsafe {
                let ptr = region.base_ptr().add(p * page_size);
                std::ptr::write_volatile(ptr, 1u8);
            }
        }
        let elapsed = start.elapsed();
        let dirty = region.dirty_pages();
        println!(
            "write-trap + twin for {} pages of {} bytes: {:.2} us/page ({} trapped)",
            pages,
            page_size,
            elapsed.as_secs_f64() * 1e6 / pages as f64,
            dirty.len()
        );
        assert_eq!(dirty.len(), pages);
        for p in 0..pages {
            assert!(region.twin(p).is_some(), "page {p} must have a twin");
        }
    }
    #[cfg(not(unix))]
    println!("munin-vm write traps are only available on Unix hosts");
}
