//! Criterion microbenchmarks of the *real* virtual-memory write-fault
//! mechanism (`munin-vm`) and of the core runtime's VM-trap access mode:
//!
//! * `vm_fault/trap_twin_per_page` — the modern-hardware analogue of Table
//!   2's "handle fault" + "copy object" rows: take a SIGSEGV write trap,
//!   twin the page inside the handler, re-enable writes (legacy
//!   twin-and-unprotect region mode).
//! * `vm_fault/trap_callback_dispatch` — the callback-mode trap cost the
//!   core runtime pays per detected fault: SIGSEGV, route by address range,
//!   rights transition, restart.
//! * `vm_fault/sor_end_to_end/{explicit,vm}` — an A/B of the two access
//!   modes on the same seeded SOR instance: the whole-protocol cost of
//!   hardware detection vs. explicit software checks.
//!
//! Refresh the committed baseline with (the path is resolved from the bench
//! binary's working directory, so give the repo-root one):
//! `BENCH_JSON_OUT=$PWD/BENCH_vm.json cargo bench -p munin-bench --bench micro_vm_fault`
//!
//! CI runs this bench with `-- --quick` as a smoke test (Linux only; the
//! trap benches no-op cleanly elsewhere).

use criterion::{criterion_group, criterion_main, Criterion};

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn bench_trap_twin(c: &mut Criterion) {
    use munin_vm::ProtectedRegion;
    let mut group = c.benchmark_group("vm_fault");
    // One protect + one trapping write per iteration: the reported median is
    // the per-page cost of the full twin cycle (mprotect, SIGSEGV, in-handler
    // page copy, unprotect, restart).
    let mut region = ProtectedRegion::new(1).expect("mmap protected region");
    group.bench_function("trap_twin_per_page", |b| {
        b.iter(|| {
            region.protect_all().expect("write-protect");
            // SAFETY: offset 0 lies inside the mapped region.
            unsafe { std::ptr::write_volatile(region.base_ptr(), 1u8) };
            region.dirty_pages().len()
        })
    });
    group.finish();
}

#[cfg(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
))]
fn bench_trap_callback(c: &mut Criterion) {
    use munin_vm::{PageRights, ProtectedRegion};
    use std::sync::Arc;

    let mut group = c.benchmark_group("vm_fault");
    // One protect + one trapping write per iteration, resolved through the
    // callback path the core runtime uses (route by address range, rights
    // transition, restart) — no twin copy, so the delta against
    // `trap_twin_per_page` is the in-handler page copy.
    let region = Arc::new_cyclic(|weak: &std::sync::Weak<ProtectedRegion>| {
        let weak = weak.clone();
        ProtectedRegion::with_callback(
            1,
            Box::new(move |offset, _is_write| {
                let Some(region) = weak.upgrade() else {
                    return false;
                };
                let page = offset / region.page_size();
                region.set_rights(page, 1, PageRights::ReadWrite).is_ok()
            }),
        )
        .expect("mmap callback region")
    });
    group.bench_function("trap_callback_dispatch", |b| {
        b.iter(|| {
            region
                .set_rights(0, 1, PageRights::Read)
                .expect("write-protect");
            // SAFETY: in-bounds; the callback resolves the trap.
            unsafe { std::ptr::write_volatile(region.base_ptr(), 1u8) };
        })
    });
    group.finish();
}

fn bench_sor_modes(c: &mut Criterion) {
    use munin_apps::sor;
    use munin_core::AccessMode;
    use munin_sim::{CostModel, EngineConfig};

    let mut group = c.benchmark_group("vm_fault");
    let mut modes = vec![(AccessMode::Explicit, "sor_end_to_end/explicit")];
    if AccessMode::vm_supported() {
        modes.push((AccessMode::VmTraps, "sor_end_to_end/vm"));
    }
    for (mode, label) in modes {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut params = sor::SorParams::small(24, 16, 2, 4);
                params.engine = EngineConfig::seeded(7);
                params.access_mode = mode;
                let (_m, grid) = sor::run_munin(params, CostModel::fast_test()).unwrap();
                grid.len()
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    bench_trap_twin(c);
    #[cfg(all(
        target_os = "linux",
        target_arch = "x86_64",
        target_pointer_width = "64"
    ))]
    bench_trap_callback(c);
    bench_sor_modes(c);
}

criterion_group!(vm_fault, benches);
criterion_main!(vm_fault);
