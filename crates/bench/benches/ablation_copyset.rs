//! Ablation from §3.3 of the paper: the prototype's broadcast copyset
//! determination vs. the improved owner-collected algorithm, measured on SOR
//! with every variable forced to `write_shared` (the configuration the paper
//! says "can be improved by using a better algorithm for determining the
//! Copyset").

use munin_bench::copyset_ablation;

fn main() {
    println!("=== Ablation: copyset determination algorithm (SOR, 16 processors) ===");
    println!(
        "{:<34} {:>12} {:>16}",
        "Configuration", "Total (s)", "Copyset queries"
    );
    for row in copyset_ablation(16) {
        println!(
            "{:<34} {:>12.2} {:>16}",
            row.label,
            row.elapsed.as_secs_f64(),
            row.copyset_queries
        );
    }
}
