//! Microbenchmark of the release-flush path and the carrier/outbox layer's
//! message economy.
//!
//! Two things are measured:
//!
//! * **Wall clock** of a complete SOR run (criterion groups), with the
//!   carrier layer on and off — the piggyback path must not cost host time.
//! * **Message economy**: total protocol messages and modelled wire bytes
//!   per release (DUQ flush) at 2/8/16 nodes, piggyback on vs off. These
//!   counts are printed on every run and are the source of the committed
//!   `BENCH_msg.json` baseline.
//!
//! Refresh the committed baseline with:
//! `cargo bench -p munin-bench --bench micro_flush` (copy the printed table).
//!
//! CI runs this bench with `-- --quick` as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use munin_apps::sor::{self, SorParams};
use munin_sim::{CostModel, EngineConfig};
use std::time::Duration;

/// A page-aligned SOR instance (each worker's band is exactly one 512-byte
/// page), so every flushed page is owner-flushed and the relay path is
/// exercised — the same shape as the paper's 1024x512-over-8KB-pages runs.
/// `relay_max` overrides the adaptive-relay size threshold
/// (`MUNIN_RELAY_MAX_BYTES`); `None` keeps the tuned default.
fn params(nodes: usize, iterations: usize, piggyback: bool, relay_max: Option<u64>) -> SorParams {
    let mut p = SorParams::small(nodes * 4, 16, iterations, nodes);
    p.engine = EngineConfig::seeded(7);
    p.piggyback = piggyback;
    p.relay_max_bytes = relay_max;
    p
}

/// One counted run: (total messages, total bytes, releases performed).
fn count_run(nodes: usize, piggyback: bool, relay_max: Option<u64>) -> (u64, u64, u64) {
    let (m, _grid) = sor::run_munin(
        params(nodes, 12, piggyback, relay_max),
        CostModel::fast_test(),
    )
    .expect("SOR run");
    (
        m.engine.messages_sent,
        m.engine.bytes_sent,
        m.stats.duq_flushes,
    )
}

fn report_message_economy() {
    eprintln!("micro_flush message economy (SOR, page-aligned bands, 12 iterations):");
    eprintln!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "nodes", "mode", "messages", "msgs/rel", "bytes", "bytes/rel", "drop"
    );
    for nodes in [2usize, 8, 16] {
        let (on_msgs, on_bytes, on_rel) = count_run(nodes, true, None);
        let (off_msgs, off_bytes, off_rel) = count_run(nodes, false, None);
        for (label, msgs, bytes, rel, drop) in [
            ("off", off_msgs, off_bytes, off_rel, 0.0),
            (
                "on",
                on_msgs,
                on_bytes,
                on_rel,
                100.0 * (1.0 - on_msgs as f64 / off_msgs as f64),
            ),
        ] {
            eprintln!(
                "{nodes:>6} {label:>10} {msgs:>12} {:>10.1} {bytes:>12} {:>12.1} {drop:>9.1}%",
                msgs as f64 / rel as f64,
                bytes as f64 / rel as f64,
            );
        }
    }
    report_threshold_sweep();
}

/// The adaptive-relay threshold sweep behind the `MUNIN_RELAY_MAX_BYTES`
/// default: 16-node instance, piggyback on, message drop and byte ratio vs
/// piggyback off per threshold. `t=0` sends every payload direct (relay
/// bypassed entirely); `t=max` relays every payload (the pre-threshold
/// behaviour, ~1.4x bytes).
fn report_threshold_sweep() {
    let (off_msgs, off_bytes, _) = count_run(16, false, None);
    eprintln!("micro_flush relay threshold sweep (16 nodes, piggyback on vs off):");
    eprintln!(
        "{:>10} {:>12} {:>9} {:>12} {:>9}",
        "threshold", "messages", "drop", "bytes", "ratio"
    );
    eprintln!(
        "{:>10} {off_msgs:>12} {:>9} {off_bytes:>12} {:>9}",
        "(off)", "-", "-"
    );
    for t in [0u64, 128, 256, 384, 512, 640, 768, u64::MAX] {
        let (msgs, bytes, _) = count_run(16, true, Some(t));
        let label = if t == u64::MAX {
            "max".to_string()
        } else {
            t.to_string()
        };
        eprintln!(
            "{label:>10} {msgs:>12} {:>8.1}% {bytes:>12} {:>8.3}x",
            100.0 * (1.0 - msgs as f64 / off_msgs as f64),
            bytes as f64 / off_bytes as f64,
        );
    }
}

fn bench_flush(c: &mut Criterion) {
    report_message_economy();
    let mut group = c.benchmark_group("flush");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for (label, piggyback) in [("piggyback_on", true), ("piggyback_off", false)] {
        group.bench_function(format!("sor_8node/{label}"), |b| {
            b.iter(|| {
                let (m, grid) =
                    sor::run_munin(params(8, 4, piggyback, None), CostModel::fast_test()).unwrap();
                criterion::black_box((m.elapsed, grid))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flush);
criterion_main!(benches);
