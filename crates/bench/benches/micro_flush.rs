//! Microbenchmark of the release-flush path and the carrier/outbox layer's
//! message economy.
//!
//! Three things are measured:
//!
//! * **Wall clock** of a complete SOR run (criterion groups), with the
//!   carrier layer on and off — the piggyback path must not cost host time.
//! * **Message economy**: total protocol messages and modelled wire bytes
//!   per release (DUQ flush) at 2/8/16 nodes, piggyback on vs off. These
//!   counts are printed on every run and are the source of the committed
//!   `BENCH_msg.json` baseline.
//! * **Scaling curves** at 64/128/256 nodes: the same message-economy table
//!   continued into combining-tree territory (the auto policy switches the
//!   barriers from flat to a k=8 tree at 32 nodes), plus a barrier-latency
//!   sweep comparing the flat owner-collected path against trees of fan-in
//!   k ∈ {2, 4, 8, 16}. Message/byte counts, owner ingress, and virtual-time
//!   spans are the honest metrics here — they are schedule-deterministic per
//!   seed; wall-clock rows from the 1-core measurement host carry the usual
//!   caveat. These tables are the source of the committed `BENCH_scale.json`
//!   baseline.
//!
//! Refresh the committed baselines with:
//! `cargo bench -p munin-bench --bench micro_flush` (copy the printed
//! tables into `BENCH_msg.json` / `BENCH_scale.json`).
//!
//! CI runs this bench with `-- --quick` as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use munin_apps::sor::{self, SorParams};
use munin_core::copyset::CopySet;
use munin_sim::{CostModel, EngineConfig, NodeId};
use std::time::Duration;

/// A page-aligned SOR instance (each worker's band is exactly one 512-byte
/// page), so every flushed page is owner-flushed and the relay path is
/// exercised — the same shape as the paper's 1024x512-over-8KB-pages runs.
/// `relay_max` overrides the adaptive-relay size threshold
/// (`MUNIN_RELAY_MAX_BYTES`); `None` keeps the tuned default.
fn params(nodes: usize, iterations: usize, piggyback: bool, relay_max: Option<u64>) -> SorParams {
    let mut p = SorParams::small(nodes * 4, 16, iterations, nodes);
    p.engine = EngineConfig::seeded(7);
    p.piggyback = piggyback;
    p.relay_max_bytes = relay_max;
    p
}

/// One counted run: (total messages, total bytes, releases performed).
fn count_run(nodes: usize, piggyback: bool, relay_max: Option<u64>) -> (u64, u64, u64) {
    let (m, _grid) = sor::run_munin(
        params(nodes, 12, piggyback, relay_max),
        CostModel::fast_test(),
    )
    .expect("SOR run");
    (
        m.engine.messages_sent,
        m.engine.bytes_sent,
        m.stats.duq_flushes,
    )
}

fn report_message_economy() {
    eprintln!("micro_flush message economy (SOR, page-aligned bands, 12 iterations):");
    eprintln!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "nodes", "mode", "messages", "msgs/rel", "bytes", "bytes/rel", "drop"
    );
    for nodes in [2usize, 8, 16] {
        let (on_msgs, on_bytes, on_rel) = count_run(nodes, true, None);
        let (off_msgs, off_bytes, off_rel) = count_run(nodes, false, None);
        for (label, msgs, bytes, rel, drop) in [
            ("off", off_msgs, off_bytes, off_rel, 0.0),
            (
                "on",
                on_msgs,
                on_bytes,
                on_rel,
                100.0 * (1.0 - on_msgs as f64 / off_msgs as f64),
            ),
        ] {
            eprintln!(
                "{nodes:>6} {label:>10} {msgs:>12} {:>10.1} {bytes:>12} {:>12.1} {drop:>9.1}%",
                msgs as f64 / rel as f64,
                bytes as f64 / rel as f64,
            );
        }
    }
    report_threshold_sweep();
}

/// The adaptive-relay threshold sweep behind the `MUNIN_RELAY_MAX_BYTES`
/// default: 16-node instance, piggyback on, message drop and byte ratio vs
/// piggyback off per threshold. `t=0` sends every payload direct (relay
/// bypassed entirely); `t=max` relays every payload (the pre-threshold
/// behaviour, ~1.4x bytes).
fn report_threshold_sweep() {
    let (off_msgs, off_bytes, _) = count_run(16, false, None);
    eprintln!("micro_flush relay threshold sweep (16 nodes, piggyback on vs off):");
    eprintln!(
        "{:>10} {:>12} {:>9} {:>12} {:>9}",
        "threshold", "messages", "drop", "bytes", "ratio"
    );
    eprintln!(
        "{:>10} {off_msgs:>12} {:>9} {off_bytes:>12} {:>9}",
        "(off)", "-", "-"
    );
    for t in [0u64, 128, 256, 384, 512, 640, 768, u64::MAX] {
        let (msgs, bytes, _) = count_run(16, true, Some(t));
        let label = if t == u64::MAX {
            "max".to_string()
        } else {
            t.to_string()
        };
        eprintln!(
            "{label:>10} {msgs:>12} {:>8.1}% {bytes:>12} {:>8.3}x",
            100.0 * (1.0 - msgs as f64 / off_msgs as f64),
            bytes as f64 / off_bytes as f64,
        );
    }
}

/// One wide-cluster run with an explicit barrier fan-out override. Returns
/// (messages, bytes, owner ingress, virtual elapsed ms). `fanout` follows
/// `MUNIN_BARRIER_FANOUT` semantics: `Some(usize::MAX)` forces flat,
/// `Some(k)` forces a k-ary tree, `None` keeps the auto policy (tree, k = 8,
/// at 32 nodes and up).
fn scale_run(
    nodes: usize,
    iterations: usize,
    piggyback: bool,
    fanout: Option<usize>,
) -> (u64, u64, u64, f64) {
    let mut p = params(nodes, iterations, piggyback, None);
    p.barrier_fanout = fanout;
    let (m, _grid) = sor::run_munin(p, CostModel::fast_test()).expect("SOR run");
    (
        m.engine.messages_sent,
        m.engine.bytes_sent,
        m.stats.barrier_owner_ingress,
        m.elapsed.as_millis_f64(),
    )
}

/// All-node barrier episodes in one SOR run: the internal start barrier, one
/// `copied` wait after init, then a `computed` and a `copied` per iteration.
fn episodes(iterations: usize) -> u64 {
    2 * iterations as u64 + 2
}

/// Message-economy scaling curve into combining-tree territory: 64/128/256
/// nodes under the auto barrier policy (tree, k = 8), piggyback on vs off.
/// Fewer iterations than the small-cluster table (4 vs 12) keep the
/// 256-thread runs quick; the per-release columns stay comparable.
fn report_scaling() {
    const ITERS: usize = 4;
    eprintln!(
        "micro_flush scaling curve (SOR, auto barrier policy = tree k=8, {ITERS} iterations):"
    );
    eprintln!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "nodes", "mode", "messages", "bytes", "drop", "virt_ms"
    );
    for nodes in [64usize, 128, 256] {
        let (off_msgs, off_bytes, _, off_ms) = scale_run(nodes, ITERS, false, None);
        let (on_msgs, on_bytes, _, on_ms) = scale_run(nodes, ITERS, true, None);
        for (label, msgs, bytes, ms, drop) in [
            ("off", off_msgs, off_bytes, off_ms, 0.0),
            (
                "on",
                on_msgs,
                on_bytes,
                on_ms,
                100.0 * (1.0 - on_msgs as f64 / off_msgs as f64),
            ),
        ] {
            eprintln!("{nodes:>6} {label:>10} {msgs:>12} {bytes:>12} {drop:>9.1}% {ms:>12.3}");
        }
    }
}

/// Barrier-latency sweep: flat owner collection vs combining trees of fan-in
/// k ∈ {2, 4, 8, 16} at 64/128/256 nodes. The owner-ingress column is the
/// tree's whole point — N arrivals per episode flat, k combines per episode
/// tree — and the virtual-time span shows what the serialized owner
/// service cost does to the critical path at scale.
fn report_barrier_sweep() {
    const ITERS: usize = 4;
    eprintln!(
        "micro_flush barrier sweep (SOR, piggyback on, {ITERS} iterations, {} episodes):",
        episodes(ITERS)
    );
    eprintln!(
        "{:>6} {:>8} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "nodes", "barrier", "ingress", "ingress/ep", "messages", "bytes", "virt_ms"
    );
    for nodes in [64usize, 128, 256] {
        for fanout in [usize::MAX, 2, 4, 8, 16] {
            let (msgs, bytes, ingress, ms) = scale_run(nodes, ITERS, true, Some(fanout));
            let label = if fanout == usize::MAX {
                "flat".to_string()
            } else {
                format!("k={fanout}")
            };
            eprintln!(
                "{nodes:>6} {label:>8} {ingress:>10} {:>14.1} {msgs:>12} {bytes:>12} {ms:>12.3}",
                ingress as f64 / episodes(ITERS) as f64,
            );
        }
    }
}

/// Before/after row for the copyset member walk on wide clusters: the old
/// call sites collected `members()` into a fresh `Vec<NodeId>` per fan-out;
/// the audited hot paths drive the allocation-free `iter()` directly.
fn bench_copyset_iter(c: &mut Criterion) {
    const NODES: usize = 256;
    // Every other node holds a copy — a wide (128-member) set where the
    // per-walk allocation is at its most visible.
    let set = CopySet::from_nodes((0..NODES).step_by(2).map(NodeId::new));
    let exclude = Some(NodeId::new(0));
    let mut group = c.benchmark_group("copyset");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    group.bench_function("wide_walk_256/members_alloc", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in set.members(NODES, exclude) {
                acc += n.as_usize();
            }
            acc
        });
    });
    group.bench_function("wide_walk_256/iter", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in set.iter(NODES, exclude) {
                acc += n.as_usize();
            }
            acc
        });
    });
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    report_message_economy();
    report_scaling();
    report_barrier_sweep();
    let mut group = c.benchmark_group("flush");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for (label, piggyback) in [("piggyback_on", true), ("piggyback_off", false)] {
        group.bench_function(format!("sor_8node/{label}"), |b| {
            b.iter(|| {
                let (m, grid) =
                    sor::run_munin(params(8, 4, piggyback, None), CostModel::fast_test()).unwrap();
                criterion::black_box((m.elapsed, grid))
            });
        });
    }
    // Wall clock at 128 nodes, flat vs tree. On the 1-core measurement host
    // this mostly tracks host-level scheduling of 128 worker threads, not
    // protocol latency — the virtual-time columns above are the honest
    // scaling metric; this row just guards against the tree path costing
    // host time.
    for (label, fanout) in [("flat", usize::MAX), ("tree_k8", 8)] {
        group.bench_function(format!("sor_128node/{label}"), |b| {
            b.iter(|| {
                let mut p = params(128, 2, true, None);
                p.barrier_fanout = Some(fanout);
                let (m, grid) = sor::run_munin(p, CostModel::fast_test()).unwrap();
                criterion::black_box((m.elapsed, grid))
            });
        });
    }
    group.finish();
}

criterion_group!(copyset_benches, bench_copyset_iter);

criterion_group!(benches, bench_flush);
criterion_main!(benches, copyset_benches);
