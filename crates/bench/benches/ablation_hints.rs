//! Ablation from §2.4 of the paper: the effect of `AssociateDataAndSynch` —
//! piggybacking the protected data on lock transfers — on a critical-section
//! workload with a migratory record.

use munin_bench::hints_ablation;

fn main() {
    println!("=== Ablation: AssociateDataAndSynch (8 processors, 20 lock rounds each) ===");
    println!(
        "{:<26} {:>12} {:>16}",
        "Configuration", "Total (s)", "Object fetches"
    );
    for row in hints_ablation(8, 20) {
        println!(
            "{:<26} {:>12.3} {:>16}",
            row.label,
            row.elapsed.as_secs_f64(),
            row.object_fetches
        );
    }
}
