//! Criterion microbenchmarks of the twin/diff machinery in *real* time on the
//! host machine.
//!
//! Two families:
//!
//! * `diff_8kb` — twin copy, encode, and decode of an 8 KB object under the
//!   three modification patterns of Table 2 (one word, all words, alternate
//!   words), kept for continuity with the paper.
//! * `diff_scale` — the flat block-skip encoder (`encode_flat`, reusing one
//!   `DiffScratch` across iterations, i.e. zero allocations per run) against
//!   the word-by-word reference encoder (`encode_reference`, the seed's
//!   strategy), plus `apply`, under sparse (1% of words), clustered (two
//!   dirty 256-word stripes), and fully-dirty patterns at 4 KiB, 64 KiB, and
//!   1 MiB object sizes.
//!
//! Run with `BENCH_JSON_OUT=BENCH_diff.json cargo bench --bench micro_diff`
//! to refresh the committed baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use munin_core::diff::{self, DiffScratch};
use std::time::Duration;

fn patterns() -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    let size = 8192;
    let words = size / 4;
    [
        ("one_word", 7usize..8),
        ("all_words", 0..words),
        ("alternate_words", 0..words),
    ]
    .into_iter()
    .map(|(name, range)| {
        let twin = vec![0u8; size];
        let mut cur = twin.clone();
        for w in range {
            if name != "alternate_words" || w % 2 == 0 {
                cur[w * 4..w * 4 + 4].copy_from_slice(&1u32.to_le_bytes());
            }
        }
        (name, cur, twin)
    })
    .collect()
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_8kb");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30);
    for (name, cur, twin) in patterns() {
        group.bench_function(format!("twin_copy/{name}"), |b| {
            b.iter(|| diff::make_twin(std::hint::black_box(&cur)))
        });
        group.bench_function(format!("encode/{name}"), |b| {
            let mut scratch = DiffScratch::new();
            b.iter(|| scratch.encode(std::hint::black_box(&cur), std::hint::black_box(&twin)))
        });
        let d = diff::encode(&cur, &twin);
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut target| diff::apply(&d, &mut target).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// A deterministically pseudo-random buffer of `words` words.
fn random_buffer(words: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(words * 4);
    for _ in 0..words {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&((state >> 24) as u32).to_le_bytes());
    }
    out
}

/// Builds the change patterns of a `size`-byte object for the scale suite.
fn scale_patterns(size: usize) -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    let words = size / 4;
    let twin = random_buffer(words, size as u64);
    let mut out = Vec::new();

    // Sparse: ~1% of words changed, spread uniformly (the SOR edge-exchange
    // shape: most of the object identical).
    let mut sparse = twin.clone();
    for w in (0..words).step_by(100) {
        sparse[w * 4] ^= 0xFF;
    }
    out.push(("sparse_1pct", sparse, twin.clone()));

    // Clustered: two dirty stripes of 256 contiguous words each.
    let mut clustered = twin.clone();
    let stripe = 256.min(words / 2);
    for w in (words / 8)..(words / 8 + stripe).min(words) {
        clustered[w * 4 + 1] ^= 0xA5;
    }
    for w in (words * 3 / 4)..(words * 3 / 4 + stripe).min(words) {
        clustered[w * 4 + 1] ^= 0xA5;
    }
    out.push(("clustered", clustered, twin.clone()));

    // Fully dirty: every word changed.
    let dirty = random_buffer(words, size as u64 + 17);
    out.push(("full_dirty", dirty, twin));

    out
}

fn bench_diff_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_scale");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(15);
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let kib = size / 1024;
        for (name, cur, twin) in scale_patterns(size) {
            group.bench_function(format!("encode_flat/{kib}KiB/{name}"), |b| {
                let mut scratch = DiffScratch::new();
                b.iter(|| scratch.encode(std::hint::black_box(&cur), std::hint::black_box(&twin)))
            });
            group.bench_function(format!("encode_reference/{kib}KiB/{name}"), |b| {
                b.iter(|| {
                    diff::encode_reference(std::hint::black_box(&cur), std::hint::black_box(&twin))
                })
            });
            let d = diff::encode(&cur, &twin);
            group.bench_function(format!("apply/{kib}KiB/{name}"), |b| {
                b.iter_batched(
                    || twin.clone(),
                    |mut target| diff::apply(&d, &mut target).unwrap(),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_diff, bench_diff_scale);
criterion_main!(benches);
