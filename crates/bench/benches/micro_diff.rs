//! Criterion microbenchmarks of the twin/diff machinery in *real* time on the
//! host machine: twin copy, run-length encoding, and decode/merge of an 8 KB
//! object under the three modification patterns of Table 2.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use munin_core::diff;
use std::time::Duration;

fn patterns() -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    let size = 8192;
    let words = size / 4;
    [("one_word", 7usize..8), ("all_words", 0..words), ("alternate_words", 0..words)]
        .into_iter()
        .map(|(name, range)| {
            let twin = vec![0u8; size];
            let mut cur = twin.clone();
            for w in range {
                if name != "alternate_words" || w % 2 == 0 {
                    cur[w * 4..w * 4 + 4].copy_from_slice(&1u32.to_le_bytes());
                }
            }
            (name, cur, twin)
        })
        .collect()
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_8kb");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30);
    for (name, cur, twin) in patterns() {
        group.bench_function(format!("twin_copy/{name}"), |b| {
            b.iter(|| diff::make_twin(std::hint::black_box(&cur)))
        });
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| diff::encode(std::hint::black_box(&cur), std::hint::black_box(&twin)))
        });
        let d = diff::encode(&cur, &twin);
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut target| diff::apply(&d, &mut target).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diff);
criterion_main!(benches);
