//! Criterion microbenchmarks of the synchronization primitives measured in
//! *virtual* time per operation: distributed queue-based lock transfer and
//! barrier episodes at several cluster sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use munin_core::{MuninConfig, MuninProgram, SharingAnnotation};
use munin_sim::CostModel;
use std::time::Duration;

/// Runs a lock ping-pong program and returns virtual seconds per round.
fn lock_round_cost(nodes: usize, rounds: usize) -> f64 {
    let cfg = MuninConfig::paper(nodes).with_cost(CostModel::sun_ethernet_1991());
    let mut prog = MuninProgram::new(cfg);
    let counter = prog.declare::<i64>("counter", 1, SharingAnnotation::Migratory);
    let lock = prog.create_lock("lock");
    let done = prog.create_barrier("done");
    prog.user_init(move |init| init.write(&counter, 0, 0).unwrap());
    let report = prog
        .run(move |ctx| {
            for _ in 0..rounds {
                ctx.acquire_lock(lock)?;
                let v: i64 = ctx.read(&counter, 0)?;
                ctx.write(&counter, 0, v + 1)?;
                ctx.release_lock(lock)?;
            }
            ctx.wait_at_barrier(done)?;
            Ok(())
        })
        .expect("lock workload");
    report.elapsed.as_secs_f64() / (rounds * nodes) as f64
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_virtual_time");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for nodes in [2usize, 4, 8] {
        group.bench_function(format!("lock_round/{nodes}_nodes"), |b| {
            b.iter(|| lock_round_cost(nodes, 5))
        });
    }
    group.finish();
    // Also print the virtual per-round cost once, for EXPERIMENTS.md.
    for nodes in [2usize, 4, 8, 16] {
        println!(
            "virtual lock round ({nodes} nodes): {:.3} ms",
            lock_round_cost(nodes, 5) * 1e3
        );
    }
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
