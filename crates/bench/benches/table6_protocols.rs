//! Regenerates Table 6 of the paper: the effect of multiple protocols.
//! Matrix Multiply and SOR at 16 processors under (a) the multi-protocol
//! annotations, (b) write-shared only, (c) conventional only.

use munin_bench::{format_protocol_table, protocol_comparison};

fn main() {
    println!("=== Table 6: effect of multiple protocols (sec, 16 processors) ===");
    let rows = protocol_comparison(16);
    print!("{}", format_protocol_table(&rows));
    let multi_sor = rows[0].sor.as_secs_f64();
    let ws_sor = rows[1].sor.as_secs_f64();
    let conv_sor = rows[2].sor.as_secs_f64();
    println!(
        "SOR: write-shared / multiple = {:.2}x, conventional / multiple = {:.2}x",
        ws_sor / multi_sor,
        conv_sor / multi_sor
    );
    let multi_mm = rows[0].matmul.as_secs_f64();
    println!(
        "Matrix Multiply: write-shared / multiple = {:.2}x, conventional / multiple = {:.2}x",
        rows[1].matmul.as_secs_f64() / multi_mm,
        rows[2].matmul.as_secs_f64() / multi_mm
    );
}
