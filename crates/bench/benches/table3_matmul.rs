//! Regenerates Table 3 of the paper: Matrix Multiply (400 × 400), Munin vs.
//! hand-coded message passing, 1–16 processors.

use munin_bench::{format_comparison_table, matmul_comparison, PAPER_PROCS};

fn main() {
    println!("=== Table 3: performance of Matrix Multiply (sec) ===");
    let rows = matmul_comparison(&PAPER_PROCS, false);
    print!(
        "{}",
        format_comparison_table("Matrix Multiply, 400x400 int matrices", &rows)
    );
    let worst = rows.iter().map(|r| r.diff_pct()).fold(f64::MIN, f64::max);
    println!("worst-case Munin overhead vs message passing: {worst:.1}%");
}
