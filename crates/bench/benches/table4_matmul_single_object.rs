//! Regenerates Table 4 of the paper: Matrix Multiply with the `SingleObject`
//! optimization applied to the input matrix that every worker reads in full.

use munin_bench::{format_comparison_table, matmul_comparison, PAPER_PROCS};

fn main() {
    println!("=== Table 4: performance of optimized Matrix Multiply (sec) ===");
    let rows = matmul_comparison(&PAPER_PROCS, true);
    print!(
        "{}",
        format_comparison_table("Matrix Multiply with SingleObject() on input2", &rows)
    );
    let worst = rows.iter().map(|r| r.diff_pct()).fold(f64::MIN, f64::max);
    println!("worst-case Munin overhead vs message passing: {worst:.1}%");
}
