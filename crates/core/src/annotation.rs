//! Sharing annotations and the protocol parameters derived from them.
//!
//! Munin derives the consistency protocol for every shared object from eight
//! low-level protocol parameters (Section 3.1 of the paper). Programmers do
//! not set the parameters directly; they annotate each shared variable
//! declaration with one of a small set of high-level *sharing annotations*
//! (Section 3.2), and the runtime maps the annotation to a parameter setting
//! according to Table 1 of the paper. That mapping is reproduced verbatim by
//! [`ProtocolParams::for_annotation`].

use std::fmt;

/// The high-level sharing annotations supported by the Munin prototype.
///
/// An unannotated shared variable is treated as [`SharingAnnotation::Conventional`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SharingAnnotation {
    /// Initialized once, never written afterwards; replicated on demand.
    ReadOnly,
    /// Accessed by one thread at a time (typically inside a critical
    /// section); the object migrates, with ownership, to each new accessor.
    Migratory,
    /// Concurrently written by multiple threads without synchronization
    /// because the writes touch disjoint words; twins and diffs resolve
    /// false sharing.
    WriteShared,
    /// Written by one thread and read by one or more others, with a stable
    /// sharing relationship; consumers' copies are updated, not invalidated.
    ProducerConsumer,
    /// Accessed only through `Fetch_and_Φ` operations; kept at a fixed owner.
    Reduction,
    /// Written in parallel by many threads, then read exclusively by one;
    /// changes are flushed only to the owner.
    Result,
    /// The default: ownership-based single-writer write-invalidate protocol
    /// (as in Ivy).
    Conventional,
}

impl SharingAnnotation {
    /// All annotations, in the order of Table 1 of the paper.
    pub const ALL: [SharingAnnotation; 7] = [
        SharingAnnotation::ReadOnly,
        SharingAnnotation::Migratory,
        SharingAnnotation::WriteShared,
        SharingAnnotation::ProducerConsumer,
        SharingAnnotation::Reduction,
        SharingAnnotation::Result,
        SharingAnnotation::Conventional,
    ];

    /// The annotation keyword as it appears in a Munin program
    /// (e.g. `shared read_only int input[N][N]`).
    pub fn keyword(self) -> &'static str {
        match self {
            SharingAnnotation::ReadOnly => "read_only",
            SharingAnnotation::Migratory => "migratory",
            SharingAnnotation::WriteShared => "write_shared",
            SharingAnnotation::ProducerConsumer => "producer_consumer",
            SharingAnnotation::Reduction => "reduction",
            SharingAnnotation::Result => "result",
            SharingAnnotation::Conventional => "conventional",
        }
    }
}

impl fmt::Display for SharingAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A protocol parameter whose value Table 1 leaves unspecified ("don't care")
/// for some annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Param {
    /// The parameter is set.
    Yes,
    /// The parameter is cleared.
    No,
    /// Table 1 leaves the parameter unspecified for this annotation.
    DontCare,
}

impl Param {
    /// Interprets the parameter as a boolean, resolving "don't care" to the
    /// supplied default.
    pub fn as_bool(self, default: bool) -> bool {
        match self {
            Param::Yes => true,
            Param::No => false,
            Param::DontCare => default,
        }
    }
}

/// The eight protocol parameters of Section 3.1.
///
/// Field names follow the paper's abbreviations:
/// `I` (invalidate), `R` (replicas), `D` (delayed operations),
/// `FO` (fixed owner), `M` (multiple writers), `S` (stable sharing),
/// `Fl` (flush changes to owner), `W` (writable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolParams {
    /// `I`: propagate changes by invalidating (true) or updating (false)
    /// remote copies.
    pub invalidate: Param,
    /// `R`: more than one copy of the object may exist.
    pub replicas: Param,
    /// `D`: updates/invalidations may be delayed until a release.
    pub delayed: Param,
    /// `FO`: ownership never propagates; writes are sent to the owner.
    pub fixed_owner: Param,
    /// `M`: multiple threads may write concurrently (diff-merged).
    pub multiple_writers: Param,
    /// `S`: the sharing pattern is stable; the copyset is determined once.
    pub stable: Param,
    /// `Fl`: changes are flushed only to the owner and the local copy is
    /// invalidated afterwards.
    pub flush_to_owner: Param,
    /// `W`: the object may be written at all.
    pub writable: Param,
}

impl ProtocolParams {
    /// Returns the parameter setting for `annotation`, exactly as listed in
    /// Table 1 of the paper.
    pub fn for_annotation(annotation: SharingAnnotation) -> Self {
        use Param::{DontCare as X, No as N, Yes as Y};
        match annotation {
            // Annotation               I  R  D  FO M  S  Fl W
            SharingAnnotation::ReadOnly => ProtocolParams::from_row([N, Y, X, X, X, X, X, N]),
            SharingAnnotation::Migratory => ProtocolParams::from_row([Y, N, X, N, N, X, N, Y]),
            SharingAnnotation::WriteShared => ProtocolParams::from_row([N, Y, Y, N, Y, N, N, Y]),
            SharingAnnotation::ProducerConsumer => {
                ProtocolParams::from_row([N, Y, Y, N, Y, Y, N, Y])
            }
            SharingAnnotation::Reduction => ProtocolParams::from_row([N, Y, N, Y, N, X, N, Y]),
            SharingAnnotation::Result => ProtocolParams::from_row([N, Y, Y, Y, Y, X, Y, Y]),
            SharingAnnotation::Conventional => ProtocolParams::from_row([Y, Y, N, N, N, X, N, Y]),
        }
    }

    /// Builds a parameter set from a Table 1 row in column order
    /// `[I, R, D, FO, M, S, Fl, W]`.
    pub fn from_row(row: [Param; 8]) -> Self {
        ProtocolParams {
            invalidate: row[0],
            replicas: row[1],
            delayed: row[2],
            fixed_owner: row[3],
            multiple_writers: row[4],
            stable: row[5],
            flush_to_owner: row[6],
            writable: row[7],
        }
    }

    /// The Table 1 row for this parameter set, in column order
    /// `[I, R, D, FO, M, S, Fl, W]`.
    pub fn as_row(&self) -> [Param; 8] {
        [
            self.invalidate,
            self.replicas,
            self.delayed,
            self.fixed_owner,
            self.multiple_writers,
            self.stable,
            self.flush_to_owner,
            self.writable,
        ]
    }

    /// Whether changes are propagated by invalidation (resolving "don't care"
    /// to update-based, the cheaper choice for objects that are never
    /// written).
    pub fn uses_invalidate(&self) -> bool {
        self.invalidate.as_bool(false)
    }

    /// Whether the object may be replicated.
    pub fn allows_replicas(&self) -> bool {
        self.replicas.as_bool(true)
    }

    /// Whether updates may be delayed in the DUQ until a release.
    pub fn allows_delay(&self) -> bool {
        self.delayed.as_bool(false)
    }

    /// Whether ownership is fixed at the home node.
    pub fn has_fixed_owner(&self) -> bool {
        self.fixed_owner.as_bool(false)
    }

    /// Whether multiple concurrent writers are allowed (requiring twins).
    pub fn allows_multiple_writers(&self) -> bool {
        self.multiple_writers.as_bool(false)
    }

    /// Whether the sharing pattern is stable (copyset determined once).
    pub fn is_stable(&self) -> bool {
        self.stable.as_bool(false)
    }

    /// Whether changes are flushed only to the owner (and the local copy is
    /// then invalidated).
    pub fn flushes_to_owner(&self) -> bool {
        self.flush_to_owner.as_bool(false)
    }

    /// Whether the object may be written.
    pub fn is_writable(&self) -> bool {
        self.writable.as_bool(true)
    }
}

/// Renders Table 1 of the paper ("Munin Annotations and Corresponding
/// Protocol Parameters") as text, used by the `table1_annotations` bench
/// harness and the documentation.
pub fn render_table1() -> String {
    fn cell(p: Param) -> &'static str {
        match p {
            Param::Yes => "Y",
            Param::No => "N",
            Param::DontCare => "-",
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2}\n",
        "Annotation", "I", "R", "D", "FO", "M", "S", "Fl", "W"
    ));
    for ann in SharingAnnotation::ALL {
        let row = ProtocolParams::for_annotation(ann).as_row();
        out.push_str(&format!(
            "{:<18} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2} {:>2}\n",
            ann.keyword(),
            cell(row[0]),
            cell(row[1]),
            cell(row[2]),
            cell(row[3]),
            cell(row[4]),
            cell(row[5]),
            cell(row[6]),
            cell(row[7]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_objects_are_never_writable_and_never_invalidate() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::ReadOnly);
        assert!(!p.is_writable());
        assert!(!p.uses_invalidate());
        assert!(p.allows_replicas());
    }

    #[test]
    fn migratory_objects_invalidate_and_do_not_replicate() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::Migratory);
        assert!(p.uses_invalidate());
        assert!(!p.allows_replicas());
        assert!(!p.allows_multiple_writers());
        assert!(p.is_writable());
    }

    #[test]
    fn write_shared_allows_multiple_delayed_writers_with_updates() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::WriteShared);
        assert!(!p.uses_invalidate());
        assert!(p.allows_delay());
        assert!(p.allows_multiple_writers());
        assert!(!p.is_stable());
    }

    #[test]
    fn producer_consumer_is_write_shared_plus_stability() {
        let ws = ProtocolParams::for_annotation(SharingAnnotation::WriteShared);
        let pc = ProtocolParams::for_annotation(SharingAnnotation::ProducerConsumer);
        assert!(pc.is_stable());
        assert!(!ws.is_stable());
        // Everything else in the two rows matches.
        let ws_row = ws.as_row();
        let pc_row = pc.as_row();
        for (i, (a, b)) in ws_row.iter().zip(pc_row.iter()).enumerate() {
            if i != 5 {
                assert_eq!(a, b, "column {i}");
            }
        }
    }

    #[test]
    fn reduction_has_a_fixed_owner_and_no_delay() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::Reduction);
        assert!(p.has_fixed_owner());
        assert!(!p.allows_delay());
        assert!(!p.allows_multiple_writers());
    }

    #[test]
    fn result_flushes_to_a_fixed_owner_with_multiple_writers() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::Result);
        assert!(p.flushes_to_owner());
        assert!(p.has_fixed_owner());
        assert!(p.allows_multiple_writers());
        assert!(p.allows_delay());
        assert!(!p.uses_invalidate());
    }

    #[test]
    fn conventional_is_single_writer_write_invalidate() {
        let p = ProtocolParams::for_annotation(SharingAnnotation::Conventional);
        assert!(p.uses_invalidate());
        assert!(p.allows_replicas());
        assert!(!p.allows_delay());
        assert!(!p.allows_multiple_writers());
    }

    #[test]
    fn row_round_trips() {
        for ann in SharingAnnotation::ALL {
            let p = ProtocolParams::for_annotation(ann);
            assert_eq!(ProtocolParams::from_row(p.as_row()), p);
        }
    }

    #[test]
    fn table1_lists_all_annotations() {
        let table = render_table1();
        for ann in SharingAnnotation::ALL {
            assert!(table.contains(ann.keyword()), "missing {ann}");
        }
        // Header + 7 rows.
        assert_eq!(table.lines().count(), 8);
    }

    #[test]
    fn keywords_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ann in SharingAnnotation::ALL {
            assert!(seen.insert(ann.keyword()));
        }
    }
}
