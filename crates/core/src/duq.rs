//! The delayed update queue (DUQ).
//!
//! "The delayed update queue is used to buffer pending outgoing write
//! operations as part of Munin's software implementation of release
//! consistency. A write to an object that allows delayed updates ... is
//! stored in the DUQ. The DUQ is flushed whenever a local thread releases a
//! lock or arrives at a barrier." (Section 3.3.)
//!
//! An entry records the object and, when the protocol allows multiple
//! writers, the twin made at the first write since the last flush.

use std::collections::HashMap;

use crate::object::ObjectId;

/// One pending entry of the DUQ.
#[derive(Clone, Debug)]
pub struct DuqEntry {
    /// The modified object.
    pub object: ObjectId,
    /// The twin made at the first write, if the protocol requires one
    /// (multiple writers allowed). `None` means the whole object (or an
    /// invalidation) will be propagated instead of a diff.
    pub twin: Option<Vec<u8>>,
}

/// The delayed update queue of one node.
#[derive(Debug, Default)]
pub struct DelayedUpdateQueue {
    entries: Vec<DuqEntry>,
    index: HashMap<ObjectId, usize>,
}

impl DelayedUpdateQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an object is already enqueued.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    /// Enqueues an object (with its twin, if any). Re-enqueueing an object
    /// that is already pending is a no-op: the existing twin still reflects
    /// the state at the first write since the last flush.
    pub fn enqueue(&mut self, object: ObjectId, twin: Option<Vec<u8>>) {
        if self.contains(object) {
            return;
        }
        self.index.insert(object, self.entries.len());
        self.entries.push(DuqEntry { object, twin });
    }

    /// Returns a reference to the twin of a pending object, if present.
    pub fn twin_of(&self, object: ObjectId) -> Option<&Vec<u8>> {
        self.index
            .get(&object)
            .and_then(|i| self.entries[*i].twin.as_ref())
    }

    /// Merges externally received changes into a pending twin so that words
    /// updated by a remote writer are not re-propagated as local changes at
    /// the next flush. Used when an update arrives for a dirty object.
    pub fn patch_twin<F: FnOnce(&mut Vec<u8>)>(&mut self, object: ObjectId, f: F) {
        if let Some(i) = self.index.get(&object) {
            if let Some(twin) = self.entries[*i].twin.as_mut() {
                f(twin);
            }
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes a single pending entry (used by `Invalidate`/`Flush` hints
    /// that force an individual object out early).
    pub fn remove(&mut self, object: ObjectId) -> Option<DuqEntry> {
        let idx = self.index.remove(&object)?;
        let entry = self.entries.remove(idx);
        // Reindex the tail.
        for (i, e) in self.entries.iter().enumerate().skip(idx) {
            self.index.insert(e.object, i);
        }
        Some(entry)
    }

    /// Drains every pending entry, in enqueue order. Called at a release
    /// (lock release or barrier arrival).
    pub fn flush(&mut self) -> Vec<DuqEntry> {
        self.index.clear();
        std::mem::take(&mut self.entries)
    }

    /// The pending objects, in enqueue order.
    pub fn pending(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|e| e.object).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_and_flush_preserve_order() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(2), None);
        duq.enqueue(ObjectId::new(0), Some(vec![1, 2, 3, 4]));
        assert_eq!(duq.len(), 2);
        assert!(duq.contains(ObjectId::new(2)));
        let drained = duq.flush();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].object, ObjectId::new(2));
        assert_eq!(drained[1].object, ObjectId::new(0));
        assert!(duq.is_empty());
    }

    #[test]
    fn duplicate_enqueue_keeps_first_twin() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(1), Some(vec![9]));
        duq.enqueue(ObjectId::new(1), Some(vec![7]));
        assert_eq!(duq.len(), 1);
        assert_eq!(duq.twin_of(ObjectId::new(1)), Some(&vec![9]));
    }

    #[test]
    fn remove_reindexes_remaining_entries() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(0), None);
        duq.enqueue(ObjectId::new(1), None);
        duq.enqueue(ObjectId::new(2), None);
        let removed = duq.remove(ObjectId::new(1)).unwrap();
        assert_eq!(removed.object, ObjectId::new(1));
        assert_eq!(duq.len(), 2);
        assert!(duq.contains(ObjectId::new(2)));
        assert_eq!(duq.remove(ObjectId::new(2)).unwrap().object, ObjectId::new(2));
        assert!(duq.remove(ObjectId::new(7)).is_none());
    }

    #[test]
    fn patch_twin_modifies_only_existing_twin() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(0), Some(vec![0, 0]));
        duq.enqueue(ObjectId::new(1), None);
        duq.patch_twin(ObjectId::new(0), |t| t[0] = 5);
        duq.patch_twin(ObjectId::new(1), |t| t[0] = 5);
        duq.patch_twin(ObjectId::new(9), |t| t[0] = 5);
        assert_eq!(duq.twin_of(ObjectId::new(0)), Some(&vec![5, 0]));
        assert_eq!(duq.twin_of(ObjectId::new(1)), None);
    }

    #[test]
    fn pending_lists_objects() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(4), None);
        duq.enqueue(ObjectId::new(5), None);
        assert_eq!(duq.pending(), vec![ObjectId::new(4), ObjectId::new(5)]);
    }
}
