//! The delayed update queue (DUQ).
//!
//! "The delayed update queue is used to buffer pending outgoing write
//! operations as part of Munin's software implementation of release
//! consistency. A write to an object that allows delayed updates ... is
//! stored in the DUQ. The DUQ is flushed whenever a local thread releases a
//! lock or arrives at a barrier." (Section 3.3.)
//!
//! An entry records the object and, when the protocol allows multiple
//! writers, the twin made at the first write since the last flush.
//!
//! Twin buffers are recycled through a small pool: a first-write fault takes
//! a buffer from the pool instead of allocating, and the flush path returns
//! the buffer once the diff is encoded. Under a steady flush cadence the
//! write-shared hot path therefore performs no twin allocations after
//! warm-up.

use std::collections::HashMap;

use crate::object::ObjectId;

/// Maximum number of twin buffers kept for reuse; beyond this, returned
/// buffers are simply freed. Sized for the largest flush bursts the paper's
/// workloads generate.
const TWIN_POOL_CAP: usize = 64;

/// One pending entry of the DUQ.
#[derive(Clone, Debug)]
pub struct DuqEntry {
    /// The modified object.
    pub object: ObjectId,
    /// The twin made at the first write, if the protocol requires one
    /// (multiple writers allowed). `None` means the whole object (or an
    /// invalidation) will be propagated instead of a diff.
    pub twin: Option<Vec<u8>>,
}

/// The delayed update queue of one node.
#[derive(Debug, Default)]
pub struct DelayedUpdateQueue {
    entries: Vec<DuqEntry>,
    index: HashMap<ObjectId, usize>,
    /// Freed twin buffers awaiting reuse by the next first-write fault.
    twin_pool: Vec<Vec<u8>>,
}

impl DelayedUpdateQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an object is already enqueued.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    /// Enqueues an object (with its twin, if any). Re-enqueueing an object
    /// that is already pending is a no-op: the existing twin still reflects
    /// the state at the first write since the last flush.
    pub fn enqueue(&mut self, object: ObjectId, twin: Option<Vec<u8>>) {
        if self.contains(object) {
            // A superfluous twin snapshot goes back to the pool.
            if let Some(buf) = twin {
                self.recycle_twin(buf);
            }
            return;
        }
        self.index.insert(object, self.entries.len());
        self.entries.push(DuqEntry { object, twin });
    }

    /// Returns the twin bytes of a pending object, if present.
    pub fn twin_of(&self, object: ObjectId) -> Option<&[u8]> {
        self.index
            .get(&object)
            .and_then(|i| self.entries[*i].twin.as_deref())
    }

    /// Merges externally received changes into a pending twin so that words
    /// updated by a remote writer are not re-propagated as local changes at
    /// the next flush. Used when an update arrives for a dirty object.
    pub fn patch_twin<F: FnOnce(&mut [u8])>(&mut self, object: ObjectId, f: F) {
        if let Some(i) = self.index.get(&object) {
            if let Some(twin) = self.entries[*i].twin.as_deref_mut() {
                f(twin);
            }
        }
    }

    /// Takes a twin buffer from the pool (or a fresh one), ready for the
    /// caller to fill with an object snapshot of roughly `size` bytes. The
    /// returned buffer is empty but retains its capacity; a pooled buffer
    /// whose capacity already fits `size` is preferred so small twins do not
    /// pin large allocations while large first-writes reallocate anyway.
    pub fn acquire_twin_buffer(&mut self, size: usize) -> Vec<u8> {
        let fit = self
            .twin_pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= size)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match fit {
            Some(i) => self.twin_pool.swap_remove(i),
            None => self.twin_pool.pop().unwrap_or_default(),
        };
        buf.clear();
        buf
    }

    /// Returns a twin buffer to the pool for reuse by a later first-write
    /// fault. Called by the flush path once the diff has been encoded.
    pub fn recycle_twin(&mut self, buf: Vec<u8>) {
        if self.twin_pool.len() < TWIN_POOL_CAP {
            self.twin_pool.push(buf);
        }
    }

    /// Number of twin buffers currently pooled (observable for tests).
    pub fn pooled_twins(&self) -> usize {
        self.twin_pool.len()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes a single pending entry (used by `Invalidate`/`Flush` hints
    /// that force an individual object out early).
    pub fn remove(&mut self, object: ObjectId) -> Option<DuqEntry> {
        let idx = self.index.remove(&object)?;
        let entry = self.entries.remove(idx);
        // Reindex the tail.
        for (i, e) in self.entries.iter().enumerate().skip(idx) {
            self.index.insert(e.object, i);
        }
        Some(entry)
    }

    /// Drains every pending entry, in enqueue order. Called at a release
    /// (lock release or barrier arrival).
    pub fn flush(&mut self) -> Vec<DuqEntry> {
        self.index.clear();
        std::mem::take(&mut self.entries)
    }

    /// The pending objects, in enqueue order.
    pub fn pending(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|e| e.object).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_and_flush_preserve_order() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(2), None);
        duq.enqueue(ObjectId::new(0), Some(vec![1, 2, 3, 4]));
        assert_eq!(duq.len(), 2);
        assert!(duq.contains(ObjectId::new(2)));
        let drained = duq.flush();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].object, ObjectId::new(2));
        assert_eq!(drained[1].object, ObjectId::new(0));
        assert!(duq.is_empty());
    }

    #[test]
    fn duplicate_enqueue_keeps_first_twin() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(1), Some(vec![9]));
        duq.enqueue(ObjectId::new(1), Some(vec![7]));
        assert_eq!(duq.len(), 1);
        assert_eq!(duq.twin_of(ObjectId::new(1)), Some(&[9u8][..]));
        // The duplicate's snapshot was recycled, not leaked.
        assert_eq!(duq.pooled_twins(), 1);
    }

    #[test]
    fn remove_reindexes_remaining_entries() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(0), None);
        duq.enqueue(ObjectId::new(1), None);
        duq.enqueue(ObjectId::new(2), None);
        let removed = duq.remove(ObjectId::new(1)).unwrap();
        assert_eq!(removed.object, ObjectId::new(1));
        assert_eq!(duq.len(), 2);
        assert!(duq.contains(ObjectId::new(2)));
        assert_eq!(
            duq.remove(ObjectId::new(2)).unwrap().object,
            ObjectId::new(2)
        );
        assert!(duq.remove(ObjectId::new(7)).is_none());
    }

    #[test]
    fn patch_twin_modifies_only_existing_twin() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(0), Some(vec![0, 0]));
        duq.enqueue(ObjectId::new(1), None);
        duq.patch_twin(ObjectId::new(0), |t| t[0] = 5);
        duq.patch_twin(ObjectId::new(1), |t| t[0] = 5);
        duq.patch_twin(ObjectId::new(9), |t| t[0] = 5);
        assert_eq!(duq.twin_of(ObjectId::new(0)), Some(&[5u8, 0][..]));
        assert_eq!(duq.twin_of(ObjectId::new(1)), None);
    }

    #[test]
    fn pending_lists_objects() {
        let mut duq = DelayedUpdateQueue::new();
        duq.enqueue(ObjectId::new(4), None);
        duq.enqueue(ObjectId::new(5), None);
        assert_eq!(duq.pending(), vec![ObjectId::new(4), ObjectId::new(5)]);
    }

    #[test]
    fn twin_pool_recycles_buffers() {
        let mut duq = DelayedUpdateQueue::new();
        // Simulate a flush cycle: acquire, fill, enqueue, drain, recycle.
        let mut buf = duq.acquire_twin_buffer(4);
        assert!(buf.is_empty());
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = buf.as_ptr();
        duq.enqueue(ObjectId::new(0), Some(buf));
        let drained = duq.flush();
        let twin = drained.into_iter().next().unwrap().twin.unwrap();
        duq.recycle_twin(twin);
        assert_eq!(duq.pooled_twins(), 1);
        // The next fault reuses the same allocation.
        let reused = duq.acquire_twin_buffer(4);
        assert_eq!(reused.as_ptr(), ptr);
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 4);
    }

    #[test]
    fn twin_pool_prefers_a_buffer_that_fits() {
        let mut duq = DelayedUpdateQueue::new();
        duq.recycle_twin(Vec::with_capacity(8));
        duq.recycle_twin(Vec::with_capacity(1024));
        duq.recycle_twin(Vec::with_capacity(16));
        // A 512-byte twin takes the 1024-capacity buffer, not the LIFO tail.
        let buf = duq.acquire_twin_buffer(512);
        assert!(buf.capacity() >= 512);
        assert_eq!(duq.pooled_twins(), 2);
        // Best fit: a small twin must not pin the largest remaining buffer.
        duq.recycle_twin(Vec::with_capacity(2048));
        let small = duq.acquire_twin_buffer(8);
        assert!(small.capacity() >= 8);
        assert!(small.capacity() < 2048, "smallest fitting buffer preferred");
    }

    #[test]
    fn twin_pool_is_bounded() {
        let mut duq = DelayedUpdateQueue::new();
        for _ in 0..(TWIN_POOL_CAP + 10) {
            duq.recycle_twin(vec![0u8; 8]);
        }
        assert_eq!(duq.pooled_twins(), TWIN_POOL_CAP);
    }
}
