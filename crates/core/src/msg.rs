//! The DSM wire protocol.
//!
//! These are the messages the Munin nodes exchange: object fetches and
//! replies, invalidations, delayed-update propagation, copyset determination
//! queries, `Fetch_and_Φ` requests for reduction objects, the distributed
//! queue-based lock and barrier traffic, and program-control messages.
//!
//! Every message also carries a modelled wire size (computed by
//! [`DsmMsg::model_bytes`]) which drives the simulated transmission time.

use munin_sim::NodeId;

use crate::copyset::CopySet;
use crate::diff::Diff;
use crate::nodeset::NodeSet;
use crate::object::ObjectId;
use crate::sync::{BarrierId, LockId};

/// Whether a fetch wants a readable copy or a writable copy (with ownership,
/// for the ownership-based protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchKind {
    /// A readable replica is sufficient.
    Read,
    /// The faulting thread intends to write; ownership must transfer for
    /// single-writer protocols.
    Write,
}

/// Payload of one object inside an update message: either a run-length
/// encoded diff against the twin, or the complete object contents.
///
/// The diff variant carries the flat wire-format buffer behind an
/// `Arc<[u8]>` (see [`crate::diff::Diff`]), so cloning the payload for each
/// destination of a flush fan-out shares one encoding instead of deep-
/// copying run vectors.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdatePayload {
    /// Flat word diff produced by [`crate::diff::DiffScratch::encode`].
    Diff(Diff),
    /// The full object image (used when no twin exists).
    Full(Vec<u8>),
}

impl UpdatePayload {
    /// Modelled wire size of the payload in bytes.
    pub fn model_bytes(&self) -> u64 {
        match self {
            UpdatePayload::Diff(d) => d.encoded_bytes() as u64,
            UpdatePayload::Full(data) => data.len() as u64,
        }
    }
}

/// One object's worth of changes inside an update message.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateItem {
    /// The object being updated.
    pub object: ObjectId,
    /// The changes.
    pub payload: UpdatePayload,
}

/// A bundle of update items piggybacked on a carrier message, destined for
/// the carrier's receiver. Installed by the unified carrier-install path
/// (`NodeRuntime::install_carrier_updates`) *before* the carrier's inner
/// message is dispatched, so a piggybacked release or grant can never be
/// observed ahead of the data it carries.
#[derive(Clone, Debug, PartialEq)]
pub struct CarrierUpdate {
    /// The node whose changes these are (piggybacked bundles are never
    /// individually acknowledged; `from` also names the sequence stream).
    pub from: NodeId,
    /// Position in the `from` → receiver update sequence stream (see
    /// [`DsmMsg::Update::seq`]). Ignored for `sync_install` bundles, which
    /// are ordered by the lock token they travel with.
    pub seq: u64,
    /// The changes, one entry per object, in application order.
    pub items: Vec<UpdateItem>,
    /// `true` for data associated with a synchronization object
    /// (`AssociateDataAndSynch` payloads on a lock grant): the items are
    /// *installed* — full images written even where no local copy exists,
    /// with the migratory ownership handover applied — rather than applied
    /// only to existing copies like flush updates.
    pub sync_install: bool,
}

/// A flush update riding a `BarrierArrive` towards the barrier owner, to be
/// re-attached to the `BarrierRelease` headed to `dest`. Two kinds of flush
/// travel this way (see `DESIGN.md`, "Carrier layer"), each with its own
/// safety argument: *owner-flushed* fan-out updates (the flusher serves all
/// fetches for those objects from live memory, so a copy that missed the
/// relayed update is impossible) and *`result`-object flushes homed at the
/// barrier owner* (the owner installs the bundle before counting the
/// arrival, which is at least as early as the legacy apply-then-ack).
#[derive(Clone, Debug, PartialEq)]
pub struct RelayUpdate {
    /// The copyset member the bundle must reach with the release.
    pub dest: NodeId,
    /// The flushing node.
    pub from: NodeId,
    /// Position in the `from` → `dest` update sequence stream (see
    /// [`DsmMsg::Update::seq`]): assigned by the flusher, carried through
    /// the barrier owner unchanged.
    pub seq: u64,
    /// The changes, one entry per object, in application order.
    pub items: Vec<UpdateItem>,
}

/// A `Fetch_and_Φ` operation on a reduction object, executed atomically at
/// the object's fixed owner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReduceOp {
    /// Return the current value without modifying it.
    Read,
    /// Fetch-and-add on a 64-bit signed integer element.
    AddI64(i64),
    /// Fetch-and-min on a 64-bit signed integer element.
    MinI64(i64),
    /// Fetch-and-max on a 64-bit signed integer element.
    MaxI64(i64),
    /// Fetch-and-add on a 64-bit float element.
    AddF64(f64),
    /// Fetch-and-min on a 64-bit float element.
    MinF64(f64),
    /// Fetch-and-max on a 64-bit float element.
    MaxF64(f64),
}

/// Messages exchanged by Munin nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum DsmMsg {
    /// Request a copy of `object` (forwarded along the probable-owner chain
    /// until it reaches the owner, which replies directly to `requester`).
    ObjectFetch {
        /// The object to fetch.
        object: ObjectId,
        /// Read or write intent.
        access: FetchKind,
        /// Node that took the fault and awaits the reply.
        requester: NodeId,
    },
    /// Reply to an [`DsmMsg::ObjectFetch`], carrying the object contents.
    ObjectData {
        /// The object.
        object: ObjectId,
        /// The object contents.
        data: Vec<u8>,
        /// Whether ownership is transferred to the requester.
        ownership: bool,
        /// Copyset handed over together with ownership (nodes the new owner
        /// must invalidate or update).
        copyset: CopySet,
        /// Whether the requester may map the copy writable immediately.
        writable: bool,
    },
    /// Invalidate the local copy of `object` and acknowledge to `requester`.
    Invalidate {
        /// The object to invalidate.
        object: ObjectId,
        /// Node awaiting the acknowledgement.
        requester: NodeId,
    },
    /// Acknowledgement of an [`DsmMsg::Invalidate`].
    InvalidateAck {
        /// The invalidated object.
        object: ObjectId,
    },
    /// Propagation of pending changes (a DUQ flush, an eager update, or the
    /// flush-to-owner of a `result` object).
    Update {
        /// Changes, one entry per object.
        items: Vec<UpdateItem>,
        /// Node awaiting the acknowledgement (if `needs_ack`).
        requester: NodeId,
        /// Position in the sender → receiver *update sequence stream*. Every
        /// update-bearing transmission between a pair of nodes (standalone
        /// updates, carrier bundles, barrier-relayed bundles) carries one
        /// consecutive number; the receiver applies strictly in sequence,
        /// deferring early arrivals and dropping stale ones. This is what
        /// keeps a relayed bundle (which travels flusher → barrier owner →
        /// destination, a *different link* than a direct update) from being
        /// applied after a newer direct update it cannot be FIFO-ordered
        /// against.
        seq: u64,
        /// Whether the receiver must acknowledge (release consistency makes
        /// the releaser wait until its updates have been performed).
        needs_ack: bool,
    },
    /// Owner-cooperative fan-out: a flusher's non-owned fan-out bundle,
    /// sent to the objects' (probable) owner instead of being distributed
    /// by the flusher itself. The owner installs its own share, re-fans the
    /// updates to its authoritative recorded copyset
    /// ([`DsmMsg::RelayForward`]), and replies with a
    /// [`DsmMsg::RelayFanoutAck`] — so the flusher skips both the
    /// copyset-determination round and the ack-heal round that the legacy
    /// path needed to compensate for its stale view of the copyset.
    RelayFanout {
        /// Changes, one entry per object, in application order.
        items: Vec<UpdateItem>,
        /// The flushing node: receives the fan-out ack and every re-fan
        /// destination's [`DsmMsg::UpdateAck`].
        origin: NodeId,
        /// Position in the origin → receiver update sequence stream (see
        /// [`DsmMsg::Update::seq`]).
        seq: u64,
    },
    /// The owner's reply to a [`DsmMsg::RelayFanout`]: which destinations
    /// the bundle was re-fanned to (each will acknowledge the origin
    /// directly), and which objects the receiver turned out not to own
    /// (stale owner hint — the origin re-distributes those itself).
    RelayFanoutAck {
        /// Re-fan destinations; the origin waits for one `UpdateAck` from
        /// each before its release completes.
        refanned: Vec<NodeId>,
        /// Objects the receiver does not own: neither installed nor
        /// distributed.
        rejected: Vec<ObjectId>,
    },
    /// An owner's re-fan of a [`DsmMsg::RelayFanout`] bundle to one copyset
    /// member. Unlike [`DsmMsg::Update`], forwards carry no update-stream
    /// slot and are exempt from the receiver's sequence check: they travel
    /// the owner→receiver link directly (FIFO, no carrier detour), and the
    /// re-fanning service thread may run while the owner's user thread has
    /// relay bundles holding earlier stream slots parked at a barrier owner
    /// (see `handle_relay_forward` for the full argument). The
    /// acknowledgement still goes to `origin`, whose release is what the
    /// update belongs to.
    RelayForward {
        /// Changes, one entry per object, in application order.
        items: Vec<UpdateItem>,
        /// The node whose flush originated the updates; the receiver's
        /// [`DsmMsg::UpdateAck`] goes here, not to the wire sender.
        origin: NodeId,
        /// The originating fan-out's sequence number (origin → owner
        /// stream), carried for trace correlation only.
        seq: u64,
    },
    /// Acknowledgement of an [`DsmMsg::Update`].
    UpdateAck {
        /// Number of objects that were applied.
        count: usize,
        /// For every updated object the acknowledging node *owns*, its
        /// authoritative recorded copyset (the determined set merged with
        /// serve-time replica records). The flusher compares this against the
        /// set it actually sent to and re-sends the update to any member it
        /// missed — a replica served by the owner *after* the flusher's
        /// copyset query was answered would otherwise silently miss the
        /// update forever (the 16-node SOR stale-ghost-row divergence).
        owned_copysets: Vec<(ObjectId, CopySet)>,
    },
    /// Dynamic copyset determination, broadcast variant: "a message
    /// indicating which objects have been modified locally is sent to all
    /// other nodes; each node replies with the subset of these objects for
    /// which it has a copy."
    CopysetQuery {
        /// The modified objects. Behind `Arc` so the broadcast fan-out to
        /// every peer shares one allocation instead of cloning the list per
        /// peer.
        objects: std::sync::Arc<[ObjectId]>,
        /// Node awaiting the replies.
        requester: NodeId,
    },
    /// Reply to a [`DsmMsg::CopysetQuery`].
    CopysetReply {
        /// Subset of the queried objects this node holds a copy of.
        have: Vec<ObjectId>,
    },
    /// Improved copyset determination: ask the objects' owner (home) for the
    /// copyset it has recorded while serving fetches.
    OwnerCopysetQuery {
        /// The modified objects homed at the destination.
        objects: Vec<ObjectId>,
        /// Node awaiting the reply.
        requester: NodeId,
    },
    /// Reply to an [`DsmMsg::OwnerCopysetQuery`].
    OwnerCopysetReply {
        /// Recorded copyset for each queried object.
        copysets: Vec<(ObjectId, CopySet)>,
    },
    /// A `Fetch_and_Φ` on a reduction object, executed at its fixed owner.
    ReduceRequest {
        /// The reduction object.
        object: ObjectId,
        /// Byte offset of the element within the object.
        offset: usize,
        /// The operation.
        op: ReduceOp,
        /// Node awaiting the old value.
        requester: NodeId,
    },
    /// Reply to a [`DsmMsg::ReduceRequest`], carrying the element's previous
    /// value (raw little-endian bytes).
    ReduceReply {
        /// Previous value of the element.
        old: Vec<u8>,
    },
    /// Request ownership of a lock (forwarded along the probable-owner
    /// chain).
    LockAcquire {
        /// The lock.
        lock: LockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Grant of lock ownership to a requester. Consistency data associated
    /// with the lock (`AssociateDataAndSynch`) travels as a `sync_install`
    /// bundle on a [`DsmMsg::Carrier`] framing this grant.
    LockGrant {
        /// The lock.
        lock: LockId,
        /// Waiting requesters handed over with ownership (the distributed
        /// queue travels with the lock).
        queue: Vec<NodeId>,
    },
    /// A thread arrived at a barrier.
    BarrierArrive {
        /// The barrier.
        barrier: BarrierId,
        /// Arriving node.
        from: NodeId,
    },
    /// The barrier owner releases all waiters.
    BarrierRelease {
        /// The barrier.
        barrier: BarrierId,
    },
    /// Combining-tree barrier: an interior node's upward report that every
    /// member of `arrived` has reached the barrier. Sent to the node's
    /// current tree parent once its own arrival plus all of its live
    /// children's reports are in. Carries the full arrived set (not a count)
    /// so re-sends after a re-parent merge idempotently at the new parent.
    BarrierCombine {
        /// The barrier.
        barrier: BarrierId,
        /// The reporting subtree root.
        from: NodeId,
        /// The barrier episode this report belongs to: the sender's
        /// completed-episode count plus one. A receiver that has already
        /// finished that episode answers with a direct
        /// [`DsmMsg::BarrierTreeRelease`] instead of re-counting.
        gen: u64,
        /// Every node in the sender's subtree known to have arrived
        /// (including the sender itself).
        arrived: NodeSet,
    },
    /// Combining-tree barrier: the downward release, forwarded along the
    /// tree edges from the owner. Each interior node re-forwards to its
    /// children and then routes a plain [`DsmMsg::BarrierRelease`] to its
    /// own user thread, so the waiting side is identical for flat and tree
    /// barriers.
    BarrierTreeRelease {
        /// The barrier.
        barrier: BarrierId,
        /// The episode being released (matches the triggering combine's
        /// `gen`); duplicates for already-completed episodes are dropped.
        gen: u64,
    },
    /// A worker's user thread finished its work (sent to the root).
    WorkerDone {
        /// The finished node.
        from: NodeId,
    },
    /// The root tells every node to shut down its runtime service loop.
    Shutdown,
    /// The carrier envelope: frames any other message together with
    /// piggybacked consistency traffic, so a lock grant, barrier release,
    /// copyset reply, or update acknowledgement that is headed to a
    /// destination anyway can also deliver the updates queued for it —
    /// one wire message instead of several.
    ///
    /// `inner: None` is a pure piggyback frame, used when a deferred bundle
    /// is re-queued after its directory entries were busy. Carriers are
    /// never nested.
    Carrier {
        /// The framed message, dispatched after the payload is installed.
        inner: Option<Box<DsmMsg>>,
        /// Piggybacked update bundles destined for the receiver.
        updates: Vec<CarrierUpdate>,
        /// Flush updates riding a `BarrierArrive` for redistribution on the
        /// matching `BarrierRelease`s (empty on every other carrier).
        relay: Vec<RelayUpdate>,
    },
    /// The reliability-layer frame: any protocol message wrapped with a
    /// per-(source, destination) message id and a piggybacked cumulative
    /// acknowledgement of the reverse lane (see `DESIGN.md`, "Reliability
    /// layer"). The receiver delivers each id exactly once, in order, so
    /// every handler behind this frame is idempotent under retransmission
    /// by construction. Reliable frames are never nested.
    Reliable {
        /// Position in the sender → receiver reliable-message stream
        /// (ids start at 1 and are consecutive per lane).
        id: u64,
        /// Cumulative acknowledgement: every receiver → sender message with
        /// id ≤ `ack` has been delivered (0 = nothing yet). Riding every
        /// wrapped message keeps standalone ack traffic near zero.
        ack: u64,
        /// The framed protocol message.
        inner: Box<DsmMsg>,
    },
    /// A standalone cumulative acknowledgement, sent when the receiver owes
    /// acks but has no reverse traffic to piggyback them on (delayed-ack
    /// flush), or immediately upon receiving a duplicate (retransmit quench).
    NetAck {
        /// Every message with id ≤ `upto` on the sender's lane has been
        /// delivered.
        upto: u64,
    },
    /// The reliability layer's retransmit/ack-flush tick. Never on the wire:
    /// it is the payload of a virtual-time timer event the service loop
    /// schedules for itself.
    Tick,
    /// The failure detector's periodic self-timer (never on the wire): on
    /// firing, the node sends [`DsmMsg::Heartbeat`]s and re-arms. Only
    /// scheduled when failure detection is enabled (see
    /// `MuninConfig::detect`), so zero-crash runs carry no health traffic.
    HealthTick,
    /// An "I am alive" probe. Sent *unreliably* (never wrapped in a
    /// [`DsmMsg::Reliable`] frame): a heartbeat that needed retransmission
    /// would defeat its purpose, and a lost one is replaced by the next.
    Heartbeat,
    /// Failure-detector gossip: the sender has confirmed `node` dead (no
    /// traffic for the full detection window, or the retransmit cap fired
    /// and the suspicion aged out). Receivers mark the peer dead and run
    /// their local degraded-mode recovery; they do not re-broadcast.
    PeerDown {
        /// The dead node.
        node: NodeId,
    },
    /// Degraded-mode orphan re-homing: the sender (a node that lost a fetch
    /// to a dead owner) asks the receiver — the lowest-id surviving replica
    /// holder — to adopt ownership of `object` and serve it a copy exactly
    /// as an owner would serve an [`DsmMsg::ObjectFetch`].
    Adopt {
        /// The orphaned object.
        object: ObjectId,
        /// Read or write intent of the blocked fault.
        access: FetchKind,
        /// Node awaiting the [`DsmMsg::ObjectData`] reply.
        requester: NodeId,
    },
}

/// Fixed modelled header size of every message, in bytes.
pub const HEADER_BYTES: u64 = 32;

impl DsmMsg {
    /// The statistics class of the message.
    pub fn class(&self) -> &'static str {
        match self {
            DsmMsg::ObjectFetch { .. } => "object_fetch",
            DsmMsg::ObjectData { .. } => "object_data",
            DsmMsg::Invalidate { .. } => "invalidate",
            DsmMsg::InvalidateAck { .. } => "invalidate_ack",
            DsmMsg::Update { .. } => "update",
            DsmMsg::RelayFanout { .. } => "relay_fanout",
            DsmMsg::RelayFanoutAck { .. } => "relay_fanout_ack",
            DsmMsg::RelayForward { .. } => "relay_forward",
            DsmMsg::UpdateAck { .. } => "update_ack",
            DsmMsg::CopysetQuery { .. } => "copyset_query",
            DsmMsg::CopysetReply { .. } => "copyset_reply",
            DsmMsg::OwnerCopysetQuery { .. } => "owner_copyset_query",
            DsmMsg::OwnerCopysetReply { .. } => "owner_copyset_reply",
            DsmMsg::ReduceRequest { .. } => "reduce_request",
            DsmMsg::ReduceReply { .. } => "reduce_reply",
            DsmMsg::LockAcquire { .. } => "lock_acquire",
            DsmMsg::LockGrant { .. } => "lock_grant",
            DsmMsg::BarrierArrive { .. } => "barrier_arrive",
            DsmMsg::BarrierRelease { .. } => "barrier_release",
            DsmMsg::BarrierCombine { .. } => "barrier_combine",
            DsmMsg::BarrierTreeRelease { .. } => "barrier_tree_release",
            DsmMsg::WorkerDone { .. } => "worker_done",
            DsmMsg::Shutdown => "shutdown",
            // A carrier is classed as the message it frames, so per-class
            // accounting (e.g. "how many lock grants") is unaffected by the
            // framing; only total message counts drop.
            DsmMsg::Carrier { inner, .. } => match inner {
                Some(m) => m.class(),
                None => "carrier",
            },
            // Like carriers, a reliable frame is classed as the message it
            // wraps, so per-class accounting is unaffected by the transport.
            DsmMsg::Reliable { inner, .. } => inner.class(),
            DsmMsg::NetAck { .. } => "net_ack",
            DsmMsg::Tick => "tick",
            DsmMsg::HealthTick => "health_tick",
            DsmMsg::Heartbeat => "heartbeat",
            DsmMsg::PeerDown { .. } => "peer_down",
            DsmMsg::Adopt { .. } => "adopt",
        }
    }

    /// Modelled size of the message on the wire (header plus payload).
    pub fn model_bytes(&self) -> u64 {
        let payload: u64 = match self {
            DsmMsg::ObjectFetch { .. } => 8,
            DsmMsg::ObjectData { data, .. } => data.len() as u64 + 16,
            DsmMsg::Invalidate { .. } | DsmMsg::InvalidateAck { .. } => 8,
            DsmMsg::Update { items, .. } => items.iter().map(|i| 8 + i.payload.model_bytes()).sum(),
            // The relay messages carry an origin + stream slot on top of an
            // `Update`-shaped item list.
            DsmMsg::RelayFanout { items, .. } | DsmMsg::RelayForward { items, .. } => {
                8 + items
                    .iter()
                    .map(|i| 8 + i.payload.model_bytes())
                    .sum::<u64>()
            }
            DsmMsg::RelayFanoutAck { refanned, rejected } => {
                8 + 4 * (refanned.len() + rejected.len()) as u64
            }
            DsmMsg::UpdateAck { owned_copysets, .. } => 8 + 12 * owned_copysets.len() as u64,
            DsmMsg::CopysetQuery { objects, .. } => 4 * objects.len() as u64,
            DsmMsg::CopysetReply { have } => 4 * have.len() as u64,
            DsmMsg::OwnerCopysetQuery { objects, .. } => 4 * objects.len() as u64,
            DsmMsg::OwnerCopysetReply { copysets } => 12 * copysets.len() as u64,
            DsmMsg::ReduceRequest { .. } => 24,
            DsmMsg::ReduceReply { old } => old.len() as u64,
            DsmMsg::LockAcquire { .. } => 8,
            DsmMsg::LockGrant { queue, .. } => 8 + 4 * queue.len() as u64,
            DsmMsg::BarrierArrive { .. } | DsmMsg::BarrierRelease { .. } => 8,
            // Barrier id + from + gen, plus the arrived bitmap (only the
            // words up to the highest set bit travel).
            DsmMsg::BarrierCombine { arrived, .. } => 16 + 8 * arrived.word_span() as u64,
            DsmMsg::BarrierTreeRelease { .. } => 12,
            DsmMsg::WorkerDone { .. } | DsmMsg::Shutdown => 4,
            // One header for the whole frame: the inner message and every
            // piggybacked bundle share it — that is the wire saving the
            // carrier layer models.
            DsmMsg::Carrier {
                inner,
                updates,
                relay,
            } => {
                let inner_payload = inner
                    .as_ref()
                    .map(|m| m.model_bytes() - HEADER_BYTES)
                    .unwrap_or(0);
                let update_bytes: u64 = updates
                    .iter()
                    .map(|u| {
                        8 + u
                            .items
                            .iter()
                            .map(|i| 8 + i.payload.model_bytes())
                            .sum::<u64>()
                    })
                    .sum();
                let relay_bytes: u64 = relay
                    .iter()
                    .map(|r| {
                        12 + r
                            .items
                            .iter()
                            .map(|i| 8 + i.payload.model_bytes())
                            .sum::<u64>()
                    })
                    .sum();
                inner_payload + update_bytes + relay_bytes
            }
            // The reliable frame adds an id + ack pair to the message it
            // wraps, sharing the wrapped message's header.
            DsmMsg::Reliable { inner, .. } => inner.model_bytes() - HEADER_BYTES + 8,
            DsmMsg::NetAck { .. } => 8,
            // Never on the wire (timer payloads only).
            DsmMsg::Tick | DsmMsg::HealthTick => 0,
            DsmMsg::Heartbeat => 0,
            DsmMsg::PeerDown { .. } => 4,
            DsmMsg::Adopt { .. } => 12,
        };
        HEADER_BYTES + payload
    }

    /// Whether the message is a reply destined for the node's blocked user
    /// thread (as opposed to a request handled by the runtime service loop).
    /// Carriers are always unwrapped by the service loop first (the payload
    /// must be installed before the inner message is routed), so they are
    /// not user replies even when their inner message is.
    pub fn is_user_reply(&self) -> bool {
        matches!(
            self,
            DsmMsg::ObjectData { .. }
                | DsmMsg::InvalidateAck { .. }
                | DsmMsg::UpdateAck { .. }
                | DsmMsg::RelayFanoutAck { .. }
                | DsmMsg::CopysetReply { .. }
                | DsmMsg::OwnerCopysetReply { .. }
                | DsmMsg::ReduceReply { .. }
                | DsmMsg::LockGrant { .. }
                | DsmMsg::BarrierRelease { .. }
                | DsmMsg::Shutdown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{encode, Diff};

    #[test]
    fn classes_are_distinct_for_requests_and_replies() {
        let fetch = DsmMsg::ObjectFetch {
            object: ObjectId::new(0),
            access: FetchKind::Read,
            requester: NodeId::new(1),
        };
        let data = DsmMsg::ObjectData {
            object: ObjectId::new(0),
            data: vec![0; 16],
            ownership: false,
            copyset: CopySet::EMPTY,
            writable: false,
        };
        assert_ne!(fetch.class(), data.class());
        assert!(!fetch.is_user_reply());
        assert!(data.is_user_reply());
    }

    #[test]
    fn model_bytes_scale_with_payload() {
        let small = DsmMsg::ObjectData {
            object: ObjectId::new(0),
            data: vec![0; 16],
            ownership: false,
            copyset: CopySet::EMPTY,
            writable: false,
        };
        let large = DsmMsg::ObjectData {
            object: ObjectId::new(0),
            data: vec![0; 8192],
            ownership: false,
            copyset: CopySet::EMPTY,
            writable: false,
        };
        assert!(large.model_bytes() > small.model_bytes());
        assert!(large.model_bytes() >= 8192);
    }

    #[test]
    fn update_bytes_reflect_diff_encoding() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0] = 1;
        let diff = encode(&cur, &twin);
        let small_update = DsmMsg::Update {
            items: vec![UpdateItem {
                object: ObjectId::new(0),
                payload: UpdatePayload::Diff(diff),
            }],
            requester: NodeId::new(0),
            seq: 0,
            needs_ack: true,
        };
        let full_update = DsmMsg::Update {
            items: vec![UpdateItem {
                object: ObjectId::new(0),
                payload: UpdatePayload::Full(cur),
            }],
            requester: NodeId::new(0),
            seq: 0,
            needs_ack: true,
        };
        assert!(small_update.model_bytes() < full_update.model_bytes());
    }

    #[test]
    fn empty_diff_payload_is_small() {
        let d = Diff::empty(16);
        assert_eq!(UpdatePayload::Diff(d).model_bytes(), 4);
    }

    #[test]
    fn cloned_diff_payloads_share_one_encoding() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0] = 1;
        let diff = encode(&cur, &twin);
        let payload = UpdatePayload::Diff(diff);
        let fanned: Vec<UpdatePayload> = (0..3).map(|_| payload.clone()).collect();
        for p in &fanned {
            let (UpdatePayload::Diff(a), UpdatePayload::Diff(b)) = (&fanned[0], p) else {
                panic!("diff payload expected");
            };
            assert!(a.shares_buffer(b));
        }
    }

    #[test]
    fn barrier_and_lock_messages_are_small() {
        let arrive = DsmMsg::BarrierArrive {
            barrier: BarrierId(0),
            from: NodeId::new(3),
        };
        assert!(arrive.model_bytes() <= 64);
        let grant = DsmMsg::LockGrant {
            lock: LockId(0),
            queue: vec![NodeId::new(1)],
        };
        assert!(grant.model_bytes() <= 64);
        assert!(grant.is_user_reply());
    }

    /// A carrier frame costs one header for the inner message plus every
    /// piggybacked bundle — strictly less than the messages sent separately.
    #[test]
    fn carrier_is_cheaper_than_separate_messages() {
        let grant = DsmMsg::LockGrant {
            lock: LockId(0),
            queue: vec![],
        };
        let items = vec![UpdateItem {
            object: ObjectId::new(0),
            payload: UpdatePayload::Full(vec![0; 64]),
        }];
        let standalone = DsmMsg::Update {
            items: items.clone(),
            requester: NodeId::new(1),
            seq: 0,
            needs_ack: false,
        };
        let separate = grant.model_bytes() + standalone.model_bytes();
        let carrier = DsmMsg::Carrier {
            inner: Some(Box::new(grant)),
            updates: vec![CarrierUpdate {
                from: NodeId::new(1),
                seq: 0,
                items,
                sync_install: false,
            }],
            relay: vec![],
        };
        assert!(carrier.model_bytes() < separate);
        assert_eq!(carrier.class(), "lock_grant");
        assert!(
            !carrier.is_user_reply(),
            "carriers are unwrapped by the service loop"
        );
        let bare = DsmMsg::Carrier {
            inner: None,
            updates: vec![],
            relay: vec![],
        };
        assert_eq!(bare.class(), "carrier");
        assert_eq!(bare.model_bytes(), HEADER_BYTES);
    }

    /// Satellite audit of the relay byte accounting: a barrier-relayed
    /// payload transits the wire twice (flusher → barrier owner on the
    /// arrive carrier, owner → destination on the release carrier) and must
    /// be charged on *both* hops — once per wire transit, not once per
    /// logical update. The exact per-hop increments are pinned so the
    /// `tests/piggyback.rs` byte-ratio assertion measures reality.
    #[test]
    fn relayed_payload_is_charged_once_per_wire_transit() {
        let payload_bytes = 64u64;
        let items = vec![UpdateItem {
            object: ObjectId::new(0),
            payload: UpdatePayload::Full(vec![0; payload_bytes as usize]),
        }];
        // Hop 1: the bundle rides the BarrierArrive carrier as a RelayUpdate
        // (12 bytes of dest/from/seq framing + 8 per item + the payload).
        let arrive = DsmMsg::BarrierArrive {
            barrier: BarrierId(0),
            from: NodeId::new(1),
        };
        let hop1 = DsmMsg::Carrier {
            inner: Some(Box::new(arrive.clone())),
            updates: vec![],
            relay: vec![RelayUpdate {
                dest: NodeId::new(2),
                from: NodeId::new(1),
                seq: 0,
                items: items.clone(),
            }],
        };
        assert_eq!(
            hop1.model_bytes() - arrive.model_bytes(),
            12 + 8 + payload_bytes
        );
        // Hop 2: the owner re-attaches the bundle to the BarrierRelease as a
        // CarrierUpdate (8 bytes of from/seq framing + 8 per item + payload).
        let release = DsmMsg::BarrierRelease {
            barrier: BarrierId(0),
        };
        let hop2 = DsmMsg::Carrier {
            inner: Some(Box::new(release.clone())),
            updates: vec![CarrierUpdate {
                from: NodeId::new(1),
                seq: 0,
                items: items.clone(),
                sync_install: false,
            }],
            relay: vec![],
        };
        assert_eq!(
            hop2.model_bytes() - release.model_bytes(),
            8 + 8 + payload_bytes
        );
        // The payload itself is paid twice across the two transits; a
        // size-thresholded direct send pays it once (plus the ack round).
        let relayed_total = hop1.model_bytes() + hop2.model_bytes();
        let direct = DsmMsg::Update {
            items,
            requester: NodeId::new(1),
            seq: 0,
            needs_ack: true,
        };
        assert!(relayed_total - arrive.model_bytes() - release.model_bytes() >= 2 * payload_bytes);
        assert_eq!(direct.model_bytes(), HEADER_BYTES + 8 + payload_bytes);
    }

    #[test]
    fn relay_fanout_messages_have_pinned_sizes_and_routing() {
        let items = vec![UpdateItem {
            object: ObjectId::new(3),
            payload: UpdatePayload::Full(vec![0; 64]),
        }];
        let fanout = DsmMsg::RelayFanout {
            items: items.clone(),
            origin: NodeId::new(1),
            seq: 4,
        };
        let forward = DsmMsg::RelayForward {
            items,
            origin: NodeId::new(1),
            seq: 0,
        };
        let ack = DsmMsg::RelayFanoutAck {
            refanned: vec![NodeId::new(2), NodeId::new(3)],
            rejected: vec![ObjectId::new(3)],
        };
        assert_eq!(fanout.model_bytes(), HEADER_BYTES + 8 + 8 + 64);
        assert_eq!(forward.model_bytes(), fanout.model_bytes());
        assert_eq!(ack.model_bytes(), HEADER_BYTES + 8 + 4 * 3);
        // The fan-out and re-fan are service-loop requests; only the ack is
        // routed to the origin's blocked user thread.
        assert!(!fanout.is_user_reply());
        assert!(!forward.is_user_reply());
        assert!(ack.is_user_reply());
        assert_eq!(fanout.class(), "relay_fanout");
        assert_eq!(forward.class(), "relay_forward");
        assert_eq!(ack.class(), "relay_fanout_ack");
    }

    #[test]
    fn tree_barrier_messages_are_service_requests_with_pinned_sizes() {
        use crate::nodeset::NodeSet;
        let combine = DsmMsg::BarrierCombine {
            barrier: BarrierId(0),
            from: NodeId::new(9),
            gen: 1,
            arrived: NodeSet::from_nodes([NodeId::new(9), NodeId::new(10)]),
        };
        // 16 bytes of framing + one 8-byte bitmap word for nodes < 64.
        assert_eq!(combine.model_bytes(), HEADER_BYTES + 16 + 8);
        assert_eq!(combine.class(), "barrier_combine");
        assert!(!combine.is_user_reply());

        // A 256-node subtree report still ships only 4 bitmap words.
        let wide = DsmMsg::BarrierCombine {
            barrier: BarrierId(0),
            from: NodeId::new(0),
            gen: 1,
            arrived: NodeSet::full(256),
        };
        assert_eq!(wide.model_bytes(), HEADER_BYTES + 16 + 8 * 4);

        let release = DsmMsg::BarrierTreeRelease {
            barrier: BarrierId(0),
            gen: 1,
        };
        assert_eq!(release.model_bytes(), HEADER_BYTES + 12);
        assert_eq!(release.class(), "barrier_tree_release");
        // The tree release is forwarded by the service loop, which routes a
        // plain BarrierRelease to its own user thread; only that one is a
        // user reply.
        assert!(!release.is_user_reply());
    }

    #[test]
    fn every_class_is_nonempty() {
        let msgs = [
            DsmMsg::Shutdown,
            DsmMsg::WorkerDone {
                from: NodeId::new(0),
            },
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![],
            },
            DsmMsg::CopysetReply { have: vec![] },
        ];
        for m in msgs {
            assert!(!m.class().is_empty());
            assert!(m.model_bytes() >= HEADER_BYTES);
        }
    }
}
