//! Shared objects and shared variables.
//!
//! A Munin *shared object* is the unit on which the runtime maintains
//! consistency: a program variable, an 8 KB (page-sized) region of a larger
//! variable, or — with the `SingleObject` hint — an entire multi-page
//! variable treated as one object. This module defines the identifiers and
//! descriptors for variables and objects and the splitting of variables into
//! page-sized objects.

use crate::annotation::SharingAnnotation;

/// Default consistency unit: the paper's prototype uses 8-kilobyte pages.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Identifier of a shared program variable (as declared by the programmer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a shared object (a consistency unit) as seen by the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object id from an index.
    pub const fn new(idx: u32) -> Self {
        ObjectId(idx)
    }

    /// The object index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The object index as a usize.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Description of one shared variable, as recorded in the shared data
/// description table produced at "link" time.
#[derive(Clone, Debug)]
pub struct VarDesc {
    /// Variable identifier.
    pub id: VarId,
    /// Programmer-visible name.
    pub name: &'static str,
    /// Sharing annotation attached to the declaration.
    pub annotation: SharingAnnotation,
    /// Size of one element in bytes.
    pub elem_size: usize,
    /// Number of elements.
    pub len: usize,
    /// Byte offset of the variable within the shared data segment.
    pub segment_offset: usize,
    /// Whether the variable is kept as a single object rather than being
    /// broken into page-sized objects (the `SingleObject` hint).
    pub single_object: bool,
    /// Identifiers of the objects that make up this variable, in order.
    pub objects: Vec<ObjectId>,
}

impl VarDesc {
    /// Total size of the variable in bytes.
    pub fn byte_len(&self) -> usize {
        self.elem_size * self.len
    }
}

/// Description of one shared object (consistency unit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectDesc {
    /// Object identifier.
    pub id: ObjectId,
    /// The variable this object belongs to.
    pub var: VarId,
    /// Byte offset of the object within the shared data segment.
    pub segment_offset: usize,
    /// Size of the object in bytes (always a multiple of 4; the last object
    /// of a variable is padded up to a word boundary).
    pub size: usize,
    /// Byte offset of the object within its variable.
    pub var_offset: usize,
}

impl ObjectDesc {
    /// Number of 32-bit words in the object.
    pub fn words(&self) -> usize {
        self.size / 4
    }

    /// Whether the given byte offset (relative to the segment) falls inside
    /// this object.
    pub fn contains(&self, segment_offset: usize) -> bool {
        segment_offset >= self.segment_offset && segment_offset < self.segment_offset + self.size
    }
}

/// Splits a variable of `byte_len` bytes into object sizes, given the page
/// size and the `single_object` flag. Each size is padded to a multiple of 4
/// so the word-granularity diff is well defined.
pub fn split_sizes(byte_len: usize, page_size: usize, single_object: bool) -> Vec<usize> {
    let padded = byte_len.div_ceil(4) * 4;
    if padded == 0 {
        return Vec::new();
    }
    if single_object || padded <= page_size {
        return vec![padded];
    }
    let mut sizes = Vec::new();
    let mut remaining = padded;
    while remaining > 0 {
        let take = remaining.min(page_size);
        sizes.push(take);
        remaining -= take;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_variable_is_one_object() {
        assert_eq!(split_sizes(100, 8192, false), vec![100]);
        assert_eq!(split_sizes(8192, 8192, false), vec![8192]);
    }

    #[test]
    fn large_variable_is_broken_into_pages() {
        let sizes = split_sizes(20_000, 8192, false);
        assert_eq!(sizes, vec![8192, 8192, 3616]);
        assert_eq!(sizes.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn single_object_hint_keeps_one_object() {
        assert_eq!(split_sizes(20_000, 8192, true), vec![20_000]);
    }

    #[test]
    fn sizes_are_word_aligned() {
        let sizes = split_sizes(10, 8192, false);
        assert_eq!(sizes, vec![12]);
        for s in split_sizes(8195, 4096, false) {
            assert_eq!(s % 4, 0);
        }
    }

    #[test]
    fn empty_variable_has_no_objects() {
        assert!(split_sizes(0, 8192, false).is_empty());
    }

    #[test]
    fn object_desc_contains() {
        let d = ObjectDesc {
            id: ObjectId::new(0),
            var: VarId(0),
            segment_offset: 100,
            size: 50,
            var_offset: 0,
        };
        assert!(d.contains(100));
        assert!(d.contains(149));
        assert!(!d.contains(150));
        assert!(!d.contains(99));
        assert_eq!(d.words(), 12);
    }

    #[test]
    fn proptest_split_covers_variable() {
        // Lightweight deterministic sweep; the heavier property test lives in
        // the crate-level proptest suite.
        for byte_len in [1usize, 3, 4, 4095, 4096, 4097, 100_000] {
            for page in [64usize, 4096, 8192] {
                let sizes = split_sizes(byte_len, page, false);
                let total: usize = sizes.iter().sum();
                assert!(total >= byte_len);
                assert!(total < byte_len + 4);
                assert!(sizes.iter().all(|s| *s <= page && *s % 4 == 0));
            }
        }
    }
}
