//! Error type for the Munin DSM runtime.
//!
//! Munin's sharing annotations are not type-checked: the paper states that
//! "incorrect annotations may result in inefficient performance or in runtime
//! errors that are detected by the Munin runtime system". Those detected
//! runtime errors are the interesting variants here.

use std::fmt;
use std::time::Duration;

use munin_sim::{NodeId, SimError};

use crate::object::ObjectId;

/// Structured diagnosis of a protocol stall, produced by the watchdog when a
/// blocked user thread saw no protocol progress for the configured window
/// (see `MuninConfig::watchdog`). Everything a post-mortem needs: who was
/// blocked, on what operation, on which object or synchronization id, for how
/// long, what the reliability layer still had in flight, and how far each
/// destination's delivery schedule had progressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The stalled node.
    pub node: NodeId,
    /// The blocked protocol operation (e.g. `"fetch"`, `"lock_acquire"`,
    /// `"barrier"`).
    pub op: &'static str,
    /// The object the operation was about, when it concerns one.
    pub object: Option<ObjectId>,
    /// The lock or barrier id, when the operation concerns one.
    pub sync_id: Option<u32>,
    /// How long (wall clock) the thread waited before giving up.
    pub waited: Duration,
    /// Reliability-layer messages still unacknowledged, as
    /// `(destination index, count)` pairs (empty when the transport is off).
    pub unacked: Vec<(usize, u64)>,
    /// Requests parked in the service loop's deferred queue.
    pub deferred: usize,
    /// Peers the failure detector currently holds suspect or dead (empty
    /// when detection is disabled), as node indexes.
    pub suspected: Vec<usize>,
    /// Per-destination delivery frontier in nanoseconds of virtual time, as
    /// `(destination index, frontier_ns)` pairs.
    pub frontiers: Vec<(usize, u64)>,
    /// Flight-recorder forensics: the last few recorded events of each
    /// node, rendered, as `(node index, events oldest → newest)` pairs.
    /// When the report is raised it holds only the stalled node's tail; the
    /// run driver extends it to every node before returning the error.
    /// Empty when event capture is disabled (`MUNIN_FLIGHT_EVENTS=0`).
    pub last_events: Vec<(usize, Vec<String>)>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {:?} made no protocol progress for {:?} while blocked in `{}`",
            self.node, self.waited, self.op
        )?;
        if let Some(o) = self.object {
            write!(f, " on object {o:?}")?;
        }
        if let Some(id) = self.sync_id {
            write!(f, " (sync id {id})")?;
        }
        write!(f, "; deferred requests: {}", self.deferred)?;
        if !self.suspected.is_empty() {
            write!(f, "; suspected peers:")?;
            for n in &self.suspected {
                write!(f, " N{n}")?;
            }
        }
        if !self.unacked.is_empty() {
            write!(f, "; unacked:")?;
            for (dst, n) in &self.unacked {
                write!(f, " →N{dst}:{n}")?;
            }
        }
        write!(f, "; delivery frontiers (ns):")?;
        for (dst, ns) in &self.frontiers {
            write!(f, " N{dst}@{ns}")?;
        }
        for (node, events) in &self.last_events {
            write!(f, "\n  last events N{node}:")?;
            if events.is_empty() {
                write!(f, " (none recorded)")?;
            }
            for ev in events {
                write!(f, "\n    {ev}")?;
            }
        }
        Ok(())
    }
}

/// Errors raised by the Munin runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuninError {
    /// A thread attempted to write to an object annotated `read_only`.
    ReadOnlyWrite(ObjectId),
    /// A thread accessed a `producer_consumer` (stable-sharing) object after
    /// the sharing relationship had been fixed, from a node that is not part
    /// of that relationship, without an intervening `PhaseChange`.
    StableSharingViolation(ObjectId),
    /// An invalidation arrived for a dirty object whose protocol does not
    /// allow multiple writers.
    DirtyInvalidation(ObjectId),
    /// A shared-variable access was out of bounds.
    OutOfBounds {
        /// The variable that was accessed.
        var: &'static str,
        /// The element index requested.
        index: usize,
        /// The number of elements in the variable.
        len: usize,
    },
    /// A reduction (`Fetch_and_Φ`) operation was applied to an object whose
    /// annotation is not `reduction`.
    NotAReductionObject(ObjectId),
    /// The requested lock or barrier does not exist.
    UnknownSyncObject(u32),
    /// The requested shared variable does not exist.
    UnknownObject(ObjectId),
    /// A lock was released by a node that does not hold it.
    LockNotHeld(u32),
    /// The VM-trap access mode was requested but is unavailable (unsupported
    /// platform) or its memory region could not be set up; the payload names
    /// the failing step.
    VmUnavailable(&'static str),
    /// The underlying simulated network failed.
    Sim(SimError),
    /// The runtime received a reply it cannot correlate with a request.
    ProtocolViolation(&'static str),
    /// The stall watchdog fired: a blocked protocol operation made no
    /// progress for the configured window. Boxed: the report is large and
    /// stalls are the exceptional path.
    Stalled(Box<StallReport>),
    /// A peer was confirmed dead and a blocked operation could not be
    /// recovered: the sole surviving copy of the listed objects died with
    /// it, or the operation's fixed home (lock home, barrier owner,
    /// reduction home, the root) was the dead node. `lost_objects` is empty
    /// when the loss is a sync-object home rather than data.
    NodeDown {
        /// The dead node.
        node: NodeId,
        /// Objects whose only copy died with the node.
        lost_objects: Vec<ObjectId>,
    },
    /// Internal control-flow signal: the failure detector confirmed a peer
    /// dead while a protocol operation was blocked. Blocked call sites catch
    /// it, recompute their expectations against the shrunken cluster, and
    /// either continue or escalate to [`MuninError::NodeDown`]. Never
    /// returned from the public API.
    PeerDied(NodeId),
}

impl fmt::Display for MuninError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuninError::ReadOnlyWrite(o) => {
                write!(f, "runtime error: write to read_only object {o:?}")
            }
            MuninError::StableSharingViolation(o) => {
                write!(
                    f,
                    "runtime error: stable sharing pattern of object {o:?} violated"
                )
            }
            MuninError::DirtyInvalidation(o) => {
                write!(
                    f,
                    "runtime error: invalidation for dirty single-writer object {o:?}"
                )
            }
            MuninError::OutOfBounds { var, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for shared variable `{var}` of length {len}"
                )
            }
            MuninError::NotAReductionObject(o) => {
                write!(f, "Fetch_and_Φ applied to non-reduction object {o:?}")
            }
            MuninError::UnknownSyncObject(id) => write!(f, "unknown synchronization object {id}"),
            MuninError::UnknownObject(o) => write!(f, "unknown shared object {o:?}"),
            MuninError::LockNotHeld(id) => write!(f, "lock {id} released but not held"),
            MuninError::VmUnavailable(what) => {
                write!(f, "VM-trap access mode unavailable: {what}")
            }
            MuninError::Sim(e) => write!(f, "simulation error: {e}"),
            MuninError::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
            MuninError::Stalled(report) => write!(f, "protocol stall: {report}"),
            MuninError::NodeDown { node, lost_objects } => {
                write!(f, "node {:?} is down", node)?;
                if !lost_objects.is_empty() {
                    write!(f, "; sole copy of objects lost:")?;
                    for o in lost_objects {
                        write!(f, " {o:?}")?;
                    }
                }
                Ok(())
            }
            MuninError::PeerDied(node) => {
                write!(f, "internal: peer {:?} confirmed dead mid-wait", node)
            }
        }
    }
}

impl std::error::Error for MuninError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MuninError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for MuninError {
    fn from(e: SimError) -> Self {
        MuninError::Sim(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MuninError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_relevant_entity() {
        let e = MuninError::OutOfBounds {
            var: "matrix",
            index: 12,
            len: 10,
        };
        let s = e.to_string();
        assert!(s.contains("matrix") && s.contains("12") && s.contains("10"));
        assert!(MuninError::ReadOnlyWrite(ObjectId::new(3))
            .to_string()
            .contains("read_only"));
    }

    #[test]
    fn sim_errors_convert() {
        let e: MuninError = SimError::Disconnected.into();
        assert_eq!(e, MuninError::Sim(SimError::Disconnected));
    }
}
