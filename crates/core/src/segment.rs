//! The shared data segment and the shared data description table.
//!
//! In the paper, a preprocessor reads the sharing annotations and a modified
//! linker appends a *shared data segment* and a *shared data description
//! table* to the executable; at startup the root node's data object directory
//! is initialized from the table. In this reproduction the table is built
//! programmatically (by [`crate::api::MuninProgram`] declarations) and plays
//! exactly the same role: it records every shared variable, its annotation,
//! its placement in the segment, and its decomposition into objects.

use std::collections::HashMap;

use crate::annotation::SharingAnnotation;
use crate::object::{split_sizes, ObjectDesc, ObjectId, VarDesc, VarId};

/// The shared data description table: every variable and every object in the
/// shared data segment.
#[derive(Clone, Debug, Default)]
pub struct SharedDataTable {
    vars: Vec<VarDesc>,
    objects: Vec<ObjectDesc>,
    by_name: HashMap<&'static str, VarId>,
    page_size: usize,
    segment_len: usize,
}

impl SharedDataTable {
    /// Creates an empty table with the given consistency-unit (page) size.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= 4 && page_size.is_multiple_of(4),
            "page size must be a positive word multiple"
        );
        SharedDataTable {
            vars: Vec::new(),
            objects: Vec::new(),
            by_name: HashMap::new(),
            page_size,
            segment_len: 0,
        }
    }

    /// The consistency-unit size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total size of the shared data segment in bytes.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Adds a shared variable to the segment, splitting it into objects, and
    /// returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a variable of the same name was already declared.
    pub fn declare(
        &mut self,
        name: &'static str,
        annotation: SharingAnnotation,
        elem_size: usize,
        len: usize,
        single_object: bool,
    ) -> VarId {
        assert!(
            !self.by_name.contains_key(name),
            "shared variable `{name}` declared twice"
        );
        let id = VarId(self.vars.len() as u32);
        // Variables are placed at page boundaries so that distinct variables
        // never share a consistency unit unless the programmer groups them.
        let base = self.segment_len.div_ceil(self.page_size) * self.page_size;
        let sizes = split_sizes(elem_size * len, self.page_size, single_object);
        let mut objects = Vec::with_capacity(sizes.len());
        let mut var_offset = 0usize;
        for size in &sizes {
            let oid = ObjectId::new(self.objects.len() as u32);
            self.objects.push(ObjectDesc {
                id: oid,
                var: id,
                segment_offset: base + var_offset,
                size: *size,
                var_offset,
            });
            objects.push(oid);
            var_offset += size;
        }
        self.segment_len = base + var_offset;
        self.vars.push(VarDesc {
            id,
            name,
            annotation,
            elem_size,
            len,
            segment_offset: base,
            single_object,
            objects,
        });
        self.by_name.insert(name, id);
        id
    }

    /// Variable descriptor by id.
    pub fn var(&self, id: VarId) -> &VarDesc {
        &self.vars[id.as_usize()]
    }

    /// Variable descriptor by name, if declared.
    pub fn var_by_name(&self, name: &str) -> Option<&VarDesc> {
        self.by_name.get(name).map(|id| self.var(*id))
    }

    /// All declared variables.
    pub fn vars(&self) -> &[VarDesc] {
        &self.vars
    }

    /// Object descriptor by id.
    pub fn object(&self, id: ObjectId) -> &ObjectDesc {
        &self.objects[id.as_usize()]
    }

    /// All objects in the segment.
    pub fn objects(&self) -> &[ObjectDesc] {
        &self.objects
    }

    /// Number of objects in the segment.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Maps a byte offset within a variable to the object containing it and
    /// the offset within that object.
    pub fn locate(&self, var: VarId, byte_offset: usize) -> Option<(ObjectId, usize)> {
        let v = self.var(var);
        if byte_offset >= v.byte_len().max(1) && byte_offset != 0 {
            // Allow offset 0 for zero-length variables to fail below instead.
        }
        if v.single_object || v.byte_len() <= self.page_size {
            let oid = *v.objects.first()?;
            if byte_offset < self.object(oid).size {
                return Some((oid, byte_offset));
            }
            return None;
        }
        let idx = byte_offset / self.page_size;
        let oid = *v.objects.get(idx)?;
        let within = byte_offset - idx * self.page_size;
        if within < self.object(oid).size {
            Some((oid, within))
        } else {
            None
        }
    }

    /// The objects of `var` covering the byte range `[start, end)`, in order.
    pub fn objects_in_range(&self, var: VarId, start: usize, end: usize) -> Vec<ObjectId> {
        let v = self.var(var);
        if start >= end {
            return Vec::new();
        }
        v.objects
            .iter()
            .copied()
            .filter(|oid| {
                let o = self.object(*oid);
                o.var_offset < end && o.var_offset + o.size > start
            })
            .collect()
    }

    /// The annotation of the variable an object belongs to.
    pub fn annotation_of(&self, object: ObjectId) -> SharingAnnotation {
        self.var(self.object(object).var).annotation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SharedDataTable {
        SharedDataTable::new(64)
    }

    #[test]
    fn variables_are_page_aligned_and_split() {
        let mut t = table();
        let a = t.declare("a", SharingAnnotation::ReadOnly, 4, 8, false); // 32 bytes, 1 object
        let b = t.declare("b", SharingAnnotation::WriteShared, 4, 40, false); // 160 bytes, 3 objects
        assert_eq!(t.var(a).segment_offset, 0);
        assert_eq!(t.var(b).segment_offset, 64);
        assert_eq!(t.var(a).objects.len(), 1);
        assert_eq!(t.var(b).objects.len(), 3);
        assert_eq!(t.object_count(), 4);
        assert_eq!(t.segment_len(), 64 + 160);
    }

    #[test]
    fn locate_maps_offsets_to_objects() {
        let mut t = table();
        let v = t.declare("v", SharingAnnotation::WriteShared, 4, 40, false); // 160 bytes
        let (o0, off0) = t.locate(v, 0).unwrap();
        let (o1, off1) = t.locate(v, 70).unwrap();
        let (o2, off2) = t.locate(v, 159).unwrap();
        assert_eq!(t.object(o0).var_offset, 0);
        assert_eq!(off0, 0);
        assert_eq!(t.object(o1).var_offset, 64);
        assert_eq!(off1, 6);
        assert_eq!(t.object(o2).var_offset, 128);
        assert_eq!(off2, 31);
        assert!(t.locate(v, 160).is_none());
    }

    #[test]
    fn single_object_variables_have_one_object() {
        let mut t = table();
        let v = t.declare("big", SharingAnnotation::ReadOnly, 4, 100, true); // 400 bytes single
        assert_eq!(t.var(v).objects.len(), 1);
        let (oid, off) = t.locate(v, 399).unwrap();
        assert_eq!(off, 399);
        assert_eq!(t.object(oid).size, 400);
    }

    #[test]
    fn objects_in_range_selects_overlapping_objects() {
        let mut t = table();
        let v = t.declare("v", SharingAnnotation::WriteShared, 4, 48, false); // 192 bytes, 3 objects of 64
        let objs = t.objects_in_range(v, 60, 70);
        assert_eq!(objs.len(), 2);
        let objs = t.objects_in_range(v, 0, 192);
        assert_eq!(objs.len(), 3);
        assert!(t.objects_in_range(v, 10, 10).is_empty());
    }

    #[test]
    fn annotation_of_object_follows_variable() {
        let mut t = table();
        let v = t.declare("v", SharingAnnotation::Result, 8, 4, false);
        let oid = t.var(v).objects[0];
        assert_eq!(t.annotation_of(oid), SharingAnnotation::Result);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_names_panic() {
        let mut t = table();
        t.declare("dup", SharingAnnotation::ReadOnly, 4, 1, false);
        t.declare("dup", SharingAnnotation::ReadOnly, 4, 1, false);
    }

    #[test]
    fn lookup_by_name() {
        let mut t = table();
        t.declare("named", SharingAnnotation::Migratory, 4, 2, false);
        assert!(t.var_by_name("named").is_some());
        assert!(t.var_by_name("missing").is_none());
    }
}
