//! Copysets: which remote processors hold copies of an object.
//!
//! The paper uses a bitmap of remote processors per directory entry, noting
//! that this "does not scale well to larger systems but an earlier study of
//! parallel programs suggests that a processor list is often quite short",
//! and that a special *All Nodes* value covers the common case of an object
//! shared by every processor. Both representations are provided here.

use munin_sim::NodeId;

/// The set of nodes that hold a copy of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopySet {
    /// An explicit bitmap of nodes (bit *i* set ⇒ node *i* has a copy).
    /// Supports up to 64 nodes, which comfortably covers the paper's
    /// 16-processor prototype.
    Nodes(u64),
    /// Every node in the system has a copy.
    AllNodes,
}

impl Default for CopySet {
    fn default() -> Self {
        CopySet::Nodes(0)
    }
}

impl CopySet {
    /// The empty copyset.
    pub const EMPTY: CopySet = CopySet::Nodes(0);

    /// Creates a copyset containing exactly the given nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut set = CopySet::EMPTY;
        for n in nodes {
            set.insert(n);
        }
        set
    }

    /// Adds a node to the set (no-op for [`CopySet::AllNodes`]).
    pub fn insert(&mut self, node: NodeId) {
        if let CopySet::Nodes(bits) = self {
            *bits |= 1u64 << node.as_usize();
        }
    }

    /// Removes a node from the set. Removing from [`CopySet::AllNodes`] is
    /// not representable without knowing the system size and is ignored;
    /// callers that need it should first materialize with
    /// [`CopySet::materialize`].
    pub fn remove(&mut self, node: NodeId) {
        if let CopySet::Nodes(bits) = self {
            *bits &= !(1u64 << node.as_usize());
        }
    }

    /// Whether the node is in the set. For [`CopySet::AllNodes`] every node
    /// is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            CopySet::Nodes(bits) => bits & (1u64 << node.as_usize()) != 0,
            CopySet::AllNodes => true,
        }
    }

    /// Whether the set is empty. [`CopySet::AllNodes`] is never empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, CopySet::Nodes(0))
    }

    /// Number of members, given the total number of nodes in the system.
    pub fn len(&self, total_nodes: usize) -> usize {
        match self {
            CopySet::Nodes(bits) => bits.count_ones() as usize,
            CopySet::AllNodes => total_nodes,
        }
    }

    /// Converts to an explicit bitmap over `total_nodes` nodes.
    pub fn materialize(&self, total_nodes: usize) -> CopySet {
        match self {
            CopySet::Nodes(_) => *self,
            CopySet::AllNodes => {
                let bits = if total_nodes >= 64 {
                    u64::MAX
                } else {
                    (1u64 << total_nodes) - 1
                };
                CopySet::Nodes(bits)
            }
        }
    }

    /// Iterates the member nodes, excluding `exclude` (typically the local
    /// node), given the total number of nodes.
    pub fn members(&self, total_nodes: usize, exclude: Option<NodeId>) -> Vec<NodeId> {
        let materialized = self.materialize(total_nodes);
        let CopySet::Nodes(bits) = materialized else {
            unreachable!("materialize always returns Nodes");
        };
        (0..total_nodes)
            .filter(|i| bits & (1u64 << i) != 0)
            .map(NodeId::new)
            .filter(|n| Some(*n) != exclude)
            .collect()
    }

    /// Union of two copysets.
    pub fn union(&self, other: &CopySet) -> CopySet {
        match (self, other) {
            (CopySet::AllNodes, _) | (_, CopySet::AllNodes) => CopySet::AllNodes,
            (CopySet::Nodes(a), CopySet::Nodes(b)) => CopySet::Nodes(a | b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut cs = CopySet::EMPTY;
        assert!(cs.is_empty());
        cs.insert(NodeId::new(3));
        cs.insert(NodeId::new(7));
        assert!(cs.contains(NodeId::new(3)));
        assert!(cs.contains(NodeId::new(7)));
        assert!(!cs.contains(NodeId::new(4)));
        assert_eq!(cs.len(16), 2);
        cs.remove(NodeId::new(3));
        assert!(!cs.contains(NodeId::new(3)));
        assert_eq!(cs.len(16), 1);
    }

    #[test]
    fn all_nodes_contains_everything() {
        let cs = CopySet::AllNodes;
        for i in 0..16 {
            assert!(cs.contains(NodeId::new(i)));
        }
        assert!(!cs.is_empty());
        assert_eq!(cs.len(16), 16);
    }

    #[test]
    fn materialize_all_nodes() {
        let cs = CopySet::AllNodes.materialize(4);
        assert_eq!(cs, CopySet::Nodes(0b1111));
        let cs64 = CopySet::AllNodes.materialize(64);
        assert_eq!(cs64, CopySet::Nodes(u64::MAX));
    }

    #[test]
    fn members_excludes_local_node() {
        let cs = CopySet::from_nodes([NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        let members = cs.members(4, Some(NodeId::new(2)));
        assert_eq!(members, vec![NodeId::new(0), NodeId::new(3)]);
        let all = CopySet::AllNodes.members(3, Some(NodeId::new(0)));
        assert_eq!(all, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn union_saturates_to_all_nodes() {
        let a = CopySet::from_nodes([NodeId::new(1)]);
        let b = CopySet::from_nodes([NodeId::new(2)]);
        assert_eq!(
            a.union(&b),
            CopySet::from_nodes([NodeId::new(1), NodeId::new(2)])
        );
        assert_eq!(a.union(&CopySet::AllNodes), CopySet::AllNodes);
    }
}
