//! Copysets: which remote processors hold copies of an object.
//!
//! The paper uses a bitmap of remote processors per directory entry, noting
//! that this "does not scale well to larger systems but an earlier study of
//! parallel programs suggests that a processor list is often quite short",
//! and that a special *All Nodes* value covers the common case of an object
//! shared by every processor. Both representations are provided here; the
//! explicit bitmap is a [`NodeSet`] (multi-word, inline up to 256 nodes)
//! rather than the prototype's single machine word, so the scaling concern
//! the paper flags is addressed without giving up the bitmap's O(1) member
//! test.

use munin_sim::NodeId;

use crate::nodeset::{NodeSet, NodeSetIter};

/// The set of nodes that hold a copy of an object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CopySet {
    /// An explicit bitmap of nodes (bit *i* set ⇒ node *i* has a copy).
    Nodes(NodeSet),
    /// Every node in the system has a copy.
    AllNodes,
}

impl Default for CopySet {
    fn default() -> Self {
        CopySet::EMPTY
    }
}

impl CopySet {
    /// The empty copyset.
    pub const EMPTY: CopySet = CopySet::Nodes(NodeSet::EMPTY);

    /// Creates a copyset containing exactly the given nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        CopySet::Nodes(NodeSet::from_nodes(nodes))
    }

    /// Adds a node to the set (no-op for [`CopySet::AllNodes`]).
    pub fn insert(&mut self, node: NodeId) {
        if let CopySet::Nodes(set) = self {
            set.insert(node);
        }
    }

    /// Removes a node from the set. Removing from [`CopySet::AllNodes`] is
    /// not representable without knowing the system size and is ignored;
    /// callers that need it should first materialize with
    /// [`CopySet::materialize`].
    pub fn remove(&mut self, node: NodeId) {
        if let CopySet::Nodes(set) = self {
            set.remove(node);
        }
    }

    /// Whether the node is in the set. For [`CopySet::AllNodes`] every node
    /// is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            CopySet::Nodes(set) => set.contains(node),
            CopySet::AllNodes => true,
        }
    }

    /// Whether the set is empty. [`CopySet::AllNodes`] is never empty.
    pub fn is_empty(&self) -> bool {
        match self {
            CopySet::Nodes(set) => set.is_empty(),
            CopySet::AllNodes => false,
        }
    }

    /// Number of members, given the total number of nodes in the system.
    pub fn len(&self, total_nodes: usize) -> usize {
        match self {
            CopySet::Nodes(set) => set.count(),
            CopySet::AllNodes => total_nodes,
        }
    }

    /// Converts to an explicit bitmap over `total_nodes` nodes.
    pub fn materialize(&self, total_nodes: usize) -> CopySet {
        match self {
            CopySet::Nodes(_) => self.clone(),
            CopySet::AllNodes => CopySet::Nodes(NodeSet::full(total_nodes)),
        }
    }

    /// Iterates the member nodes in ascending order without allocating,
    /// excluding `exclude` (typically the local node). [`CopySet::AllNodes`]
    /// iterates `0..total_nodes`.
    pub fn iter(&self, total_nodes: usize, exclude: Option<NodeId>) -> CopySetIter<'_> {
        let inner = match self {
            CopySet::Nodes(set) => CopySetIterInner::Set(set.iter()),
            CopySet::AllNodes => CopySetIterInner::Range(0..total_nodes),
        };
        CopySetIter { inner, exclude }
    }

    /// The member nodes as a `Vec`, excluding `exclude`. Prefer
    /// [`CopySet::iter`] on hot paths; this remains for call sites that
    /// genuinely need an owned list (e.g. retained across awaits on replies).
    pub fn members(&self, total_nodes: usize, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.iter(total_nodes, exclude).collect()
    }

    /// The member nodes as an owned [`NodeSet`] over `total_nodes` nodes,
    /// excluding `exclude` — for call sites that keep a destination set
    /// around rather than walking it once.
    pub fn to_set(&self, total_nodes: usize, exclude: Option<NodeId>) -> NodeSet {
        let mut set = match self {
            CopySet::Nodes(s) => s.clone(),
            CopySet::AllNodes => NodeSet::full(total_nodes),
        };
        if let Some(e) = exclude {
            set.remove(e);
        }
        set
    }

    /// Union of two copysets.
    pub fn union(&self, other: &CopySet) -> CopySet {
        match (self, other) {
            (CopySet::AllNodes, _) | (_, CopySet::AllNodes) => CopySet::AllNodes,
            (CopySet::Nodes(a), CopySet::Nodes(b)) => {
                let mut out = a.clone();
                out.union_with(b);
                CopySet::Nodes(out)
            }
        }
    }
}

/// Non-allocating iterator over the members of a [`CopySet`] (see
/// [`CopySet::iter`]).
pub struct CopySetIter<'a> {
    inner: CopySetIterInner<'a>,
    exclude: Option<NodeId>,
}

enum CopySetIterInner<'a> {
    Set(NodeSetIter<'a>),
    Range(std::ops::Range<usize>),
}

impl Iterator for CopySetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let node = match &mut self.inner {
                CopySetIterInner::Set(it) => it.next()?,
                CopySetIterInner::Range(r) => NodeId::new(r.next()?),
            };
            if Some(node) != self.exclude {
                return Some(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut cs = CopySet::EMPTY;
        assert!(cs.is_empty());
        cs.insert(NodeId::new(3));
        cs.insert(NodeId::new(7));
        assert!(cs.contains(NodeId::new(3)));
        assert!(cs.contains(NodeId::new(7)));
        assert!(!cs.contains(NodeId::new(4)));
        assert_eq!(cs.len(16), 2);
        cs.remove(NodeId::new(3));
        assert!(!cs.contains(NodeId::new(3)));
        assert_eq!(cs.len(16), 1);
    }

    #[test]
    fn all_nodes_contains_everything() {
        let cs = CopySet::AllNodes;
        for i in 0..16 {
            assert!(cs.contains(NodeId::new(i)));
        }
        assert!(!cs.is_empty());
        assert_eq!(cs.len(16), 16);
    }

    #[test]
    fn materialize_all_nodes() {
        let cs = CopySet::AllNodes.materialize(4);
        assert_eq!(cs, CopySet::from_nodes((0..4).map(NodeId::new)));
        let cs64 = CopySet::AllNodes.materialize(64);
        assert_eq!(cs64.len(64), 64);
        let cs256 = CopySet::AllNodes.materialize(256);
        assert_eq!(cs256.len(256), 256);
        assert!(cs256.contains(NodeId::new(255)));
    }

    #[test]
    fn members_excludes_local_node() {
        let cs = CopySet::from_nodes([NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        let members = cs.members(4, Some(NodeId::new(2)));
        assert_eq!(members, vec![NodeId::new(0), NodeId::new(3)]);
        let all = CopySet::AllNodes.members(3, Some(NodeId::new(0)));
        assert_eq!(all, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn iter_matches_members_without_allocating() {
        let cs = CopySet::from_nodes([NodeId::new(1), NodeId::new(100), NodeId::new(200)]);
        assert_eq!(
            cs.iter(256, Some(NodeId::new(100))).collect::<Vec<_>>(),
            cs.members(256, Some(NodeId::new(100)))
        );
        assert_eq!(
            CopySet::AllNodes.iter(5, None).collect::<Vec<_>>(),
            (0..5).map(NodeId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wide_copysets_do_not_alias() {
        let mut cs = CopySet::EMPTY;
        cs.insert(NodeId::new(64));
        cs.insert(NodeId::new(130));
        assert!(!cs.contains(NodeId::new(0)));
        assert!(!cs.contains(NodeId::new(2)));
        assert!(cs.contains(NodeId::new(64)));
        assert!(cs.contains(NodeId::new(130)));
        assert_eq!(cs.len(256), 2);
    }

    #[test]
    fn union_saturates_to_all_nodes() {
        let a = CopySet::from_nodes([NodeId::new(1)]);
        let b = CopySet::from_nodes([NodeId::new(2)]);
        assert_eq!(
            a.union(&b),
            CopySet::from_nodes([NodeId::new(1), NodeId::new(2)])
        );
        assert_eq!(a.union(&CopySet::AllNodes), CopySet::AllNodes);
    }
}
