//! Per-node runtime statistics.
//!
//! The paper's qualitative analysis is phrased in terms of data motion and
//! overhead sources (access misses, twin copies, encode/decode work, messages
//! for copyset determination). These counters make the same quantities
//! observable in the reproduction and are asserted on by the integration
//! tests and printed by the benchmark harnesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! counters {
    ($(#[$struct_doc:meta])* $name:ident, $snap:ident { $($(#[$doc:meta])* $field:ident),+ $(,)? }) => {
        $(#[$struct_doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            $( $(#[$doc])* pub $field: AtomicU64, )+
        }

        impl $name {
            /// Creates a zeroed counter block behind an `Arc` so the user
            /// thread and the runtime service thread can share it.
            pub fn new() -> Arc<Self> {
                Arc::new(Self::default())
            }

            /// Takes an owned snapshot of the counters.
            pub fn snapshot(&self) -> $snap {
                $snap {
                    $( $field: self.$field.load(Ordering::Relaxed), )+
                }
            }
        }

        /// Owned snapshot of the corresponding counter block.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct $snap {
            $( $(#[$doc])* pub $field: u64, )+
        }

        impl $snap {
            /// Field-wise sum of two snapshots.
            pub fn merge(&self, other: &$snap) -> $snap {
                $snap {
                    $( $field: self.$field + other.$field, )+
                }
            }
        }
    };
}

counters! {
    /// Counters maintained by one node's Munin runtime.
    MuninStats, MuninStatsSnapshot {
        /// Read access faults taken by the local user thread.
        read_faults,
        /// Write access faults taken by the local user thread.
        write_faults,
        /// Twins created (first write to a multiple-writer object since the
        /// last flush).
        twins_created,
        /// Hardware write traps taken (`AccessMode::VmTraps` only): SIGSEGV
        /// faults on a write touch, routed to `write_fault`. Equals
        /// `write_faults` except for the transient-window re-trap cases
        /// documented in DESIGN.md ("VM-trap access mode").
        vm_write_traps,
        /// Hardware read traps taken (`AccessMode::VmTraps` only): SIGSEGV
        /// faults on a read touch, routed to `read_fault`.
        vm_read_traps,
        /// Objects fetched from remote nodes (read or write misses).
        objects_fetched,
        /// Bytes of object data received from remote nodes.
        fetch_bytes,
        /// Update messages sent at DUQ flushes (or eagerly).
        updates_sent,
        /// Bytes of encoded diffs / object images sent in updates.
        update_bytes_sent,
        /// Diffs (or full-object updates) applied to local copies.
        updates_applied,
        /// Invalidation messages sent.
        invalidations_sent,
        /// Invalidations received and applied.
        invalidations_received,
        /// DUQ flushes performed (releases and barrier arrivals).
        duq_flushes,
        /// Objects drained from the DUQ across all flushes.
        duq_objects_flushed,
        /// Copyset determination rounds performed (one per flush that had
        /// objects needing determination), regardless of strategy — the
        /// broadcast and owner-collected strategies count identically here,
        /// so their message economy is compared via `copyset_query_msgs`.
        copyset_queries,
        /// Copyset query messages actually sent (broadcast: one per peer per
        /// round; owner-collected: one per distinct remote owner per round).
        copyset_query_msgs,
        /// Update re-sends to copyset members the flusher's determination
        /// missed but the object's owner had recorded (see
        /// `DsmMsg::UpdateAck::owned_copysets`).
        updates_healed,
        /// Update/ack bundles that travelled piggybacked on another protocol
        /// message (lock grant, barrier arrive/release, copyset reply,
        /// update ack, invalidate ack) instead of as standalone messages —
        /// each counts one wire message the carrier layer avoided.
        msgs_piggybacked,
        /// `Flush()`-hint flushes whose updates were buffered in the outbox
        /// and merged into a later transmission instead of going on the wire
        /// immediately (cross-release coalescing; the window closes at the
        /// next acquire).
        flushes_coalesced,
        /// Payload bytes the adaptive relay sent direct-to-destination
        /// instead of through a barrier-relay carrier because they exceeded
        /// `MuninConfig::relay_max_bytes` — each byte counted here transited
        /// the wire once instead of twice.
        relay_bypassed_bytes,
        /// Update bundles this node re-fanned to other copyset members as
        /// the receiving owner of an owner-cooperative relay
        /// (`DsmMsg::RelayFanout`).
        owner_refans,
        /// Lock acquires performed by the local user thread.
        lock_acquires,
        /// Lock acquires satisfied locally without any message.
        lock_local_acquires,
        /// Lock protocol messages sent (acquire/forward/grant).
        lock_messages,
        /// Barrier waits performed by the local user thread.
        barrier_waits,
        /// Barrier-arrival messages this node received as a barrier owner:
        /// `BarrierArrive`s on the flat path, upward `BarrierCombine`s on
        /// the tree path. The flat owner takes N−1 of these per episode; a
        /// combining tree caps it at the fan-in k — the scaling tests
        /// assert on exactly this counter.
        barrier_owner_ingress,
        /// Fetch-and-Φ operations performed on reduction objects.
        reductions,
        /// Runtime errors detected (e.g. writes to read-only objects).
        runtime_errors,
        /// Reliability-layer retransmissions of unacknowledged messages.
        retransmits,
        /// Standalone `NetAck` messages sent (acks that could not ride an
        /// outgoing protocol message).
        net_acks_sent,
        /// Duplicate deliveries discarded by the reliability layer before
        /// dispatch (message id below the cumulative receive frontier).
        dup_msgs_dropped,
        /// Stall-watchdog reports raised for blocked protocol operations.
        watchdog_stalls,
        /// Peers the failure detector marked suspect (quiet for more than
        /// half the detection window, or the retransmit-attempt cap fired).
        peers_suspected,
        /// Peers confirmed dead (quiet for the full detection window, or a
        /// `PeerDown` was received from another detector).
        peers_dead,
        /// Directory entries whose copyset had a confirmed-dead node pruned
        /// (the paper's update-timeout replica-pruning analog).
        copysets_pruned,
        /// Orphaned objects deterministically re-homed to (or adopted by)
        /// the lowest-id surviving replica holder after an owner died.
        objects_rehomed,
        /// Heartbeat probes sent by the failure detector.
        heartbeats_sent,
    }
}

/// Increments an atomic counter by one.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds `n` to an atomic counter.
pub fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let stats = MuninStats::new();
        bump(&stats.read_faults);
        bump(&stats.read_faults);
        add(&stats.fetch_bytes, 100);
        let snap = stats.snapshot();
        assert_eq!(snap.read_faults, 2);
        assert_eq!(snap.fetch_bytes, 100);
        assert_eq!(snap.write_faults, 0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let a = MuninStatsSnapshot {
            read_faults: 1,
            updates_sent: 5,
            ..Default::default()
        };
        let b = MuninStatsSnapshot {
            read_faults: 2,
            lock_acquires: 3,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.read_faults, 3);
        assert_eq!(m.updates_sent, 5);
        assert_eq!(m.lock_acquires, 3);
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        let stats = MuninStats::new();
        let s2 = Arc::clone(&stats);
        std::thread::spawn(move || bump(&s2.write_faults))
            .join()
            .unwrap();
        assert_eq!(stats.snapshot().write_faults, 1);
    }
}
