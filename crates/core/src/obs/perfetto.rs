//! Chrome-trace-event (Perfetto) JSON export of flight-recorder snapshots,
//! plus an in-tree schema validator.
//!
//! The exporter emits the JSON-array flavour of the Trace Event Format —
//! one event object per line — loadable in `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev). Layout:
//!
//! * one process (`pid` 1, named `munin`), one **track per node** (`tid` =
//!   node index, named and sorted by `thread_name`/`thread_sort_index`
//!   metadata events);
//! * span-end events ([`EventKind::ends_span`]) become complete slices
//!   (`ph:"X"`) covering `[t_virt − dur, t_virt]`;
//! * `UpdateSend`/`UpdateInstall` become thin slices joined by **flow
//!   arrows** (`ph:"s"` → `ph:"f"`) whose id is the per-(src, dst) update
//!   sequence stream — `"<src>-<dst>-<seq>"` — so every update transmission
//!   draws an arrow from the sending node's track to the applying node's;
//! * everything else becomes a thread-scoped instant (`ph:"i"`);
//! * each node carries a `flight_recorder` instant whose args report how
//!   many events were recorded and dropped, which the validator uses to
//!   decide whether flow pairing must be complete.
//!
//! Timestamps are **virtual** microseconds (`t_virt_ns / 1000`, three
//! decimals preserved), so traces are deterministic under a fixed engine
//! seed. No external JSON dependency: the writer formats by hand and the
//! validator ([`validate_trace_str`]) carries a minimal recursive-descent
//! JSON parser, which is also what CI's schema-check step runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::{EventKind, ObsEvent, ObsSnapshot};

/// Escapes a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes nanoseconds as microseconds with three decimals (`1234` → `1.234`).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Flow-arrow id for an update transmission: the (src, dst, seq) triple of
/// the per-destination update sequence stream, rendered as a string so ids
/// survive JSON number precision.
fn flow_id(src: usize, dst: usize, seq: u64) -> String {
    format!("{src}-{dst}-{seq}")
}

/// Appends the common `"args"` object for an event (object / sync / peer /
/// seq / note fields that are present).
fn write_args(out: &mut String, ev: &ObsEvent) {
    out.push_str("\"args\":{");
    let mut first = true;
    let field = |out: &mut String, first: &mut bool, key: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(out, "\"{key}\":");
    };
    if let Some(o) = ev.object {
        field(out, &mut first, "object");
        let _ = write!(out, "{}", o.as_u32());
    }
    if let Some(id) = ev.sync_id {
        field(out, &mut first, "sync_id");
        let _ = write!(out, "{id}");
    }
    if let Some(p) = ev.peer {
        field(out, &mut first, "peer");
        let _ = write!(out, "{}", p.as_usize());
    }
    if let Some(q) = ev.seq {
        field(out, &mut first, "seq");
        let _ = write!(out, "{q}");
    }
    if ev.dur_ns > 0 {
        field(out, &mut first, "dur_ns");
        let _ = write!(out, "{}", ev.dur_ns);
    }
    field(out, &mut first, "wall_ns");
    let _ = write!(out, "{}", ev.t_wall_ns);
    if let Some(n) = &ev.note {
        field(out, &mut first, "note");
        out.push('"');
        escape_into(out, n);
        out.push('"');
    }
    out.push('}');
}

/// Friendly slice name for a span-end event.
fn slice_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::ReadFaultEnd => "read_fault",
        EventKind::WriteFaultEnd => "write_fault",
        EventKind::LockGrant => "lock_acquire",
        EventKind::BarrierRelease => "barrier_wait",
        other => other.label(),
    }
}

/// Renders per-node snapshots as a Chrome-trace-event JSON array.
pub fn render_trace(nodes: &[ObsSnapshot]) -> String {
    let mut lines: Vec<String> = Vec::new();
    lines.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"munin\"}}"
            .to_string(),
    );
    for snap in nodes {
        let tid = snap.node;
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"node {tid}\"}}}}"
        ));
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
        lines.push(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":0.000,\"s\":\"t\",\
             \"name\":\"flight_recorder\",\"args\":{{\"events_recorded\":{},\
             \"events_dropped\":{}}}}}",
            snap.events_recorded, snap.events_dropped
        ));
        for ev in &snap.events {
            lines.push(render_event(tid, ev));
            match ev.kind {
                EventKind::UpdateSend => {
                    if let (Some(peer), Some(seq)) = (ev.peer, ev.seq) {
                        let mut s = String::new();
                        let _ = write!(s, "{{\"ph\":\"s\",\"pid\":1,\"tid\":{tid},\"ts\":",);
                        write_us(&mut s, ev.t_virt_ns);
                        let _ = write!(
                            s,
                            ",\"cat\":\"update\",\"name\":\"update\",\"id\":\"{}\"}}",
                            flow_id(tid, peer.as_usize(), seq)
                        );
                        lines.push(s);
                    }
                }
                EventKind::UpdateInstall => {
                    if let (Some(peer), Some(seq)) = (ev.peer, ev.seq) {
                        let mut s = String::new();
                        let _ = write!(
                            s,
                            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{tid},\"ts\":",
                        );
                        write_us(&mut s, ev.t_virt_ns);
                        let _ = write!(
                            s,
                            ",\"cat\":\"update\",\"name\":\"update\",\"id\":\"{}\"}}",
                            flow_id(peer.as_usize(), tid, seq)
                        );
                        lines.push(s);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 2).sum::<usize>() + 4);
    out.push_str("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders one flight-recorder event as a trace-event JSON object.
fn render_event(tid: usize, ev: &ObsEvent) -> String {
    let mut s = String::with_capacity(128);
    if ev.kind.ends_span() {
        // Complete slice covering [t_virt − dur, t_virt].
        let start = ev.t_virt_ns.saturating_sub(ev.dur_ns);
        let _ = write!(
            s,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"munin\",\"ts\":",
            slice_name(ev.kind)
        );
        write_us(&mut s, start);
        s.push_str(",\"dur\":");
        write_us(&mut s, ev.dur_ns.max(1));
        s.push(',');
    } else if matches!(ev.kind, EventKind::UpdateSend | EventKind::UpdateInstall) {
        // Thin slice so the flow arrow has something to bind to.
        let _ = write!(
            s,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"update\",\"ts\":",
            ev.kind.label()
        );
        write_us(&mut s, ev.t_virt_ns);
        s.push_str(",\"dur\":0.001,");
    } else {
        let _ = write!(
            s,
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"munin\",\"s\":\"t\",\"ts\":",
            ev.kind.label()
        );
        write_us(&mut s, ev.t_virt_ns);
        s.push(',');
    }
    write_args(&mut s, ev);
    s.push('}');
    s
}

/// Renders and writes a trace for `nodes` to `path`.
pub fn write_trace_file(path: &str, nodes: &[ObsSnapshot]) -> std::io::Result<()> {
    std::fs::write(path, render_trace(nodes))
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON parser plus trace-schema checks.
// ---------------------------------------------------------------------------

/// A parsed JSON value (validator-internal; just enough JSON for traces).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Summary of a validated trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceCheck {
    /// Total trace events (including metadata).
    pub events: usize,
    /// Complete slices (`ph:"X"`).
    pub slices: usize,
    /// Instants (`ph:"i"`).
    pub instants: usize,
    /// Distinct node tracks seen.
    pub nodes: usize,
    /// Flow starts (`ph:"s"`).
    pub flows_started: usize,
    /// Flow finishes (`ph:"f"`).
    pub flows_finished: usize,
    /// Flows with both a start and a finish.
    pub flows_matched: usize,
    /// Total events dropped from recorder rings (per `flight_recorder`
    /// instants); when 0, flow pairing is required to be complete.
    pub dropped: u64,
}

/// Parses a trace produced by [`render_trace`] and checks its schema:
/// a JSON array of event objects, each with a valid `ph` and the fields that
/// phase requires; every flow finish pairs with an earlier-or-equal flow
/// start of the same id; and when no recorder ring dropped events, flow
/// pairing is exact (every start finishes and vice versa).
pub fn validate_trace_str(content: &str) -> Result<TraceCheck, String> {
    let mut parser = Parser::new(content);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after the trace array"));
    }
    let Json::Arr(events) = root else {
        return Err("trace root is not a JSON array".to_string());
    };
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut tracks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut starts: BTreeMap<String, f64> = BTreeMap::new();
    let mut finishes: BTreeMap<String, f64> = BTreeMap::new();
    let need_num = |ev: &Json, key: &str, i: usize| -> Result<f64, String> {
        ev.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `{key}`"))
    };
    let need_str = |ev: &Json, key: &str, i: usize| -> Result<String, String> {
        ev.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("event {i}: missing string `{key}`"))
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = need_str(ev, "ph", i)?;
        match ph.as_str() {
            "M" => {
                let name = need_str(ev, "name", i)?;
                if !matches!(
                    name.as_str(),
                    "process_name" | "thread_name" | "thread_sort_index"
                ) {
                    return Err(format!("event {i}: unknown metadata `{name}`"));
                }
                if ev
                    .get("args")
                    .and_then(|a| a.get("name").or(a.get("sort_index")))
                    .is_none()
                {
                    return Err(format!("event {i}: metadata `{name}` missing args"));
                }
            }
            "X" => {
                need_str(ev, "name", i)?;
                need_num(ev, "pid", i)?;
                let tid = need_num(ev, "tid", i)?;
                need_num(ev, "ts", i)?;
                need_num(ev, "dur", i)?;
                tracks.insert(tid as u64);
                check.slices += 1;
            }
            "i" => {
                let name = need_str(ev, "name", i)?;
                need_num(ev, "pid", i)?;
                let tid = need_num(ev, "tid", i)?;
                need_num(ev, "ts", i)?;
                need_str(ev, "s", i)?;
                tracks.insert(tid as u64);
                check.instants += 1;
                if name == "flight_recorder" {
                    let d = ev
                        .get("args")
                        .and_then(|a| a.get("events_dropped"))
                        .and_then(Json::as_num)
                        .ok_or_else(|| {
                            format!("event {i}: flight_recorder missing events_dropped")
                        })?;
                    check.dropped += d as u64;
                }
            }
            "s" | "f" => {
                let id = need_str(ev, "id", i)?;
                need_num(ev, "pid", i)?;
                need_num(ev, "tid", i)?;
                let ts = need_num(ev, "ts", i)?;
                need_str(ev, "name", i)?;
                if ph == "s" {
                    check.flows_started += 1;
                    if starts.insert(id.clone(), ts).is_some() {
                        return Err(format!("event {i}: duplicate flow start `{id}`"));
                    }
                } else {
                    if ev.get("bp").and_then(Json::as_str) != Some("e") {
                        return Err(format!("event {i}: flow finish without bp:\"e\""));
                    }
                    check.flows_finished += 1;
                    if finishes.insert(id.clone(), ts).is_some() {
                        return Err(format!("event {i}: duplicate flow finish `{id}`"));
                    }
                }
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    for (id, fts) in &finishes {
        match starts.get(id) {
            Some(sts) => {
                check.flows_matched += 1;
                if fts + 0.0005 < *sts {
                    return Err(format!(
                        "flow `{id}` finishes at {fts}us before it starts at {sts}us"
                    ));
                }
            }
            None if check.dropped == 0 => {
                return Err(format!("flow finish `{id}` has no matching start"));
            }
            None => {}
        }
    }
    if check.dropped == 0 {
        for id in starts.keys() {
            if !finishes.contains_key(id) {
                return Err(format!("flow start `{id}` never finishes"));
            }
        }
    }
    check.nodes = tracks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{EventKind, Recorder};
    use munin_sim::NodeId;

    fn sample_snapshots() -> Vec<ObsSnapshot> {
        let a = Recorder::new(NodeId::new(0), 64, false);
        let b = Recorder::new(NodeId::new(1), 64, false);
        a.record(1_000, EventKind::WriteFaultBegin, |ev| {
            ev.object = Some(crate::object::ObjectId::new(4));
        });
        a.record(2_500, EventKind::WriteFaultEnd, |ev| {
            ev.object = Some(crate::object::ObjectId::new(4));
            ev.dur_ns = 1_500;
        });
        a.record(3_000, EventKind::UpdateSend, |ev| {
            ev.peer = Some(NodeId::new(1));
            ev.seq = Some(0);
        });
        b.record(4_200, EventKind::UpdateInstall, |ev| {
            ev.peer = Some(NodeId::new(0));
            ev.seq = Some(0);
        });
        b.record(5_000, EventKind::BarrierRelease, |ev| {
            ev.sync_id = Some(1);
            ev.dur_ns = 800;
        });
        vec![a.snapshot(), b.snapshot()]
    }

    #[test]
    fn rendered_trace_validates_with_matched_flows() {
        let trace = render_trace(&sample_snapshots());
        let check = validate_trace_str(&trace).expect("trace should validate");
        assert_eq!(check.nodes, 2);
        assert_eq!(check.flows_started, 1);
        assert_eq!(check.flows_finished, 1);
        assert_eq!(check.flows_matched, 1);
        assert_eq!(check.dropped, 0);
        // write_fault + barrier_wait + the two thin update slices.
        assert_eq!(check.slices, 4);
    }

    #[test]
    fn unmatched_flow_finish_is_rejected_when_nothing_dropped() {
        let b = Recorder::new(NodeId::new(1), 64, false);
        b.record(4_200, EventKind::UpdateInstall, |ev| {
            ev.peer = Some(NodeId::new(0));
            ev.seq = Some(9);
        });
        let trace = render_trace(&[b.snapshot()]);
        let err = validate_trace_str(&trace).unwrap_err();
        assert!(err.contains("no matching start"), "got: {err}");
    }

    #[test]
    fn flow_ordering_violation_is_rejected() {
        // Hand-build a trace whose finish precedes its start.
        let trace = r#"[
{"ph":"s","pid":1,"tid":0,"ts":10.000,"cat":"update","name":"update","id":"0-1-0"},
{"ph":"f","bp":"e","pid":1,"tid":1,"ts":5.000,"cat":"update","name":"update","id":"0-1-0"}
]"#;
        let err = validate_trace_str(trace).unwrap_err();
        assert!(err.contains("before it starts"), "got: {err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(validate_trace_str("[{\"ph\":\"i\"").is_err());
        assert!(validate_trace_str("{\"ph\":\"i\"}").is_err());
        assert!(validate_trace_str("[{\"no_ph\":1}]").is_err());
    }

    #[test]
    fn note_text_is_escaped() {
        let rec = Recorder::new(NodeId::new(0), 8, false);
        // `record` (not `note`) so the test does not depend on dump mode.
        rec.record(100, EventKind::Note, |ev| {
            ev.note = Some("quote\" slash\\ newline\n".to_string());
        });
        let trace = render_trace(&[rec.snapshot()]);
        let check = validate_trace_str(&trace).expect("escaped note should parse");
        assert_eq!(check.instants, 1 + 1); // the note + flight_recorder meta
    }

    #[test]
    fn dropped_events_relax_flow_pairing() {
        // A ring of 1 keeps only the install; the send was evicted.
        let rec = Recorder::new(NodeId::new(1), 1, false);
        rec.record(1_000, EventKind::UpdateSend, |ev| {
            ev.peer = Some(NodeId::new(0));
            ev.seq = Some(3);
        });
        rec.record(2_000, EventKind::UpdateInstall, |ev| {
            ev.peer = Some(NodeId::new(0));
            ev.seq = Some(5);
        });
        let trace = render_trace(&[rec.snapshot()]);
        let check = validate_trace_str(&trace).expect("dropped>0 relaxes pairing");
        assert_eq!(check.dropped, 1);
        assert_eq!(check.flows_matched, 0);
    }
}
