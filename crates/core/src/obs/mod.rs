//! The observability subsystem: flight recorder, latency histograms, and
//! trace export.
//!
//! Each node owns one [`Recorder`] — a fixed-capacity overwrite ring of
//! typed protocol events ([`ObsEvent`]) plus log-bucketed latency
//! histograms ([`LatencyHist`]) for every blocking wait. The recorder is a
//! **pure leaf lock**: recording takes the recorder mutex and touches
//! nothing else — no engine calls, no clock charges, no directory or DUQ
//! state — so instrumentation can never perturb protocol behaviour or
//! deadlock against runtime locks, and recording-on runs stay bit-identical
//! to recording-off runs (pinned by `tests/observability.rs`).
//!
//! Two timestamp domains are captured per event:
//!
//! * **virtual time** (`t_virt_ns`) — the node's simulated clock, fully
//!   deterministic under a fixed engine seed; this is what the Perfetto
//!   exporter and the latency histograms use, and
//! * **wall time** (`t_wall_ns`) — nanoseconds since a process-wide
//!   recording epoch, for relating events to real elapsed time (profiling
//!   the harness itself).
//!
//! Event capture is controlled by `MuninConfig::flight_events`
//! (`MUNIN_FLIGHT_EVENTS`, default 256 per node; `0` disables the ring).
//! Wait histograms are always on — a record is a mutex acquire, a 64-way
//! `partition_point`, and an increment. The human-readable dump mode
//! (`MUNIN_PROTO_TRACE=1`, the long-standing debug alias, or
//! `MUNIN_OBS_DUMP=1`) additionally prints every recorded event to stderr
//! as it happens, replacing the old ad-hoc eprintln tracing path.

pub mod hist;
pub mod perfetto;
mod ring;
mod spin;

use std::collections::BTreeMap;
use std::sync::OnceLock;

use spin::SpinMutex;

use munin_sim::NodeId;

use crate::object::ObjectId;

pub use hist::{fmt_ns, LatencyHist};
pub use ring::Ring;

/// How many trailing flight-recorder events each node contributes to a
/// stall report's forensics section.
pub const STALL_TAIL_EVENTS: usize = 16;

/// Nanoseconds since the process-wide recording epoch (first call wins).
///
/// Wall timestamps exist to expose stalls and wall/virtual skew — forensic
/// uses where millisecond resolution is plenty — so this reads the kernel's
/// coarse monotonic clock where available: a vDSO memory read (a few ns)
/// instead of a full timer query, keeping the recorder's hot path cheap.
/// Values are tick-resolution (typically 1–4 ms) but monotone.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn wall_ns() -> u64 {
    fn coarse_now() -> u64 {
        let mut ts = libc::timespec::default();
        // Safety: `ts` is a valid out-pointer; the coarse monotonic clock
        // exists on every Linux the shim supports.
        unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC_COARSE, &mut ts) };
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    }
    static EPOCH: OnceLock<u64> = OnceLock::new();
    coarse_now().saturating_sub(*EPOCH.get_or_init(coarse_now))
}

/// Portable fallback: the standard monotonic clock.
#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
fn wall_ns() -> u64 {
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Whether the human-readable event dump is enabled
/// (`MUNIN_OBS_DUMP=1`, or the legacy alias `MUNIN_PROTO_TRACE=1`).
pub fn dump_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        let on = |k: &str| std::env::var(k).map(|v| v == "1").unwrap_or(false);
        on("MUNIN_OBS_DUMP") || on("MUNIN_PROTO_TRACE")
    })
}

/// The typed protocol events the flight recorder captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A read access fault entered the fault protocol.
    ReadFaultBegin,
    /// The read fault resolved (`dur_ns` = virtual service time).
    ReadFaultEnd,
    /// A write access fault entered the fault protocol.
    WriteFaultBegin,
    /// The write fault resolved (`dur_ns` = virtual service time).
    WriteFaultEnd,
    /// An `ObjectFetch` request was sent to the probable owner.
    FetchSend,
    /// This node served an `ObjectFetch` with `ObjectData`.
    FetchServe,
    /// An update-bearing transmission was assigned a per-(src,dst) sequence
    /// number and sent (`peer` = destination, `seq` = stream number).
    UpdateSend,
    /// An in-sequence update transmission was applied
    /// (`peer` = source, `seq` = stream number).
    UpdateInstall,
    /// An update transmission arrived out of sequence and was deferred.
    UpdateDefer,
    /// The adaptive relay sent a payload direct-to-destination instead of
    /// through the barrier-relay carrier because it exceeded the
    /// `MUNIN_RELAY_MAX_BYTES` threshold (`peer` = destination, `seq` = the
    /// payload's modelled byte size — the *why* of the routing decision).
    RelayBypass,
    /// This node, as the receiving owner of an owner-cooperative relay
    /// bundle, re-fanned the updates to another copyset member
    /// (`peer` = the re-fan destination, `object` = the bundle's first
    /// object).
    OwnerRefan,
    /// A lock acquire began waiting (local queue or remote request).
    LockRequest,
    /// The lock was granted (`dur_ns` = virtual acquisition wait).
    LockGrant,
    /// The user thread arrived at a barrier.
    BarrierArrive,
    /// The barrier released (`dur_ns` = virtual barrier wait).
    BarrierRelease,
    /// The reliability layer retransmitted an unacked message.
    Retransmit,
    /// A reliability tick timer fired.
    TimerFire,
    /// The stall watchdog expired on a blocked wait.
    Stall,
    /// The failure detector marked a peer suspect (`peer` = the suspect).
    PeerSuspect,
    /// A peer was confirmed dead (`peer` = the dead node; `dur_ns` = wall
    /// time from last-heard to confirmation, i.e. the detection latency).
    PeerDead,
    /// Degraded-mode recovery re-homed (or adopted) an orphaned object
    /// (`object` = the orphan, `peer` = the dead former owner).
    OwnershipRecovered,
    /// Degraded-mode recovery pruned a dead node from a directory entry's
    /// copyset (`object` = the entry, `peer` = the pruned node).
    CopysetPruned,
    /// Free-form protocol-trace note (dump mode only).
    Note,
}

impl EventKind {
    /// Stable snake-case label (trace export, dump lines, stall tails).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::ReadFaultBegin => "read_fault_begin",
            EventKind::ReadFaultEnd => "read_fault_end",
            EventKind::WriteFaultBegin => "write_fault_begin",
            EventKind::WriteFaultEnd => "write_fault_end",
            EventKind::FetchSend => "fetch_send",
            EventKind::FetchServe => "fetch_serve",
            EventKind::UpdateSend => "update_send",
            EventKind::UpdateInstall => "update_install",
            EventKind::UpdateDefer => "update_defer",
            EventKind::RelayBypass => "relay_bypass",
            EventKind::OwnerRefan => "owner_refan",
            EventKind::LockRequest => "lock_request",
            EventKind::LockGrant => "lock_grant",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::BarrierRelease => "barrier_release",
            EventKind::Retransmit => "retransmit",
            EventKind::TimerFire => "timer_fire",
            EventKind::Stall => "stall",
            EventKind::PeerSuspect => "peer_suspect",
            EventKind::PeerDead => "peer_dead",
            EventKind::OwnershipRecovered => "ownership_recovered",
            EventKind::CopysetPruned => "copyset_pruned",
            EventKind::Note => "note",
        }
    }

    /// Whether the event closes a span: it carries the operation's duration
    /// in `dur_ns` and is exported as a slice rather than an instant.
    pub fn ends_span(self) -> bool {
        matches!(
            self,
            EventKind::ReadFaultEnd
                | EventKind::WriteFaultEnd
                | EventKind::LockGrant
                | EventKind::BarrierRelease
        )
    }
}

/// One flight-recorder entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsEvent {
    /// What happened.
    pub kind: EventKind,
    /// Node-local virtual time at the event, nanoseconds.
    pub t_virt_ns: u64,
    /// Wall-clock nanoseconds since the process-wide recording epoch.
    pub t_wall_ns: u64,
    /// Virtual duration for span-end events ([`EventKind::ends_span`]);
    /// zero for instants.
    pub dur_ns: u64,
    /// The shared object involved, when there is one.
    pub object: Option<ObjectId>,
    /// The lock or barrier id involved, when there is one.
    pub sync_id: Option<u32>,
    /// The remote peer involved (destination of a send, source of an
    /// install/serve).
    pub peer: Option<NodeId>,
    /// Update-stream sequence number tying an `UpdateSend` to its
    /// `UpdateInstall` (the Perfetto flow id).
    pub seq: Option<u64>,
    /// Free-form text ([`EventKind::Note`] events).
    pub note: Option<String>,
}

impl ObsEvent {
    fn new(kind: EventKind, t_virt_ns: u64) -> Self {
        ObsEvent {
            kind,
            t_virt_ns,
            t_wall_ns: wall_ns(),
            dur_ns: 0,
            object: None,
            sync_id: None,
            peer: None,
            seq: None,
            note: None,
        }
    }

    /// Renders the event compactly (stall tails, dump mode):
    /// `t=1240ns lock_grant sync=3 dur=1.2us`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("t={}ns {}", self.t_virt_ns, self.kind.label());
        if let Some(o) = self.object {
            let _ = write!(s, " obj={}", o.as_u32());
        }
        if let Some(id) = self.sync_id {
            let _ = write!(s, " sync={id}");
        }
        if let Some(p) = self.peer {
            let _ = write!(s, " peer={}", p.as_usize());
        }
        if let Some(q) = self.seq {
            let _ = write!(s, " seq={q}");
        }
        if self.dur_ns > 0 {
            let _ = write!(s, " dur={}", fmt_ns(self.dur_ns));
        }
        if let Some(n) = &self.note {
            let _ = write!(s, " {n}");
        }
        s
    }
}

/// Mutable recorder state, behind one leaf mutex.
#[derive(Debug)]
struct Inner {
    ring: Ring<ObsEvent>,
    /// Blocking-wait histograms keyed by wait kind (`WaitOp::kind()` names:
    /// `fetch`, `lock_acquire`, `barrier`, `update_acks`, ...), in virtual
    /// nanoseconds.
    waits: BTreeMap<&'static str, LatencyHist>,
    /// Fault service-time histograms keyed by annotation class keyword
    /// (`write_shared`, `migratory`, ...), in virtual nanoseconds.
    fault_service: BTreeMap<&'static str, LatencyHist>,
}

/// The per-node flight recorder and latency-histogram store.
///
/// A pure leaf lock: see the module docs for the invariants that keep
/// recording invisible to the protocol.
#[derive(Debug)]
pub struct Recorder {
    node: NodeId,
    /// Ring capacity; 0 disables event capture (histograms stay on).
    capacity: usize,
    /// Whether every recorded event is also printed to stderr.
    dump: bool,
    inner: SpinMutex<Inner>,
}

impl Recorder {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(node: NodeId, capacity: usize, dump: bool) -> Self {
        Recorder {
            node,
            capacity,
            dump,
            inner: SpinMutex::new(Inner {
                ring: Ring::new(capacity),
                waits: BTreeMap::new(),
                fault_service: BTreeMap::new(),
            }),
        }
    }

    /// Ring capacity (0 = event capture disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether free-form [`EventKind::Note`] events are wanted at all. The
    /// protocol-trace macro checks this before paying `format!`.
    pub fn notes_enabled(&self) -> bool {
        self.dump
    }

    /// Records one typed event. `fill` runs only when capture or dump is on,
    /// so call sites pay nothing but a branch when both are off. Public for
    /// the runtime's instrumentation sites and the `micro_obs` benchmark.
    pub fn record(&self, t_virt_ns: u64, kind: EventKind, fill: impl FnOnce(&mut ObsEvent)) {
        if self.capacity == 0 && !self.dump {
            return;
        }
        let mut ev = ObsEvent::new(kind, t_virt_ns);
        fill(&mut ev);
        if self.dump {
            eprintln!("[{:?}] {}", self.node, ev.render());
        }
        if self.capacity > 0 {
            self.inner.lock().ring.push(ev);
        }
    }

    /// Records a free-form protocol-trace note (dump mode only — the ring
    /// never holds notes unless the dump is on, keeping the default-mode
    /// ring free of allocated strings).
    pub(crate) fn note(&self, t_virt_ns: u64, text: String) {
        if !self.dump {
            return;
        }
        self.record(t_virt_ns, EventKind::Note, |ev| ev.note = Some(text));
    }

    /// Records a blocking-wait sample (virtual ns) under the wait kind.
    pub fn record_wait(&self, kind: &'static str, ns: u64) {
        self.inner.lock().waits.entry(kind).or_default().record(ns);
    }

    /// Records a fault service-time sample (virtual ns) under the faulting
    /// object's annotation class.
    pub fn record_fault_service(&self, class: &'static str, ns: u64) {
        self.inner
            .lock()
            .fault_service
            .entry(class)
            .or_default()
            .record(ns);
    }

    /// The most recent `n` events, rendered (stall forensics).
    pub fn tail(&self, n: usize) -> Vec<String> {
        self.inner
            .lock()
            .ring
            .last_n(n)
            .into_iter()
            .map(|ev| ev.render())
            .collect()
    }

    /// Copies out everything the recorder holds.
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.inner.lock();
        ObsSnapshot {
            node: self.node.as_usize(),
            events: inner.ring.iter().cloned().collect(),
            events_recorded: inner.ring.total_pushed(),
            events_dropped: inner.ring.dropped(),
            waits: inner.waits.clone(),
            fault_service: inner.fault_service.clone(),
        }
    }
}

/// A point-in-time copy of one node's recorder: the held events (oldest →
/// newest) and the wait/fault-service histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// The node index the snapshot came from.
    pub node: usize,
    /// Held flight-recorder events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Total events recorded over the node's lifetime (≥ `events.len()`).
    pub events_recorded: u64,
    /// Events evicted from the ring (`events_recorded − events.len()`).
    pub events_dropped: u64,
    /// Blocking-wait histograms by wait kind, virtual nanoseconds.
    pub waits: BTreeMap<&'static str, LatencyHist>,
    /// Fault service-time histograms by annotation class, virtual
    /// nanoseconds.
    pub fault_service: BTreeMap<&'static str, LatencyHist>,
}

impl ObsSnapshot {
    /// Folds another node's histograms into this one (events are per-node
    /// and are not merged).
    pub fn merge_hists(&mut self, other: &ObsSnapshot) {
        for (k, h) in &other.waits {
            self.waits.entry(k).or_default().merge(h);
        }
        for (k, h) in &other.fault_service {
            self.fault_service.entry(k).or_default().merge(h);
        }
    }

    /// The most recent `n` events, rendered.
    pub fn tail(&self, n: usize) -> Vec<String> {
        self.events
            .iter()
            .skip(self.events.len().saturating_sub(n))
            .map(|ev| ev.render())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_captures_and_snapshots_events() {
        let rec = Recorder::new(NodeId::new(2), 8, false);
        rec.record(100, EventKind::LockRequest, |ev| ev.sync_id = Some(3));
        rec.record(400, EventKind::LockGrant, |ev| {
            ev.sync_id = Some(3);
            ev.dur_ns = 300;
        });
        rec.record_wait("lock_acquire", 300);
        let snap = rec.snapshot();
        assert_eq!(snap.node, 2);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::LockRequest);
        assert_eq!(snap.events[1].dur_ns, 300);
        assert_eq!(snap.events_dropped, 0);
        assert_eq!(snap.waits["lock_acquire"].count(), 1);
    }

    #[test]
    fn zero_capacity_disables_events_but_not_histograms() {
        let rec = Recorder::new(NodeId::new(0), 0, false);
        rec.record(1, EventKind::TimerFire, |_| {});
        rec.record_wait("fetch", 500);
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        // The closure never ran, so nothing was even counted.
        assert_eq!(snap.events_recorded, 0);
        assert_eq!(snap.waits["fetch"].count(), 1);
    }

    #[test]
    fn ring_wraparound_reports_dropped_and_tail_is_newest() {
        let rec = Recorder::new(NodeId::new(1), 4, false);
        for i in 0..10u64 {
            rec.record(i * 10, EventKind::TimerFire, |_| {});
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events_recorded, 10);
        assert_eq!(snap.events_dropped, 6);
        assert_eq!(snap.events[0].t_virt_ns, 60);
        let tail = rec.tail(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[1].starts_with("t=90ns timer_fire"));
    }

    #[test]
    fn merge_hists_aggregates_across_nodes() {
        let a = Recorder::new(NodeId::new(0), 0, false);
        let b = Recorder::new(NodeId::new(1), 0, false);
        a.record_wait("barrier", 1_000);
        b.record_wait("barrier", 3_000);
        b.record_fault_service("write_shared", 500);
        let mut total = a.snapshot();
        total.merge_hists(&b.snapshot());
        assert_eq!(total.waits["barrier"].count(), 2);
        assert_eq!(total.waits["barrier"].max_ns(), 3_000);
        assert_eq!(total.fault_service["write_shared"].count(), 1);
    }

    #[test]
    fn render_includes_context_fields() {
        let rec = Recorder::new(NodeId::new(0), 4, false);
        rec.record(250, EventKind::UpdateSend, |ev| {
            ev.peer = Some(NodeId::new(3));
            ev.seq = Some(7);
        });
        let tail = rec.tail(1);
        assert_eq!(tail[0], "t=250ns update_send peer=3 seq=7");
    }
}
