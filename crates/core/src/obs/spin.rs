//! A minimal spin lock for the recorder's hot path.
//!
//! The flight recorder's critical sections are a handful of nanoseconds — a
//! ring-slot copy or a histogram bucket increment — and at most two threads
//! (a node's worker and its protocol server) ever contend for one node's
//! recorder. In that regime a compare-and-swap spin lock beats a general
//! mutex: the uncontended path is one CAS plus one store, with no poison
//! bookkeeping and no risk of a futex round trip parking a thread that
//! would have been admitted nanoseconds later. Do not use this for critical
//! sections that can block or run long; it never parks, so a long hold
//! burns a core on the other side.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spin lock guarding a value.
pub(crate) struct SpinMutex<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: the lock provides the same exclusion guarantee as a mutex — the
// guard's lifetime brackets all access to `value`.
unsafe impl<T: Send> Sync for SpinMutex<T> {}

impl<T> SpinMutex<T> {
    /// Creates an unlocked spin lock holding `value`.
    pub(crate) const fn new(value: T) -> Self {
        SpinMutex {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until it is free.
    ///
    /// After a short bounded spin the waiter yields to the scheduler: if the
    /// holder was preempted mid-critical-section (likely on an oversubscribed
    /// or single-core host), spinning further would burn the rest of this
    /// thread's quantum without letting the holder finish.
    #[inline]
    pub(crate) fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Read-only wait loop keeps the cache line shared between
            // spinners instead of ping-ponging it with failed CASes.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins >= 64 {
                    spins = 0;
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        SpinGuard { lock: self }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SpinMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Best-effort: render without taking the lock only if it is free.
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // Safety: we hold the lock.
            let r = f
                .debug_struct("SpinMutex")
                .field("value", unsafe { &*self.value.get() })
                .finish();
            self.locked.store(false, Ordering::Release);
            r
        } else {
            f.debug_struct("SpinMutex")
                .field("value", &"<locked>")
                .finish()
        }
    }
}

/// RAII guard returned by [`SpinMutex::lock`].
pub(crate) struct SpinGuard<'a, T> {
    lock: &'a SpinMutex<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: the guard exists iff the lock is held.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard exists iff the lock is held exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclusive_access_across_threads() {
        let lock = Arc::new(SpinMutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn debug_renders_value_when_free_and_placeholder_when_held() {
        let lock = SpinMutex::new(7);
        assert!(format!("{lock:?}").contains('7'));
        let guard = lock.lock();
        assert!(format!("{lock:?}").contains("<locked>"));
        drop(guard);
        assert!(format!("{lock:?}").contains('7'));
    }
}
