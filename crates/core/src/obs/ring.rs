//! Fixed-capacity overwrite ring buffer for the flight recorder.
//!
//! Push never allocates once the ring is full: the oldest entry is
//! overwritten in place. The total number of pushes is tracked so snapshots
//! can report how many events were dropped.

/// A fixed-capacity ring that overwrites its oldest entry when full.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index the next push writes to once the ring has wrapped.
    next: usize,
    cap: usize,
    /// Total pushes over the ring's lifetime (≥ `len`).
    total: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `cap` entries (`cap == 0` ⇒ every push
    /// is dropped).
    pub fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap.min(4096)),
            next: 0,
            cap,
            total: 0,
        }
    }

    /// Appends an entry, overwriting the oldest once at capacity.
    pub fn push(&mut self, item: T) {
        if self.cap == 0 {
            self.total += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.next] = item;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total pushes over the lifetime, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Entries evicted (or rejected by a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates the held entries oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.next..]
            .iter()
            .chain(self.buf[..self.next].iter())
    }

    /// The most recent `n` entries, oldest → newest.
    pub fn last_n(&self, n: usize) -> Vec<&T> {
        let len = self.buf.len();
        self.iter().skip(len.saturating_sub(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_preserving_order() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(r.dropped(), 0);
        // Two more pushes evict the two oldest.
        r.push(4);
        r.push(5);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 6);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn wraps_repeatedly_without_growing() {
        let mut r = Ring::new(3);
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![97, 98, 99]);
        assert_eq!(r.dropped(), 97);
    }

    #[test]
    fn last_n_returns_newest_in_order() {
        let mut r = Ring::new(5);
        for i in 0..8 {
            r.push(i);
        }
        assert_eq!(
            r.last_n(3).into_iter().copied().collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        // Asking for more than held returns everything held.
        assert_eq!(
            r.last_n(99).into_iter().copied().collect::<Vec<_>>(),
            vec![3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 2);
        assert_eq!(r.dropped(), 2);
    }
}
