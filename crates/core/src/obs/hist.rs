//! Log-bucketed latency histograms.
//!
//! Fixed layout, no external deps: 64 buckets whose upper bounds grow by
//! ×1.25 from a 64 ns base, spanning ~64 ns to ~80 ms of virtual time —
//! comfortably covering everything from a local fault check to a
//! cross-cluster barrier wait under the 1991 cost model. The last bucket is
//! the overflow bucket; the exact maximum is tracked separately so the tail
//! percentile estimate never exceeds an observed value.
//!
//! Recording is two array reads and an increment after a `partition_point`
//! over 64 precomputed bounds; merging is element-wise addition, so per-node
//! histograms aggregate into per-run ones without loss.

use std::sync::OnceLock;

/// Number of buckets (the last one is the overflow bucket).
pub const BUCKETS: usize = 64;

/// Lower edge of the first bucket, nanoseconds.
const BASE_NS: f64 = 64.0;

/// Geometric growth factor between bucket upper bounds.
const GROWTH: f64 = 1.25;

/// Upper bounds (inclusive) of each bucket in nanoseconds:
/// `bounds[i] = 64 × 1.25^i`, rounded. Computed once; `f64::powi` is exact
/// enough to be deterministic across runs of the same binary.
fn bounds() -> &'static [u64; BUCKETS] {
    static BOUNDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0u64; BUCKETS];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = (BASE_NS * GROWTH.powi(i as i32)).round() as u64;
        }
        b
    })
}

/// Bucket index for a nanosecond value: first bucket whose upper bound
/// contains it, clamped to the overflow bucket.
fn bucket_of(ns: u64) -> usize {
    bounds().partition_point(|&b| b < ns).min(BUCKETS - 1)
}

/// A log-bucketed latency histogram over nanosecond values.
///
/// Plain data: cloning yields an independent snapshot, and snapshots from
/// different nodes [`merge`](LatencyHist::merge) losslessly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest sample observed, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by linear
    /// interpolation within the bucket holding the target rank. The overflow
    /// bucket interpolates toward the exact observed maximum, so estimates
    /// never exceed `max_ns`. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate within bucket i by the fraction of its samples
                // below the target rank.
                let lo = if i == 0 { 0 } else { bounds()[i - 1] };
                let hi = if i == BUCKETS - 1 {
                    self.max.max(lo)
                } else {
                    bounds()[i].min(self.max)
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return (est.round() as u64).min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate, nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Raw bucket counts (test/diagnostic access).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

/// Renders a nanosecond latency compactly (`318ns`, `4.1us`, `2.5ms`, `1.2s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_grow_geometrically_and_cover_the_target_span() {
        let b = bounds();
        assert_eq!(b[0], 64);
        for w in b.windows(2) {
            assert!(w[1] > w[0], "bounds must be strictly increasing");
        }
        // 64ns × 1.25^63 ≈ 78ms: the span covers sub-µs faults through
        // tens-of-ms barrier waits.
        assert!(
            b[BUCKETS - 1] > 50_000_000,
            "span too small: {}",
            b[BUCKETS - 1]
        );
        assert!(
            b[BUCKETS - 1] < 200_000_000,
            "span too large: {}",
            b[BUCKETS - 1]
        );
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        // A value equal to a bucket's upper bound lands in that bucket; one
        // more lands in the next.
        let b = bounds();
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(64), 0);
        assert_eq!(bucket_of(65), 1);
        assert_eq!(bucket_of(b[10]), 10);
        assert_eq!(bucket_of(b[10] + 1), 11);
        // Beyond the last bound clamps to the overflow bucket.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn count_sum_max_track_samples() {
        let mut h = LatencyHist::new();
        for ns in [100, 200, 400, 10_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 10_700);
        assert_eq!(h.max_ns(), 10_000);
        assert_eq!(h.mean_ns(), 2_675);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for ns in [100, 1_000, 50_000] {
            a.record(ns);
        }
        for ns in [100, 2_000_000] {
            b.record(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum_ns(), a.sum_ns() + b.sum_ns());
        assert_eq!(merged.max_ns(), 2_000_000);
        // Bucket-by-bucket sum.
        for i in 0..BUCKETS {
            assert_eq!(
                merged.bucket_counts()[i],
                a.bucket_counts()[i] + b.bucket_counts()[i]
            );
        }
        // Quantiles of the merged histogram reflect both inputs.
        assert!(merged.quantile_ns(1.0) == 2_000_000);
    }

    #[test]
    fn quantiles_interpolate_and_never_exceed_max() {
        let mut h = LatencyHist::new();
        // 100 samples spread across two buckets.
        for _ in 0..50 {
            h.record(100);
        }
        for _ in 0..50 {
            h.record(1_000);
        }
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        // p50 falls in the bucket containing 100ns, p99 in the 1000ns one.
        assert!(p50 <= 125, "p50 {p50} should sit in the ~100ns bucket");
        assert!(
            (800..=1_000).contains(&p99),
            "p99 {p99} should approach 1000ns"
        );
        assert!(h.quantile_ns(1.0) <= h.max_ns());
        assert_eq!(h.quantile_ns(1.0), 1_000);
    }

    #[test]
    fn overflow_bucket_interpolates_toward_exact_max() {
        let mut h = LatencyHist::new();
        let huge = 10_000_000_000; // 10 s — beyond the last bound.
        h.record(huge);
        assert_eq!(h.max_ns(), huge);
        assert_eq!(h.quantile_ns(1.0), huge);
        assert!(h.p50_ns() <= huge);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(318), "318ns");
        assert_eq!(fmt_ns(4_100), "4.1us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
