//! The data object directory.
//!
//! "The data object directory within each Munin node maintains information
//! about the state of the global shared memory. This directory is a hash
//! table that maps an address in the shared address space to the entry that
//! describes the object located at that address." (Section 3.2.)
//!
//! Entries carry the protocol parameter bits, the dynamic object state, the
//! copyset, the probable owner, the home node, and an optional link to the
//! synchronization object that protects the object.

use std::collections::HashMap;

use munin_sim::NodeId;

use crate::annotation::{ProtocolParams, SharingAnnotation};
use crate::copyset::CopySet;
use crate::object::ObjectId;
use crate::segment::SharedDataTable;
use crate::sync::LockId;

/// Local access rights for an object — the simulated analogue of the
/// virtual-memory protection bits the prototype manipulates through the V
/// kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AccessRights {
    /// No valid local copy (any access faults).
    #[default]
    Invalid,
    /// Valid read-only copy (writes fault).
    Read,
    /// Valid writable copy.
    ReadWrite,
}

impl AccessRights {
    /// Whether a read is allowed without faulting.
    pub fn allows_read(self) -> bool {
        !matches!(self, AccessRights::Invalid)
    }

    /// Whether a write is allowed without faulting.
    pub fn allows_write(self) -> bool {
        matches!(self, AccessRights::ReadWrite)
    }
}

/// Dynamic state bits of a directory entry ("characterize the dynamic state
/// of the object, e.g. whether the local copy is valid, writable, or modified
/// since the last flush, and whether a remote copy of the object exists").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectState {
    /// Local access rights (valid / writable).
    pub rights: AccessRights,
    /// Modified locally since the last DUQ flush.
    pub dirty: bool,
    /// Whether this node believes it is the current owner of the object.
    pub owned: bool,
    /// Whether the stable (producer-consumer) copyset has been determined.
    pub copyset_fixed: bool,
    /// Entry is mid-transition (a fault is being serviced by the local user
    /// thread); incoming requests for it are deferred — the moral equivalent
    /// of the paper's per-entry access-control semaphore.
    pub busy: bool,
    /// The local user thread holds this entry's access rights for an
    /// in-progress memory access (the check-then-act window between the
    /// rights check and the actual read/write of segment memory). Unlike
    /// `busy`, a pinned entry is released without any intervening blocking,
    /// so ownership-transferring fetches and invalidations can simply be
    /// deferred until the access completes — this closes the lost-update race
    /// where a fetch was served between `ensure_write` and the write.
    pub pinned: bool,
}

/// One entry of the data object directory.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// The object described by this entry.
    pub object: ObjectId,
    /// Start offset of the object within the shared segment (the hash key in
    /// the paper; kept for address lookups).
    pub start: usize,
    /// Size of the object in bytes.
    pub size: usize,
    /// The sharing annotation currently in force for this object.
    pub annotation: SharingAnnotation,
    /// The protocol parameter bits derived from the annotation.
    pub params: ProtocolParams,
    /// Dynamic state bits.
    pub state: ObjectState,
    /// Which remote processors have copies that must be updated/invalidated.
    pub copyset: CopySet,
    /// Best guess at the current owner, used by the ownership-based
    /// protocols to find the owner with a minimum of forwarding.
    pub probable_owner: NodeId,
    /// The node at which the object was created (node of last resort).
    pub home: NodeId,
    /// Synchronization object that protects this object, if the programmer
    /// provided the association (`AssociateDataAndSynch`).
    pub synchq: Option<LockId>,
}

impl DirEntry {
    /// Changes the annotation (and derived parameters) of the entry, used by
    /// `ChangeAnnotation`.
    pub fn set_annotation(&mut self, annotation: SharingAnnotation) {
        self.annotation = annotation;
        self.params = ProtocolParams::for_annotation(annotation);
    }
}

/// A node's data object directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: Vec<DirEntry>,
    by_start: HashMap<usize, ObjectId>,
}

impl Directory {
    /// Builds a directory from the shared data description table, as the root
    /// node does at startup. `home` is the home node recorded for every
    /// statically allocated object (the root node), and
    /// `annotation_override`, when set, forces every writable variable to a
    /// single annotation (used to reproduce Table 6).
    pub fn from_table(
        table: &SharedDataTable,
        home: NodeId,
        annotation_override: Option<SharingAnnotation>,
    ) -> Self {
        let mut dir = Directory::default();
        for obj in table.objects() {
            let declared = table.annotation_of(obj.id);
            let annotation = match annotation_override {
                Some(forced)
                    if declared != SharingAnnotation::ReadOnly
                        || forced_applies_to_read_only(forced) =>
                {
                    forced
                }
                _ => declared,
            };
            let params = ProtocolParams::for_annotation(annotation);
            dir.by_start.insert(obj.segment_offset, obj.id);
            dir.entries.push(DirEntry {
                object: obj.id,
                start: obj.segment_offset,
                size: obj.size,
                annotation,
                params,
                state: ObjectState::default(),
                copyset: CopySet::EMPTY,
                probable_owner: home,
                home,
                synchq: None,
            });
        }
        dir
    }

    /// Entry for an object.
    pub fn entry(&self, object: ObjectId) -> &DirEntry {
        &self.entries[object.as_usize()]
    }

    /// Mutable entry for an object.
    pub fn entry_mut(&mut self, object: ObjectId) -> &mut DirEntry {
        &mut self.entries[object.as_usize()]
    }

    /// Looks an entry up by the start address of its object, as the paper's
    /// hash table does.
    pub fn lookup_start(&self, start: usize) -> Option<&DirEntry> {
        self.by_start.get(&start).map(|id| self.entry(*id))
    }

    /// All entries.
    pub fn entries(&self) -> &[DirEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The Table 6 experiment forces *all* shared variables to a single protocol.
/// Read-only inputs are also forced (that is precisely why the multi-protocol
/// version wins for Matrix Multiply: `read_only`/`result` sped up loading the
/// inputs and purging the output compared to treating everything uniformly).
fn forced_applies_to_read_only(_forced: SharingAnnotation) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SharedDataTable;

    fn table() -> SharedDataTable {
        let mut t = SharedDataTable::new(64);
        t.declare("ro", SharingAnnotation::ReadOnly, 4, 4, false);
        t.declare("ws", SharingAnnotation::WriteShared, 4, 64, false);
        t
    }

    #[test]
    fn from_table_creates_one_entry_per_object() {
        let t = table();
        let dir = Directory::from_table(&t, NodeId::new(0), None);
        assert_eq!(dir.len(), t.object_count());
        assert!(!dir.is_empty());
        let first = dir.entry(ObjectId::new(0));
        assert_eq!(first.annotation, SharingAnnotation::ReadOnly);
        assert_eq!(first.home, NodeId::new(0));
        assert_eq!(first.probable_owner, NodeId::new(0));
        assert_eq!(first.state.rights, AccessRights::Invalid);
    }

    #[test]
    fn lookup_by_start_address() {
        let t = table();
        let dir = Directory::from_table(&t, NodeId::new(0), None);
        let ws_var = t.var_by_name("ws").unwrap();
        let entry = dir.lookup_start(ws_var.segment_offset).unwrap();
        assert_eq!(entry.annotation, SharingAnnotation::WriteShared);
        assert!(dir.lookup_start(7).is_none());
    }

    #[test]
    fn annotation_override_forces_protocol() {
        let t = table();
        let dir = Directory::from_table(&t, NodeId::new(0), Some(SharingAnnotation::Conventional));
        for e in dir.entries() {
            assert_eq!(e.annotation, SharingAnnotation::Conventional);
        }
    }

    #[test]
    fn set_annotation_rederives_params() {
        let t = table();
        let mut dir = Directory::from_table(&t, NodeId::new(0), None);
        let e = dir.entry_mut(ObjectId::new(0));
        e.set_annotation(SharingAnnotation::Migratory);
        assert!(e.params.uses_invalidate());
        assert!(!e.params.allows_replicas());
    }

    #[test]
    fn access_rights_semantics() {
        assert!(!AccessRights::Invalid.allows_read());
        assert!(AccessRights::Read.allows_read());
        assert!(!AccessRights::Read.allows_write());
        assert!(AccessRights::ReadWrite.allows_write());
    }
}
