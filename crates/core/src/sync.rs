//! Synchronization objects: distributed queue-based locks and barriers.
//!
//! "Synchronization objects are accessed in a fundamentally different way
//! than data objects, so Munin does not provide synchronization through
//! shared memory. Rather each Munin node interacts with the other nodes to
//! provide a high-level synchronization service." (Section 3.4.)
//!
//! This module holds the per-node *synchronization object directory*: the
//! local view of every lock and barrier. The message handling that drives the
//! distributed protocol lives in [`crate::runtime`]; the state transitions are
//! kept here so they can be unit-tested in isolation.

use std::collections::VecDeque;

use munin_sim::NodeId;

use crate::object::ObjectId;

/// Identifier of a distributed lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// Identifier of a barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BarrierId(pub u32);

/// Per-node state of one distributed lock.
///
/// Ownership of a lock (the right to grant it) moves between nodes; the queue
/// of waiting requesters travels with ownership, so that "a release/acquire
/// pair can be performed with a single message exchange if the acquire is
/// pending when the release occurs". Nodes that are not the owner keep only a
/// probable-owner hint used to forward requests.
#[derive(Clone, Debug)]
pub struct LockState {
    /// Whether this node currently owns the lock token (holds it or is the
    /// node at which the free lock resides).
    pub owned: bool,
    /// Whether the local user thread currently holds the lock.
    pub held: bool,
    /// Requesters waiting for the lock (meaningful only at the owner).
    pub queue: VecDeque<NodeId>,
    /// Best guess at the current owner, used to forward acquire requests.
    pub probable_owner: NodeId,
    /// Data objects associated with the lock via `AssociateDataAndSynch`;
    /// their contents are piggybacked on lock grants.
    pub associated: Vec<ObjectId>,
}

impl LockState {
    /// Creates the initial state of a lock created at `home` as seen from a
    /// node: the home node owns it, everyone else forwards there.
    pub fn new(home: NodeId, local: NodeId) -> Self {
        LockState {
            owned: home == local,
            held: false,
            queue: VecDeque::new(),
            probable_owner: home,
            associated: Vec::new(),
        }
    }

    /// Attempts a purely local acquire. Returns `true` if the lock was free
    /// and owned locally (fast path, no messages needed).
    pub fn try_local_acquire(&mut self) -> bool {
        if self.owned && !self.held && self.queue.is_empty() {
            self.held = true;
            true
        } else {
            false
        }
    }

    /// Records the receipt of lock ownership (a `LockGrant`), together with
    /// the waiter queue that travels with it. The local thread becomes the
    /// holder.
    pub fn receive_grant(&mut self, queue: impl IntoIterator<Item = NodeId>, local: NodeId) {
        self.owned = true;
        self.held = true;
        self.queue = queue.into_iter().collect();
        self.probable_owner = local;
    }

    /// Handles a remote acquire request arriving at this node.
    ///
    /// Returns what the runtime must do with it. Queueing is idempotent (a
    /// requester already waiting is not queued twice): the crash-recovery
    /// path re-sends an acquire towards the lock home when a peer on the
    /// forwarding chain dies, and the original request may still be alive.
    pub fn handle_remote_acquire(&mut self, requester: NodeId) -> RemoteAcquireAction {
        if !self.owned {
            return RemoteAcquireAction::Forward(self.probable_owner);
        }
        if !self.held && self.queue.is_empty() {
            // Free at this node: hand ownership over immediately.
            self.owned = false;
            self.probable_owner = requester;
            RemoteAcquireAction::Grant
        } else {
            if !self.queue.contains(&requester) {
                self.queue.push_back(requester);
            }
            RemoteAcquireAction::Queued
        }
    }

    /// Crash recovery at the lock's *home* node: the peer last known to hold
    /// the token died, so the home mints a fresh free token (the distributed
    /// queue that travelled with the dead token is gone; orphaned waiters
    /// re-send their acquires towards the home). Returns `true` when a token
    /// was actually regenerated.
    pub fn regenerate_token(&mut self, local: NodeId) -> bool {
        if self.owned {
            return false;
        }
        self.owned = true;
        self.held = false;
        self.queue.clear();
        self.probable_owner = local;
        true
    }

    /// Removes a dead node from the waiter queue, and redirects a
    /// probable-owner hint that points at the dead node to `fallback` (the
    /// lock home) so later forwards do not chase a corpse.
    pub fn prune_dead(&mut self, dead: NodeId, fallback: NodeId) {
        self.queue.retain(|n| *n != dead);
        if self.probable_owner == dead && !self.owned {
            self.probable_owner = fallback;
        }
    }

    /// Releases the lock locally. If waiters are queued, ownership (and the
    /// remaining queue) must be handed to the head waiter; the state is
    /// updated accordingly and the grant target is returned.
    ///
    /// Returns `None` if no one is waiting (the lock stays here, free).
    pub fn release(&mut self) -> Option<(NodeId, Vec<NodeId>)> {
        self.held = false;
        if let Some(next) = self.queue.pop_front() {
            let rest: Vec<NodeId> = self.queue.drain(..).collect();
            self.owned = false;
            self.probable_owner = next;
            Some((next, rest))
        } else {
            None
        }
    }
}

/// What a node must do with a remote lock-acquire request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteAcquireAction {
    /// Not the owner: forward the request to this node.
    Forward(NodeId),
    /// The lock was free here: grant ownership to the requester.
    Grant,
    /// The lock is busy: the requester has been queued.
    Queued,
}

/// Per-node state of one barrier.
///
/// Barriers are owner-collected: every arriving thread sends a message to the
/// owner node (the root for statically created barriers) and blocks; when the
/// owner has received the expected number of arrivals it releases everyone.
#[derive(Clone, Debug)]
pub struct BarrierState {
    /// The node that collects arrivals.
    pub owner: NodeId,
    /// Number of threads that must arrive before the barrier opens.
    pub parties: usize,
    /// Nodes that have arrived in the current episode (meaningful at the
    /// owner only).
    pub arrived: Vec<NodeId>,
    /// How many times the barrier has opened.
    pub generation: u64,
    /// Bitmap of nodes confirmed dead and excluded from the arrival count
    /// (crash recovery at the owner; each excluded node lowers the open
    /// threshold by one).
    pub excluded: u64,
}

impl BarrierState {
    /// Creates the barrier state.
    pub fn new(owner: NodeId, parties: usize) -> Self {
        BarrierState {
            owner,
            parties,
            arrived: Vec::new(),
            generation: 0,
            excluded: 0,
        }
    }

    /// Arrivals required to open, after dead-node exclusions. Never below
    /// one: a barrier opens on an arrival, not on an exclusion alone.
    fn effective_parties(&self) -> usize {
        self.parties
            .saturating_sub(self.excluded.count_ones() as usize)
            .max(1)
    }

    /// Records an arrival at the owner. Returns the list of nodes to release
    /// when this arrival completes the barrier, or `None` otherwise.
    pub fn arrive(&mut self, from: NodeId) -> Option<Vec<NodeId>> {
        self.arrived.push(from);
        if self.arrived.len() >= self.effective_parties() {
            self.generation += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }

    /// Crash recovery at the owner: excludes a dead node from the arrival
    /// count (dropping any arrival it already recorded this episode — its
    /// release could not reach it anyway). Returns the waiters to release
    /// when the exclusion leaves every surviving party already arrived.
    pub fn exclude(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        let bit = 1u64 << (node.as_usize() % 64);
        if self.excluded & bit != 0 {
            return None;
        }
        self.excluded |= bit;
        self.arrived.retain(|n| *n != node);
        if !self.arrived.is_empty() && self.arrived.len() >= self.effective_parties() {
            self.generation += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }
}

/// The synchronization object directory of one node: the analogue of the data
/// object directory for locks and barriers.
#[derive(Clone, Debug, Default)]
pub struct SyncDirectory {
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
}

impl SyncDirectory {
    /// Builds the directory for a node, given the statically created locks
    /// and barriers (all homed at the root in the prototype).
    pub fn new(local: NodeId, lock_homes: &[NodeId], barriers: &[(NodeId, usize)]) -> Self {
        SyncDirectory {
            locks: lock_homes
                .iter()
                .map(|home| LockState::new(*home, local))
                .collect(),
            barriers: barriers
                .iter()
                .map(|(owner, parties)| BarrierState::new(*owner, *parties))
                .collect(),
        }
    }

    /// State of a lock.
    pub fn lock(&self, id: LockId) -> &LockState {
        &self.locks[id.0 as usize]
    }

    /// Mutable state of a lock.
    pub fn lock_mut(&mut self, id: LockId) -> &mut LockState {
        &mut self.locks[id.0 as usize]
    }

    /// State of a barrier.
    pub fn barrier(&self, id: BarrierId) -> &BarrierState {
        &self.barriers[id.0 as usize]
    }

    /// Mutable state of a barrier.
    pub fn barrier_mut(&mut self, id: BarrierId) -> &mut BarrierState {
        &mut self.barriers[id.0 as usize]
    }

    /// Number of locks known to this node.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of barriers known to this node.
    pub fn barrier_count(&self) -> usize {
        self.barriers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn local_acquire_fast_path() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert!(lock.held);
        // Cannot acquire again while held.
        assert!(!lock.try_local_acquire());
    }

    #[test]
    fn non_owner_cannot_acquire_locally() {
        let mut lock = LockState::new(n(0), n(1));
        assert!(!lock.try_local_acquire());
        assert_eq!(lock.probable_owner, n(0));
    }

    #[test]
    fn remote_acquire_grants_free_lock_and_moves_ownership() {
        let mut lock = LockState::new(n(0), n(0));
        let action = lock.handle_remote_acquire(n(2));
        assert_eq!(action, RemoteAcquireAction::Grant);
        assert!(!lock.owned);
        assert_eq!(lock.probable_owner, n(2));
        // A later request is forwarded to the new owner.
        assert_eq!(
            lock.handle_remote_acquire(n(3)),
            RemoteAcquireAction::Forward(n(2))
        );
    }

    #[test]
    fn remote_acquire_queues_when_held() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        assert_eq!(
            lock.handle_remote_acquire(n(2)),
            RemoteAcquireAction::Queued
        );
        // Release hands ownership and the remaining queue to the head waiter.
        let (next, rest) = lock.release().unwrap();
        assert_eq!(next, n(1));
        assert_eq!(rest, vec![n(2)]);
        assert!(!lock.owned);
        assert_eq!(lock.probable_owner, n(1));
    }

    #[test]
    fn release_without_waiters_keeps_lock_local() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert!(lock.release().is_none());
        assert!(lock.owned);
        assert!(!lock.held);
        // Can re-acquire locally without messages.
        assert!(lock.try_local_acquire());
    }

    #[test]
    fn grant_receipt_installs_queue() {
        let mut lock = LockState::new(n(0), n(3));
        lock.receive_grant(vec![n(1), n(2)], n(3));
        assert!(lock.owned && lock.held);
        assert_eq!(lock.queue, vec![n(1), n(2)]);
        let (next, rest) = lock.release().unwrap();
        assert_eq!(next, n(1));
        assert_eq!(rest, vec![n(2)]);
    }

    #[test]
    fn barrier_opens_when_all_parties_arrive() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        let released = b.arrive(n(2)).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(b.generation, 1);
        // The barrier is reusable.
        assert!(b.arrive(n(2)).is_none());
        assert!(b.arrive(n(1)).is_none());
        assert!(b.arrive(n(0)).is_some());
        assert_eq!(b.generation, 2);
    }

    #[test]
    fn excluding_a_dead_node_lowers_the_arrival_threshold() {
        let mut b = BarrierState::new(n(0), 4);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        // Node 3 dies: threshold drops to 3; the two arrivals are not enough.
        assert!(b.exclude(n(3)).is_none());
        let released = b.arrive(n(2)).unwrap();
        assert_eq!(released, vec![n(0), n(1), n(2)]);
        // Excluding again is idempotent.
        assert!(b.exclude(n(3)).is_none());
        // Next episode still runs at the lowered threshold.
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        assert!(b.arrive(n(2)).is_some());
    }

    #[test]
    fn exclusion_of_the_last_straggler_releases_waiters() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        // Node 2 dies while everyone else waits: the exclusion itself opens
        // the barrier.
        let released = b.exclude(n(2)).unwrap();
        assert_eq!(released, vec![n(0), n(1)]);
        assert_eq!(b.generation, 1);
    }

    #[test]
    fn excluding_an_already_arrived_node_drops_its_arrival() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(2)).is_none());
        assert!(b.exclude(n(2)).is_none());
        // Threshold is now 2 and node 2's stale arrival is gone.
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_some());
    }

    #[test]
    fn duplicate_queue_entries_are_not_created() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        // A crash-recovery re-send of the same acquire is a no-op.
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        assert_eq!(lock.queue, vec![n(1)]);
    }

    #[test]
    fn token_regeneration_and_dead_pruning() {
        let mut lock = LockState::new(n(0), n(0));
        // Grant the token away; node 2 now holds it.
        assert_eq!(lock.handle_remote_acquire(n(2)), RemoteAcquireAction::Grant);
        assert!(!lock.owned);
        // Node 2 dies: the home regenerates a free local token.
        assert!(lock.regenerate_token(n(0)));
        assert!(lock.owned && !lock.held && lock.queue.is_empty());
        assert_eq!(lock.probable_owner, n(0));
        // Regenerating an owned token is refused.
        assert!(!lock.regenerate_token(n(0)));
        // Pruning removes dead waiters and redirects stale hints.
        let mut other = LockState::new(n(0), n(1));
        other.prune_dead(n(0), n(0));
        assert_eq!(other.probable_owner, n(0));
        let mut held = LockState::new(n(0), n(0));
        assert!(held.try_local_acquire());
        held.handle_remote_acquire(n(2));
        held.handle_remote_acquire(n(3));
        held.prune_dead(n(2), n(0));
        assert_eq!(held.queue, vec![n(3)]);
    }

    #[test]
    fn directory_indexes_locks_and_barriers() {
        let dir = SyncDirectory::new(n(1), &[n(0), n(0)], &[(n(0), 4)]);
        assert_eq!(dir.lock_count(), 2);
        assert_eq!(dir.barrier_count(), 1);
        assert!(!dir.lock(LockId(0)).owned);
        assert_eq!(dir.barrier(BarrierId(0)).parties, 4);
    }
}
