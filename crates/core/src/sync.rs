//! Synchronization objects: distributed queue-based locks and barriers.
//!
//! "Synchronization objects are accessed in a fundamentally different way
//! than data objects, so Munin does not provide synchronization through
//! shared memory. Rather each Munin node interacts with the other nodes to
//! provide a high-level synchronization service." (Section 3.4.)
//!
//! This module holds the per-node *synchronization object directory*: the
//! local view of every lock and barrier. The message handling that drives the
//! distributed protocol lives in [`crate::runtime`]; the state transitions are
//! kept here so they can be unit-tested in isolation.

use std::collections::VecDeque;

use munin_sim::NodeId;

use crate::nodeset::NodeSet;
use crate::object::ObjectId;

/// Identifier of a distributed lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// Identifier of a barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BarrierId(pub u32);

/// Per-node state of one distributed lock.
///
/// Ownership of a lock (the right to grant it) moves between nodes; the queue
/// of waiting requesters travels with ownership, so that "a release/acquire
/// pair can be performed with a single message exchange if the acquire is
/// pending when the release occurs". Nodes that are not the owner keep only a
/// probable-owner hint used to forward requests.
#[derive(Clone, Debug)]
pub struct LockState {
    /// Whether this node currently owns the lock token (holds it or is the
    /// node at which the free lock resides).
    pub owned: bool,
    /// Whether the local user thread currently holds the lock.
    pub held: bool,
    /// Requesters waiting for the lock (meaningful only at the owner).
    pub queue: VecDeque<NodeId>,
    /// Best guess at the current owner, used to forward acquire requests.
    pub probable_owner: NodeId,
    /// Data objects associated with the lock via `AssociateDataAndSynch`;
    /// their contents are piggybacked on lock grants.
    pub associated: Vec<ObjectId>,
}

impl LockState {
    /// Creates the initial state of a lock created at `home` as seen from a
    /// node: the home node owns it, everyone else forwards there.
    pub fn new(home: NodeId, local: NodeId) -> Self {
        LockState {
            owned: home == local,
            held: false,
            queue: VecDeque::new(),
            probable_owner: home,
            associated: Vec::new(),
        }
    }

    /// Attempts a purely local acquire. Returns `true` if the lock was free
    /// and owned locally (fast path, no messages needed).
    pub fn try_local_acquire(&mut self) -> bool {
        if self.owned && !self.held && self.queue.is_empty() {
            self.held = true;
            true
        } else {
            false
        }
    }

    /// Records the receipt of lock ownership (a `LockGrant`), together with
    /// the waiter queue that travels with it. The local thread becomes the
    /// holder.
    pub fn receive_grant(&mut self, queue: impl IntoIterator<Item = NodeId>, local: NodeId) {
        self.owned = true;
        self.held = true;
        self.queue = queue.into_iter().collect();
        self.probable_owner = local;
    }

    /// Handles a remote acquire request arriving at this node.
    ///
    /// Returns what the runtime must do with it. Queueing is idempotent (a
    /// requester already waiting is not queued twice): the crash-recovery
    /// path re-sends an acquire towards the lock home when a peer on the
    /// forwarding chain dies, and the original request may still be alive.
    pub fn handle_remote_acquire(&mut self, requester: NodeId) -> RemoteAcquireAction {
        if !self.owned {
            return RemoteAcquireAction::Forward(self.probable_owner);
        }
        if !self.held && self.queue.is_empty() {
            // Free at this node: hand ownership over immediately.
            self.owned = false;
            self.probable_owner = requester;
            RemoteAcquireAction::Grant
        } else {
            if !self.queue.contains(&requester) {
                self.queue.push_back(requester);
            }
            RemoteAcquireAction::Queued
        }
    }

    /// Crash recovery at the lock's *home* node: the peer last known to hold
    /// the token died, so the home mints a fresh free token (the distributed
    /// queue that travelled with the dead token is gone; orphaned waiters
    /// re-send their acquires towards the home). Returns `true` when a token
    /// was actually regenerated.
    pub fn regenerate_token(&mut self, local: NodeId) -> bool {
        if self.owned {
            return false;
        }
        self.owned = true;
        self.held = false;
        self.queue.clear();
        self.probable_owner = local;
        true
    }

    /// Removes a dead node from the waiter queue, and redirects a
    /// probable-owner hint that points at the dead node to `fallback` (the
    /// lock home) so later forwards do not chase a corpse.
    pub fn prune_dead(&mut self, dead: NodeId, fallback: NodeId) {
        self.queue.retain(|n| *n != dead);
        if self.probable_owner == dead && !self.owned {
            self.probable_owner = fallback;
        }
    }

    /// Releases the lock locally. If waiters are queued, ownership (and the
    /// remaining queue) must be handed to the head waiter; the state is
    /// updated accordingly and the grant target is returned.
    ///
    /// Returns `None` if no one is waiting (the lock stays here, free).
    pub fn release(&mut self) -> Option<(NodeId, Vec<NodeId>)> {
        self.held = false;
        if let Some(next) = self.queue.pop_front() {
            let rest: Vec<NodeId> = self.queue.drain(..).collect();
            self.owned = false;
            self.probable_owner = next;
            Some((next, rest))
        } else {
            None
        }
    }
}

/// What a node must do with a remote lock-acquire request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteAcquireAction {
    /// Not the owner: forward the request to this node.
    Forward(NodeId),
    /// The lock was free here: grant ownership to the requester.
    Grant,
    /// The lock is busy: the requester has been queued.
    Queued,
}

/// Per-node state of one barrier.
///
/// Barriers are owner-collected: every arriving thread sends a message to the
/// owner node (the root for statically created barriers) and blocks; when the
/// owner has received the expected number of arrivals it releases everyone.
#[derive(Clone, Debug)]
pub struct BarrierState {
    /// The node that collects arrivals.
    pub owner: NodeId,
    /// Number of threads that must arrive before the barrier opens.
    pub parties: usize,
    /// Nodes that have arrived in the current episode (meaningful at the
    /// owner only).
    pub arrived: Vec<NodeId>,
    /// How many times the barrier has opened.
    pub generation: u64,
    /// Nodes confirmed dead and excluded from the arrival count (crash
    /// recovery at the owner; each excluded node lowers the open threshold
    /// by one).
    pub excluded: NodeSet,
}

impl BarrierState {
    /// Creates the barrier state.
    pub fn new(owner: NodeId, parties: usize) -> Self {
        BarrierState {
            owner,
            parties,
            arrived: Vec::new(),
            generation: 0,
            excluded: NodeSet::EMPTY,
        }
    }

    /// Arrivals required to open, after dead-node exclusions. Never below
    /// one: a barrier opens on an arrival, not on an exclusion alone.
    fn effective_parties(&self) -> usize {
        self.parties.saturating_sub(self.excluded.count()).max(1)
    }

    /// Records an arrival at the owner. Returns the list of nodes to release
    /// when this arrival completes the barrier, or `None` otherwise.
    pub fn arrive(&mut self, from: NodeId) -> Option<Vec<NodeId>> {
        self.arrived.push(from);
        if self.arrived.len() >= self.effective_parties() {
            self.generation += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }

    /// Crash recovery at the owner: excludes a dead node from the arrival
    /// count (dropping any arrival it already recorded this episode — its
    /// release could not reach it anyway). Returns the waiters to release
    /// when the exclusion leaves every surviving party already arrived.
    pub fn exclude(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        if self.excluded.contains(node) {
            return None;
        }
        self.excluded.insert(node);
        self.arrived.retain(|n| *n != node);
        if !self.arrived.is_empty() && self.arrived.len() >= self.effective_parties() {
            self.generation += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }
}

/// The static k-ary combining tree used by wide all-node barriers.
///
/// Nodes are laid out heap-style by *rank*: the barrier owner is rank 0, the
/// ranks `r·k+1 ..= r·k+k` are the children of rank `r`, and rank `r` of node
/// `n` is `(n + nodes − owner) mod nodes` — so the shape depends only on
/// `(owner, nodes, fanout)` and every node derives identical edges without
/// coordination. The *static* tree never changes; crash recovery re-parents a
/// subtree by sending its reports to the nearest live static ancestor, which
/// moves an edge but never changes any node's static subtree membership.
#[derive(Clone, Copy, Debug)]
pub struct TreeTopology {
    /// The barrier owner (rank 0, the tree root).
    pub owner: NodeId,
    /// Total cluster size.
    pub nodes: usize,
    /// Fan-in `k` (at least 2).
    pub fanout: usize,
}

impl TreeTopology {
    /// Builds the topology. `fanout` below 2 would degenerate into a chain;
    /// the config layer rejects it before it can reach here.
    pub fn new(owner: NodeId, nodes: usize, fanout: usize) -> Self {
        debug_assert!(fanout >= 2, "tree fan-in below 2 is a chain");
        TreeTopology {
            owner,
            nodes,
            fanout,
        }
    }

    /// Heap rank of a node (owner = 0).
    pub fn rank_of(&self, node: NodeId) -> usize {
        (node.as_usize() + self.nodes - self.owner.as_usize()) % self.nodes
    }

    /// The node holding a heap rank.
    pub fn node_at(&self, rank: usize) -> NodeId {
        NodeId::new((self.owner.as_usize() + rank) % self.nodes)
    }

    /// Static tree parent (`None` for the owner).
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        let r = self.rank_of(node);
        (r > 0).then(|| self.node_at((r - 1) / self.fanout))
    }

    /// Static tree children, in rank order.
    pub fn children_of(&self, node: NodeId) -> Vec<NodeId> {
        let first = self.rank_of(node) * self.fanout + 1;
        (first..(first.saturating_add(self.fanout)).min(self.nodes))
            .map(|r| self.node_at(r))
            .collect()
    }

    /// The node's full static subtree, itself included.
    pub fn subtree_of(&self, node: NodeId) -> NodeSet {
        let mut set = NodeSet::EMPTY;
        let mut stack = vec![self.rank_of(node)];
        while let Some(r) = stack.pop() {
            set.insert(self.node_at(r));
            let first = r * self.fanout + 1;
            stack.extend(first..(first.saturating_add(self.fanout)).min(self.nodes));
        }
        set
    }

    /// Whether `ancestor` lies on the static path from `node` (exclusive)
    /// up to the owner (inclusive). Crash recovery uses this to decide
    /// whether a death can have swallowed this node's upward report.
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> bool {
        let target = self.rank_of(ancestor);
        let mut r = self.rank_of(node);
        while r > 0 {
            r = (r - 1) / self.fanout;
            if r == target {
                return true;
            }
        }
        false
    }

    /// The nearest static ancestor not in `dead` — the node a re-parented
    /// subtree reports to. `None` when every ancestor up to and including
    /// the owner is dead (owner death ends the run via `NodeDown`), and for
    /// the owner itself, which has no parent.
    pub fn live_parent_of(&self, node: NodeId, dead: &NodeSet) -> Option<NodeId> {
        let mut r = self.rank_of(node);
        while r > 0 {
            r = (r - 1) / self.fanout;
            let ancestor = self.node_at(r);
            if !dead.contains(ancestor) {
                return Some(ancestor);
            }
        }
        None
    }
}

/// Per-node combining state of one tree barrier episode.
///
/// Unlike [`BarrierState`] (meaningful at the owner only), every node keeps
/// one of these per barrier: interior nodes combine their children's reports
/// here before forwarding one merged report upward.
#[derive(Clone, Debug, Default)]
pub struct TreeBarrierState {
    /// Every node known to have arrived this episode in (or re-parented
    /// into) this node's subtree, itself included once it arrives.
    pub arrived: NodeSet,
    /// Dynamic children this episode: each reporting node and the arrived
    /// set it covers, recorded from its upward reports. Releases fan down
    /// exactly these edges, so a re-parented subtree is released by whoever
    /// actually received its report.
    pub children: Vec<(NodeId, NodeSet)>,
    /// Arrival count as of the last upward report, so duplicate incoming
    /// reports (crash-recovery re-sends) do not trigger duplicate forwards:
    /// a node re-forwards only when its merged set has grown.
    pub forwarded_count: usize,
    /// Completed episodes (the tree-path analogue of
    /// [`BarrierState::generation`], kept per node rather than owner-only).
    pub completed: u64,
    /// Lazily computed static subtree of this node (the completeness
    /// threshold and the bundle-stash partition both test against it).
    pub subtree: Option<NodeSet>,
}

impl TreeBarrierState {
    /// Resets the per-episode fields after a release, keeping the episode
    /// counter and the cached subtree.
    pub fn reset_episode(&mut self, completed: u64) {
        self.arrived.clear();
        self.children.clear();
        self.forwarded_count = 0;
        self.completed = completed;
    }

    /// Merges one upward report into the combining state.
    pub fn merge_report(&mut self, from: NodeId, covered: &NodeSet) {
        self.arrived.union_with(covered);
        match self.children.iter_mut().find(|(c, _)| *c == from) {
            Some((_, set)) => set.union_with(covered),
            None => self.children.push((from, covered.clone())),
        }
    }
}

/// The synchronization object directory of one node: the analogue of the data
/// object directory for locks and barriers.
#[derive(Clone, Debug, Default)]
pub struct SyncDirectory {
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    tree: Vec<TreeBarrierState>,
}

impl SyncDirectory {
    /// Builds the directory for a node, given the statically created locks
    /// and barriers (all homed at the root in the prototype).
    pub fn new(local: NodeId, lock_homes: &[NodeId], barriers: &[(NodeId, usize)]) -> Self {
        SyncDirectory {
            locks: lock_homes
                .iter()
                .map(|home| LockState::new(*home, local))
                .collect(),
            barriers: barriers
                .iter()
                .map(|(owner, parties)| BarrierState::new(*owner, *parties))
                .collect(),
            tree: vec![TreeBarrierState::default(); barriers.len()],
        }
    }

    /// State of a lock.
    pub fn lock(&self, id: LockId) -> &LockState {
        &self.locks[id.0 as usize]
    }

    /// Mutable state of a lock.
    pub fn lock_mut(&mut self, id: LockId) -> &mut LockState {
        &mut self.locks[id.0 as usize]
    }

    /// State of a barrier.
    pub fn barrier(&self, id: BarrierId) -> &BarrierState {
        &self.barriers[id.0 as usize]
    }

    /// Mutable state of a barrier.
    pub fn barrier_mut(&mut self, id: BarrierId) -> &mut BarrierState {
        &mut self.barriers[id.0 as usize]
    }

    /// Combining-tree state of a barrier.
    pub fn tree_barrier(&self, id: BarrierId) -> &TreeBarrierState {
        &self.tree[id.0 as usize]
    }

    /// Mutable combining-tree state of a barrier.
    pub fn tree_barrier_mut(&mut self, id: BarrierId) -> &mut TreeBarrierState {
        &mut self.tree[id.0 as usize]
    }

    /// Number of locks known to this node.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of barriers known to this node.
    pub fn barrier_count(&self) -> usize {
        self.barriers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn local_acquire_fast_path() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert!(lock.held);
        // Cannot acquire again while held.
        assert!(!lock.try_local_acquire());
    }

    #[test]
    fn non_owner_cannot_acquire_locally() {
        let mut lock = LockState::new(n(0), n(1));
        assert!(!lock.try_local_acquire());
        assert_eq!(lock.probable_owner, n(0));
    }

    #[test]
    fn remote_acquire_grants_free_lock_and_moves_ownership() {
        let mut lock = LockState::new(n(0), n(0));
        let action = lock.handle_remote_acquire(n(2));
        assert_eq!(action, RemoteAcquireAction::Grant);
        assert!(!lock.owned);
        assert_eq!(lock.probable_owner, n(2));
        // A later request is forwarded to the new owner.
        assert_eq!(
            lock.handle_remote_acquire(n(3)),
            RemoteAcquireAction::Forward(n(2))
        );
    }

    #[test]
    fn remote_acquire_queues_when_held() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        assert_eq!(
            lock.handle_remote_acquire(n(2)),
            RemoteAcquireAction::Queued
        );
        // Release hands ownership and the remaining queue to the head waiter.
        let (next, rest) = lock.release().unwrap();
        assert_eq!(next, n(1));
        assert_eq!(rest, vec![n(2)]);
        assert!(!lock.owned);
        assert_eq!(lock.probable_owner, n(1));
    }

    #[test]
    fn release_without_waiters_keeps_lock_local() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert!(lock.release().is_none());
        assert!(lock.owned);
        assert!(!lock.held);
        // Can re-acquire locally without messages.
        assert!(lock.try_local_acquire());
    }

    #[test]
    fn grant_receipt_installs_queue() {
        let mut lock = LockState::new(n(0), n(3));
        lock.receive_grant(vec![n(1), n(2)], n(3));
        assert!(lock.owned && lock.held);
        assert_eq!(lock.queue, vec![n(1), n(2)]);
        let (next, rest) = lock.release().unwrap();
        assert_eq!(next, n(1));
        assert_eq!(rest, vec![n(2)]);
    }

    #[test]
    fn barrier_opens_when_all_parties_arrive() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        let released = b.arrive(n(2)).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(b.generation, 1);
        // The barrier is reusable.
        assert!(b.arrive(n(2)).is_none());
        assert!(b.arrive(n(1)).is_none());
        assert!(b.arrive(n(0)).is_some());
        assert_eq!(b.generation, 2);
    }

    #[test]
    fn excluding_a_dead_node_lowers_the_arrival_threshold() {
        let mut b = BarrierState::new(n(0), 4);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        // Node 3 dies: threshold drops to 3; the two arrivals are not enough.
        assert!(b.exclude(n(3)).is_none());
        let released = b.arrive(n(2)).unwrap();
        assert_eq!(released, vec![n(0), n(1), n(2)]);
        // Excluding again is idempotent.
        assert!(b.exclude(n(3)).is_none());
        // Next episode still runs at the lowered threshold.
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        assert!(b.arrive(n(2)).is_some());
    }

    #[test]
    fn exclusion_of_the_last_straggler_releases_waiters() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_none());
        // Node 2 dies while everyone else waits: the exclusion itself opens
        // the barrier.
        let released = b.exclude(n(2)).unwrap();
        assert_eq!(released, vec![n(0), n(1)]);
        assert_eq!(b.generation, 1);
    }

    #[test]
    fn exclusion_above_node_64_does_not_alias() {
        // Regression: the historical bitmap computed `1u64 << (node % 64)`,
        // so excluding node 64 (a) aliased onto node 0 and (b) made a later
        // real exclusion of node 0 an idempotent no-op — the threshold
        // dropped by one instead of two and the barrier hung forever.
        let mut b = BarrierState::new(n(0), 66);
        assert!(b.exclude(n(64)).is_none());
        assert!(b.exclude(n(0)).is_none());
        assert!(b.exclude(n(65)).is_none());
        assert_eq!(b.excluded.count(), 3, "three distinct exclusions");
        // 66 parties - 3 dead = 63 arrivals open the barrier.
        for i in 1..63 {
            assert!(b.arrive(n(i)).is_none(), "arrival {i} must not open");
        }
        let released = b.arrive(n(63)).unwrap();
        assert_eq!(released.len(), 63);
        assert_eq!(b.generation, 1);
    }

    #[test]
    fn excluding_an_already_arrived_node_drops_its_arrival() {
        let mut b = BarrierState::new(n(0), 3);
        assert!(b.arrive(n(2)).is_none());
        assert!(b.exclude(n(2)).is_none());
        // Threshold is now 2 and node 2's stale arrival is gone.
        assert!(b.arrive(n(0)).is_none());
        assert!(b.arrive(n(1)).is_some());
    }

    #[test]
    fn duplicate_queue_entries_are_not_created() {
        let mut lock = LockState::new(n(0), n(0));
        assert!(lock.try_local_acquire());
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        // A crash-recovery re-send of the same acquire is a no-op.
        assert_eq!(
            lock.handle_remote_acquire(n(1)),
            RemoteAcquireAction::Queued
        );
        assert_eq!(lock.queue, vec![n(1)]);
    }

    #[test]
    fn token_regeneration_and_dead_pruning() {
        let mut lock = LockState::new(n(0), n(0));
        // Grant the token away; node 2 now holds it.
        assert_eq!(lock.handle_remote_acquire(n(2)), RemoteAcquireAction::Grant);
        assert!(!lock.owned);
        // Node 2 dies: the home regenerates a free local token.
        assert!(lock.regenerate_token(n(0)));
        assert!(lock.owned && !lock.held && lock.queue.is_empty());
        assert_eq!(lock.probable_owner, n(0));
        // Regenerating an owned token is refused.
        assert!(!lock.regenerate_token(n(0)));
        // Pruning removes dead waiters and redirects stale hints.
        let mut other = LockState::new(n(0), n(1));
        other.prune_dead(n(0), n(0));
        assert_eq!(other.probable_owner, n(0));
        let mut held = LockState::new(n(0), n(0));
        assert!(held.try_local_acquire());
        held.handle_remote_acquire(n(2));
        held.handle_remote_acquire(n(3));
        held.prune_dead(n(2), n(0));
        assert_eq!(held.queue, vec![n(3)]);
    }

    #[test]
    fn directory_indexes_locks_and_barriers() {
        let dir = SyncDirectory::new(n(1), &[n(0), n(0)], &[(n(0), 4)]);
        assert_eq!(dir.lock_count(), 2);
        assert_eq!(dir.barrier_count(), 1);
        assert!(!dir.lock(LockId(0)).owned);
        assert_eq!(dir.barrier(BarrierId(0)).parties, 4);
        assert_eq!(dir.tree_barrier(BarrierId(0)).completed, 0);
    }

    #[test]
    fn tree_topology_edges_are_mutually_consistent() {
        // Non-zero owner: ranks rotate, edges must still agree both ways.
        let t = TreeTopology::new(n(3), 13, 4);
        assert_eq!(t.rank_of(n(3)), 0);
        assert_eq!(t.parent_of(n(3)), None);
        for i in 0..13 {
            let node = n(i);
            for child in t.children_of(node) {
                assert_eq!(t.parent_of(child), Some(node));
            }
            if let Some(p) = t.parent_of(node) {
                assert!(t.children_of(p).contains(&node));
            }
        }
        // Rank 0 has children at ranks 1..=4 (nodes 4..=7).
        assert_eq!(t.children_of(n(3)), vec![n(4), n(5), n(6), n(7)]);
        // A leaf has none.
        assert_eq!(t.children_of(n(12)), Vec::<NodeId>::new());
    }

    #[test]
    fn tree_subtrees_partition_the_cluster() {
        let t = TreeTopology::new(n(0), 256, 8);
        // The owner's subtree is everyone.
        assert_eq!(t.subtree_of(n(0)), NodeSet::full(256));
        // Sibling subtrees are disjoint and, with the root, cover the
        // cluster exactly.
        let mut union = NodeSet::EMPTY;
        union.insert(n(0));
        let mut total = 1;
        for child in t.children_of(n(0)) {
            let sub = t.subtree_of(child);
            assert!(sub.contains(child));
            total += sub.count();
            let mut overlap = sub.clone();
            overlap.difference_with(&union);
            assert_eq!(overlap.count(), sub.count(), "subtrees must not overlap");
            union.union_with(&sub);
        }
        assert_eq!(total, 256);
        assert_eq!(union, NodeSet::full(256));
    }

    #[test]
    fn live_parent_skips_dead_ancestors() {
        let t = TreeTopology::new(n(0), 64, 2);
        // Rank chain of node 7 (rank 7): 7 → 3 → 1 → 0.
        assert_eq!(t.live_parent_of(n(7), &NodeSet::EMPTY), Some(n(3)));
        let mut dead = NodeSet::EMPTY;
        dead.insert(n(3));
        assert_eq!(t.live_parent_of(n(7), &dead), Some(n(1)));
        dead.insert(n(1));
        assert_eq!(t.live_parent_of(n(7), &dead), Some(n(0)));
        // Everything up to the owner dead: no live parent (NodeDown path).
        dead.insert(n(0));
        assert_eq!(t.live_parent_of(n(7), &dead), None);
        // The owner has no parent even when fully alive.
        assert_eq!(t.live_parent_of(n(0), &NodeSet::EMPTY), None);
    }

    #[test]
    fn tree_state_merges_reports_idempotently() {
        let mut s = TreeBarrierState::default();
        let report = NodeSet::from_nodes([n(5), n(6)]);
        s.merge_report(n(5), &report);
        assert_eq!(s.arrived.count(), 2);
        assert_eq!(s.children.len(), 1);
        // A crash-recovery re-send of the same report changes nothing.
        s.merge_report(n(5), &report);
        assert_eq!(s.arrived.count(), 2);
        assert_eq!(s.children.len(), 1);
        // A grown re-send merges into the same child entry.
        s.merge_report(n(5), &NodeSet::from_nodes([n(5), n(6), n(7)]));
        assert_eq!(s.arrived.count(), 3);
        assert_eq!(s.children.len(), 1);
        assert_eq!(s.children[0].1.count(), 3);
        s.reset_episode(1);
        assert!(s.arrived.is_empty());
        assert!(s.children.is_empty());
        assert_eq!(s.completed, 1);
    }
}
