//! Twins and run-length encoded diffs, in a flat zero-copy wire format.
//!
//! When a thread first writes to an object whose protocol allows multiple
//! writers, Munin makes a copy of the object — its *twin*. When the delayed
//! update queue is flushed, the runtime "performs a word-by-word comparison
//! of the object and its twin and run-length encodes the results of this diff
//! into the space allocated for the twin. Each run consists of a count of
//! identical words, the number of differing words that follow, and the data
//! associated with those differing words." (Section 3.3.)
//!
//! # Wire format
//!
//! A [`Diff`] is a single contiguous buffer — exactly the bytes that would go
//! on the wire — with this layout (all fields little-endian `u32`):
//!
//! ```text
//! ┌───────┬──────┬───────┬─────────────────┬──────┬───────┬──────────┬──
//! │ words │ skip │ count │ count*4 data …  │ skip │ count │ data …   │ …
//! └───────┴──────┴───────┴─────────────────┴──────┴───────┴──────────┴──
//!   header └──────────── run 0 ───────────┘ └──────────── run 1 ──────…
//! ```
//!
//! * `words` — length of the object in 32-bit words (validates application).
//! * Each run: `skip` identical words, then `count` differing words whose new
//!   values follow inline. Runs are maximal: `count > 0` always, and two
//!   consecutive runs are separated by at least one identical word
//!   (`skip > 0` for every run but possibly the first).
//!
//! Because the encoding *is* the wire representation, sending a diff to N
//! destinations shares one buffer behind an [`Arc`] instead of deep-cloning
//! nested run vectors, and [`apply`] copies whole runs with
//! `copy_from_slice` straight off the buffer.
//!
//! # Block-skip encoding
//!
//! [`DiffScratch::encode`] compares [`BLOCK_WORDS`]-word (128-byte) blocks
//! via slice equality first — `memcmp` speed — and only drops to `u64` lanes
//! and then single words inside a block that differs. Identical regions, the
//! common case for sparse diffs like SOR edge exchanges, are skipped at
//! memory bandwidth. This is safe because block comparison is only used to
//! *find* the next differing word; run boundaries are always determined at
//! word granularity, so the output is bit-identical to the word-by-word
//! reference encoder ([`encode_reference`]).
//!
//! See `DESIGN.md` for the full layout rationale and invariants.

use std::sync::Arc;

use crate::error::{MuninError, Result};
use crate::object::ObjectId;

/// Words per comparison block: 32 words = 128 bytes.
pub const BLOCK_WORDS: usize = 32;

/// Byte size of the `words` header that prefixes every encoded diff.
pub const HEADER_LEN: usize = 4;

/// Byte size of a run header (`skip` + `count`).
pub const RUN_HEADER_LEN: usize = 8;

/// A run-length encoded diff of an object against its twin, stored in its
/// flat wire format behind an [`Arc`] so multi-destination fan-out shares
/// one encoding.
#[derive(Clone, Debug)]
pub struct Diff {
    bytes: Arc<[u8]>,
}

impl PartialEq for Diff {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Diff {}

impl Diff {
    /// An empty diff (no changed words) for an object of `words` words.
    pub fn empty(words: u32) -> Diff {
        Diff {
            bytes: Arc::from(words.to_le_bytes().as_slice()),
        }
    }

    /// Wraps bytes received from the wire, validating the framing.
    ///
    /// # Errors
    ///
    /// Returns [`MuninError::ProtocolViolation`] if the buffer is truncated
    /// or a run overruns the object length declared in the header.
    pub fn from_wire(bytes: Arc<[u8]>) -> Result<Diff> {
        validate(&bytes)?;
        Ok(Diff { bytes })
    }

    /// The raw wire bytes of the encoding.
    pub fn as_wire_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the object in words (needed to validate application).
    pub fn words(&self) -> u32 {
        u32::from_le_bytes(self.bytes[..HEADER_LEN].try_into().unwrap())
    }

    /// Whether the diff contains no changed words.
    pub fn is_empty(&self) -> bool {
        self.bytes.len() <= HEADER_LEN
    }

    /// Total number of differing words carried by the diff.
    pub fn changed_words(&self) -> usize {
        self.runs().map(|r| r.data.len() / 4).sum()
    }

    /// Number of runs in the encoding.
    pub fn run_count(&self) -> usize {
        self.runs().count()
    }

    /// Size of the encoding on the wire: the buffer length itself (header
    /// word plus two count words and the data words of every run).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates the runs, yielding borrowed views straight off the buffer.
    pub fn runs(&self) -> Runs<'_> {
        Runs {
            rest: &self.bytes[HEADER_LEN..],
        }
    }

    /// Whether two diffs share the same underlying buffer (one encoding
    /// fanned out to several destinations).
    pub fn shares_buffer(&self, other: &Diff) -> bool {
        Arc::ptr_eq(&self.bytes, &other.bytes)
    }
}

/// One run of a [`Diff`], borrowed from the wire buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunRef<'a> {
    /// Number of identical (unchanged) words preceding the differing words.
    pub skip: u32,
    /// New values of the differing words, as word-aligned little-endian
    /// bytes (`4 * count` long).
    pub data: &'a [u8],
}

impl RunRef<'_> {
    /// The differing words decoded to `u32` values (allocates; use `data`
    /// directly on hot paths).
    pub fn words(&self) -> Vec<u32> {
        self.data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

/// Iterator over the runs of a [`Diff`].
pub struct Runs<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Runs<'a> {
    type Item = RunRef<'a>;

    fn next(&mut self) -> Option<RunRef<'a>> {
        if self.rest.len() < RUN_HEADER_LEN {
            return None;
        }
        let skip = u32::from_le_bytes(self.rest[0..4].try_into().unwrap());
        let count = u32::from_le_bytes(self.rest[4..8].try_into().unwrap()) as usize;
        let data_end = RUN_HEADER_LEN + count * 4;
        // Diffs are validated on construction, so a well-formed buffer never
        // truncates mid-run; stop defensively if one somehow does.
        if self.rest.len() < data_end {
            self.rest = &[];
            return None;
        }
        let data = &self.rest[RUN_HEADER_LEN..data_end];
        self.rest = &self.rest[data_end..];
        Some(RunRef { skip, data })
    }
}

/// Checks the framing of an encoded diff buffer, returning the object length
/// in words.
fn validate(bytes: &[u8]) -> Result<u32> {
    if bytes.len() < HEADER_LEN {
        return Err(MuninError::ProtocolViolation("truncated diff header"));
    }
    let words = u32::from_le_bytes(bytes[..HEADER_LEN].try_into().unwrap());
    let mut pos = HEADER_LEN;
    let mut word_idx: u64 = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < RUN_HEADER_LEN {
            return Err(MuninError::ProtocolViolation("truncated diff run header"));
        }
        let skip = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        pos += RUN_HEADER_LEN;
        if count == 0 {
            // The encoder never emits empty runs; accepting one would let
            // `is_empty()` disagree with `changed_words()`.
            return Err(MuninError::ProtocolViolation("empty diff run"));
        }
        let data_len = count as usize * 4;
        if bytes.len() - pos < data_len {
            return Err(MuninError::ProtocolViolation("truncated diff run data"));
        }
        pos += data_len;
        word_idx += skip as u64 + count as u64;
        if word_idx > words as u64 {
            return Err(MuninError::ProtocolViolation("diff run overruns object"));
        }
    }
    Ok(words)
}

/// Reusable encoding buffer: one per node, so repeated DUQ flushes perform
/// no per-run heap allocations (the scratch grows to the high-water mark and
/// stays there).
#[derive(Debug, Default)]
pub struct DiffScratch {
    buf: Vec<u8>,
}

impl DiffScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity of the scratch in bytes (observable for tests that
    /// assert the buffer is reused across flushes).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Computes the run-length encoded diff of `current` against `twin`,
    /// writing the flat wire format into the reused scratch buffer and
    /// returning it as a shareable [`Diff`].
    ///
    /// Identical regions are skipped with [`BLOCK_WORDS`]-word block
    /// comparisons (and `u64` lanes inside a differing block); run
    /// boundaries are resolved at word granularity, so the output is
    /// identical to [`encode_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the two buffers differ in length or are not word-aligned;
    /// objects are always padded to a word multiple when the segment is laid
    /// out.
    pub fn encode(&mut self, current: &[u8], twin: &[u8]) -> Diff {
        assert_eq!(
            current.len(),
            twin.len(),
            "object and twin must be the same size"
        );
        assert_eq!(current.len() % 4, 0, "objects are word-aligned");
        let words = current.len() / 4;
        let buf = &mut self.buf;
        buf.clear();
        buf.extend_from_slice(&(words as u32).to_le_bytes());

        let mut i = 0usize; // word cursor
        let mut last_end = 0usize; // one past the previous run's last word
        while i < words {
            i = next_mismatch(current, twin, i, words);
            if i == words {
                break;
            }
            let start = i;
            while i < words && current[i * 4..i * 4 + 4] != twin[i * 4..i * 4 + 4] {
                i += 1;
            }
            buf.extend_from_slice(&((start - last_end) as u32).to_le_bytes());
            buf.extend_from_slice(&((i - start) as u32).to_le_bytes());
            buf.extend_from_slice(&current[start * 4..i * 4]);
            last_end = i;
        }
        Diff {
            bytes: Arc::from(buf.as_slice()),
        }
    }
}

/// Advances `i` to the next word where `current` and `twin` differ, or to
/// `words` if the tails are identical. Whole [`BLOCK_WORDS`] blocks are
/// compared with slice equality (memcmp), then `u64` lanes, then words.
#[inline]
fn next_mismatch(current: &[u8], twin: &[u8], mut i: usize, words: usize) -> usize {
    const BLOCK_BYTES: usize = BLOCK_WORDS * 4;
    while i + BLOCK_WORDS <= words {
        let at = i * 4;
        if current[at..at + BLOCK_BYTES] != twin[at..at + BLOCK_BYTES] {
            break;
        }
        i += BLOCK_WORDS;
    }
    while i + 2 <= words {
        let at = i * 4;
        let a = u64::from_le_bytes(current[at..at + 8].try_into().unwrap());
        let b = u64::from_le_bytes(twin[at..at + 8].try_into().unwrap());
        if a != b {
            break;
        }
        i += 2;
    }
    while i < words && current[i * 4..i * 4 + 4] == twin[i * 4..i * 4 + 4] {
        i += 1;
    }
    i
}

/// Creates a twin: a private copy of the object made on the first write.
pub fn make_twin(object: &[u8]) -> Vec<u8> {
    object.to_vec()
}

/// Computes the run-length encoded diff of `current` against `twin` using a
/// one-shot scratch buffer. Hot paths (the DUQ flush) keep a [`DiffScratch`]
/// alive instead so the buffer is reused across flushes.
///
/// # Panics
///
/// Panics if the two buffers differ in length or are not word-aligned.
pub fn encode(current: &[u8], twin: &[u8]) -> Diff {
    DiffScratch::new().encode(current, twin)
}

/// Reference word-by-word encoder: the straightforward implementation of the
/// paper's description, with no block skipping. Produces bit-identical
/// output to [`DiffScratch::encode`]; kept as the oracle for differential
/// tests and as the baseline in the `micro_diff` benchmark.
///
/// # Panics
///
/// Panics if the two buffers differ in length or are not word-aligned.
pub fn encode_reference(current: &[u8], twin: &[u8]) -> Diff {
    assert_eq!(
        current.len(),
        twin.len(),
        "object and twin must be the same size"
    );
    assert_eq!(current.len() % 4, 0, "objects are word-aligned");
    let words = current.len() / 4;
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(&(words as u32).to_le_bytes());
    let mut run_start: Option<usize> = None;
    let mut last_end = 0usize;
    for w in 0..words {
        let differs = current[w * 4..w * 4 + 4] != twin[w * 4..w * 4 + 4];
        match (differs, run_start) {
            (true, None) => run_start = Some(w),
            (false, Some(start)) => {
                buf.extend_from_slice(&((start - last_end) as u32).to_le_bytes());
                buf.extend_from_slice(&((w - start) as u32).to_le_bytes());
                buf.extend_from_slice(&current[start * 4..w * 4]);
                last_end = w;
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        buf.extend_from_slice(&((start - last_end) as u32).to_le_bytes());
        buf.extend_from_slice(&((words - start) as u32).to_le_bytes());
        buf.extend_from_slice(&current[start * 4..words * 4]);
    }
    Diff {
        bytes: Arc::from(buf.as_slice()),
    }
}

/// Applies `diff` to `target`, overwriting the words the diff marks as
/// changed with whole-run `copy_from_slice` copies straight off the wire
/// buffer. `target` is typically a remote copy of the object (or the
/// owner's master copy for `result` objects).
///
/// # Errors
///
/// Returns [`MuninError::ProtocolViolation`] if the diff does not fit the
/// target (length mismatch or runs overrunning the object) or the buffer is
/// malformed.
pub fn apply(diff: &Diff, target: &mut [u8]) -> Result<()> {
    let bytes: &[u8] = &diff.bytes;
    if bytes.len() < HEADER_LEN {
        return Err(MuninError::ProtocolViolation("truncated diff header"));
    }
    let words = u32::from_le_bytes(bytes[..HEADER_LEN].try_into().unwrap()) as usize;
    if !target.len().is_multiple_of(4) || target.len() / 4 != words {
        return Err(MuninError::ProtocolViolation("diff length mismatch"));
    }
    let mut pos = HEADER_LEN;
    let mut word_idx = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < RUN_HEADER_LEN {
            return Err(MuninError::ProtocolViolation("truncated diff run header"));
        }
        let skip = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let count = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += RUN_HEADER_LEN;
        if count == 0 {
            // Kept in lockstep with `validate`: the encoder never emits
            // empty runs.
            return Err(MuninError::ProtocolViolation("empty diff run"));
        }
        let data_len = count * 4;
        if bytes.len() - pos < data_len {
            return Err(MuninError::ProtocolViolation("truncated diff run data"));
        }
        word_idx += skip;
        let end = word_idx + count;
        if end > words {
            return Err(MuninError::ProtocolViolation("diff run overruns object"));
        }
        target[word_idx * 4..end * 4].copy_from_slice(&bytes[pos..pos + data_len]);
        pos += data_len;
        word_idx = end;
    }
    Ok(())
}

/// A pending DUQ entry's twin, tagged with its object.
#[derive(Clone, Debug)]
pub struct Twin {
    /// The object this twin shadows.
    pub object: ObjectId,
    /// Snapshot of the object at the time of the first write since the last
    /// flush.
    pub data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bytes(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Deterministic pseudo-random word buffer for differential tests.
    fn random_words(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        let mut out = Vec::with_capacity(n * 4);
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.extend_from_slice(&((state >> 24) as u32).to_le_bytes());
        }
        out
    }

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = to_bytes(&[1, 2, 3, 4]);
        let d = encode(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.changed_words(), 0);
        assert_eq!(d.run_count(), 0);
        assert_eq!(d.words(), 4);
        assert_eq!(d.encoded_bytes(), HEADER_LEN);
    }

    #[test]
    fn single_word_change_is_one_run() {
        let twin = to_bytes(&[0; 8]);
        let mut cur = twin.clone();
        cur[12..16].copy_from_slice(&7u32.to_le_bytes());
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        let run = d.runs().next().unwrap();
        assert_eq!(run.skip, 3);
        assert_eq!(run.words(), vec![7]);
        assert_eq!(d.changed_words(), 1);
    }

    #[test]
    fn every_word_changed_is_one_big_run() {
        let twin = to_bytes(&[0; 16]);
        let cur = to_bytes(&[9; 16]);
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs().next().unwrap().skip, 0);
        assert_eq!(d.changed_words(), 16);
    }

    #[test]
    fn alternate_words_is_worst_case_run_count() {
        // "In the third every other word has changed which is the worst case
        // for our run-length encoding scheme because there are a maximum
        // number of minimum-length runs."
        let twin = to_bytes(&vec![0u32; 64]);
        let cur = to_bytes(
            &(0..64u32)
                .map(|i| if i % 2 == 0 { 5 } else { 0 })
                .collect::<Vec<_>>(),
        );
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 32);
        assert_eq!(d.changed_words(), 32);
        assert!(d.encoded_bytes() > 32 * 4);
    }

    #[test]
    fn apply_reconstructs_the_modified_object() {
        let twin = to_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut cur = twin.clone();
        cur[0..4].copy_from_slice(&100u32.to_le_bytes());
        cur[20..24].copy_from_slice(&200u32.to_le_bytes());
        let d = encode(&cur, &twin);
        let mut other_copy = twin.clone();
        apply(&d, &mut other_copy).unwrap();
        assert_eq!(other_copy, cur);
    }

    #[test]
    fn apply_merges_disjoint_concurrent_writes() {
        // Two writers modify disjoint words of the same object; applying both
        // diffs to the original must yield both changes (the multiple-writers
        // guarantee that defeats false sharing).
        let original = to_bytes(&[0; 8]);
        let mut writer_a = original.clone();
        writer_a[0..4].copy_from_slice(&11u32.to_le_bytes());
        let mut writer_b = original.clone();
        writer_b[28..32].copy_from_slice(&22u32.to_le_bytes());
        let diff_a = encode(&writer_a, &original);
        let diff_b = encode(&writer_b, &original);
        let mut master = original.clone();
        apply(&diff_a, &mut master).unwrap();
        apply(&diff_b, &mut master).unwrap();
        assert_eq!(u32::from_le_bytes(master[0..4].try_into().unwrap()), 11);
        assert_eq!(u32::from_le_bytes(master[28..32].try_into().unwrap()), 22);
    }

    #[test]
    fn apply_rejects_mismatched_length() {
        let twin = to_bytes(&[0; 4]);
        let cur = to_bytes(&[1; 4]);
        let d = encode(&cur, &twin);
        let mut short = to_bytes(&[0; 2]);
        assert!(apply(&d, &mut short).is_err());
    }

    #[test]
    fn apply_rejects_overrunning_run() {
        // Hand-build a malformed wire buffer: claims 4 words but a run of 8.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes()); // words
        bytes.extend_from_slice(&0u32.to_le_bytes()); // skip
        bytes.extend_from_slice(&8u32.to_le_bytes()); // count
        bytes.extend_from_slice(&[0u8; 32]); // 8 words of data
        let d = Diff {
            bytes: Arc::from(bytes.as_slice()),
        };
        let mut target = vec![0u8; 16];
        assert_eq!(
            apply(&d, &mut target),
            Err(MuninError::ProtocolViolation("diff run overruns object"))
        );
        // from_wire rejects the same framing up front.
        assert!(Diff::from_wire(Arc::from(d.as_wire_bytes())).is_err());
    }

    #[test]
    fn apply_rejects_truncated_buffer() {
        let twin = random_words(16, 3);
        let cur = random_words(16, 4);
        let d = encode(&cur, &twin);
        let wire = d.as_wire_bytes();
        // Chop mid-run-data and mid-run-header.
        for cut in [wire.len() - 3, HEADER_LEN + 5] {
            let truncated = Diff {
                bytes: Arc::from(&wire[..cut]),
            };
            let mut target = twin.clone();
            assert!(apply(&truncated, &mut target).is_err());
            assert!(Diff::from_wire(Arc::from(&wire[..cut])).is_err());
        }
    }

    #[test]
    fn from_wire_rejects_empty_run() {
        // [words=4][skip=0, count=0]: the encoder never emits empty runs and
        // the validator must not accept them from the wire.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Diff::from_wire(Arc::from(bytes.as_slice())),
            Err(MuninError::ProtocolViolation("empty diff run"))
        );
    }

    #[test]
    fn from_wire_accepts_valid_encoding() {
        let twin = random_words(64, 1);
        let mut cur = twin.clone();
        cur[8..12].copy_from_slice(&9u32.to_le_bytes());
        let d = encode(&cur, &twin);
        let rt = Diff::from_wire(Arc::from(d.as_wire_bytes())).unwrap();
        assert_eq!(rt, d);
        let mut target = twin.clone();
        apply(&rt, &mut target).unwrap();
        assert_eq!(target, cur);
    }

    #[test]
    fn encoded_bytes_tracks_runs_and_data() {
        let twin = to_bytes(&[0; 4]);
        let mut cur = twin.clone();
        cur[4..8].copy_from_slice(&1u32.to_le_bytes());
        let d = encode(&cur, &twin);
        // header + one run (8 bytes) + one data word.
        assert_eq!(d.encoded_bytes(), 4 + 8 + 4);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn encode_panics_on_length_mismatch() {
        let _ = encode(&[0u8; 8], &[0u8; 4]);
    }

    #[test]
    fn cloned_diffs_share_the_buffer() {
        let twin = to_bytes(&[0; 8]);
        let cur = to_bytes(&[1; 8]);
        let d = encode(&cur, &twin);
        let c = d.clone();
        assert!(d.shares_buffer(&c));
        // An equal but separately encoded diff does not share.
        let e = encode(&cur, &twin);
        assert_eq!(d, e);
        assert!(!d.shares_buffer(&e));
    }

    #[test]
    fn scratch_buffer_is_reused_across_encodes() {
        let twin = random_words(512, 7);
        let mut cur = twin.clone();
        cur[100..104].copy_from_slice(&1u32.to_le_bytes());
        let mut scratch = DiffScratch::new();
        let _ = scratch.encode(&cur, &twin);
        let cap = scratch.capacity();
        assert!(cap > 0);
        for _ in 0..10 {
            let _ = scratch.encode(&cur, &twin);
        }
        assert_eq!(
            scratch.capacity(),
            cap,
            "scratch must not reallocate for same-size encodes"
        );
    }

    /// Differential test: the block-skip encoder and the word-by-word
    /// reference encoder produce bit-identical wire buffers over the
    /// patterns the protocol actually generates.
    #[test]
    fn block_skip_matches_reference_encoder() {
        let sizes = [0usize, 1, 2, 31, 32, 33, 63, 64, 65, 96, 256, 1000];
        for (case, &words) in sizes.iter().enumerate() {
            let twin = random_words(words, case as u64 + 1);

            // Identical buffers.
            let cur = twin.clone();
            assert_eq!(
                encode(&cur, &twin).as_wire_bytes(),
                encode_reference(&cur, &twin).as_wire_bytes()
            );

            // Fully dirty.
            let cur = random_words(words, case as u64 + 1000);
            assert_eq!(
                encode(&cur, &twin).as_wire_bytes(),
                encode_reference(&cur, &twin).as_wire_bytes()
            );

            // Sparse: every 37th word flipped.
            let mut cur = twin.clone();
            for w in (0..words).step_by(37) {
                cur[w * 4] ^= 0xFF;
            }
            assert_eq!(
                encode(&cur, &twin).as_wire_bytes(),
                encode_reference(&cur, &twin).as_wire_bytes()
            );

            // Run boundaries straddling block edges: dirty stripes around
            // every multiple of BLOCK_WORDS.
            let mut cur = twin.clone();
            for w in 0..words {
                let m = w % BLOCK_WORDS;
                if m == 0 || m == BLOCK_WORDS - 1 {
                    cur[w * 4 + 1] ^= 0x5A;
                }
            }
            assert_eq!(
                encode(&cur, &twin).as_wire_bytes(),
                encode_reference(&cur, &twin).as_wire_bytes()
            );

            // Random mask (~1/3 words changed).
            let mut cur = twin.clone();
            let mut state = 0xDEAD_BEEF_u64.wrapping_add(case as u64);
            for w in 0..words {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state.is_multiple_of(3) {
                    cur[w * 4 + 2] = cur[w * 4 + 2].wrapping_add(1);
                }
            }
            assert_eq!(
                encode(&cur, &twin).as_wire_bytes(),
                encode_reference(&cur, &twin).as_wire_bytes()
            );
        }
    }

    /// Round-trip: encode with either encoder, apply to a copy of the twin,
    /// and recover `current` exactly.
    #[test]
    fn round_trip_reconstructs_current() {
        for words in [1usize, 31, 32, 33, 128, 999] {
            let twin = random_words(words, words as u64);
            let mut cur = twin.clone();
            let mut state = words as u64;
            for w in 0..words {
                state = state.wrapping_mul(48271) % 0x7FFF_FFFF;
                if state.is_multiple_of(4) {
                    cur[w * 4..w * 4 + 4].copy_from_slice(&(state as u32).to_le_bytes());
                }
            }
            for d in [encode(&cur, &twin), encode_reference(&cur, &twin)] {
                let mut target = twin.clone();
                apply(&d, &mut target).unwrap();
                assert_eq!(target, cur, "{words} words");
            }
        }
    }
}
