//! Twins and run-length encoded diffs.
//!
//! When a thread first writes to an object whose protocol allows multiple
//! writers, Munin makes a copy of the object — its *twin*. When the delayed
//! update queue is flushed, the runtime "performs a word-by-word comparison
//! of the object and its twin and run-length encodes the results of this diff
//! into the space allocated for the twin. Each run consists of a count of
//! identical words, the number of differing words that follow, and the data
//! associated with those differing words." (Section 3.3.)
//!
//! This module implements exactly that encoding, its decoder, and merging of
//! an encoded diff into another copy of the object.

use crate::error::{MuninError, Result};
use crate::object::ObjectId;

/// One run of the run-length encoding: `skip` identical words followed by
/// `data.len()` differing words whose new values are `data`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Run {
    /// Number of identical (unchanged) words preceding the differing words.
    pub skip: u32,
    /// New values of the differing words.
    pub data: Vec<u32>,
}

/// A run-length encoded diff of an object against its twin.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diff {
    /// The runs, in object order.
    pub runs: Vec<Run>,
    /// Length of the object in words (needed to validate application).
    pub words: u32,
}

impl Diff {
    /// Whether the diff contains no changed words.
    pub fn is_empty(&self) -> bool {
        self.runs.iter().all(|r| r.data.is_empty())
    }

    /// Total number of differing words carried by the diff.
    pub fn changed_words(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Number of runs in the encoding.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Size of the encoding on the wire: each run costs two count words plus
    /// its data words, plus one header word for the total length.
    pub fn encoded_bytes(&self) -> usize {
        4 + self
            .runs
            .iter()
            .map(|r| 8 + 4 * r.data.len())
            .sum::<usize>()
    }
}

/// Reads the object bytes as little-endian 32-bit words.
fn words_of(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
}

/// Creates a twin: a private copy of the object made on the first write.
pub fn make_twin(object: &[u8]) -> Vec<u8> {
    object.to_vec()
}

/// Computes the run-length encoded diff of `current` against `twin`.
///
/// # Panics
///
/// Panics if the two buffers differ in length or are not word-aligned;
/// objects are always padded to a word multiple when the segment is laid out.
pub fn encode(current: &[u8], twin: &[u8]) -> Diff {
    assert_eq!(current.len(), twin.len(), "object and twin must be the same size");
    assert_eq!(current.len() % 4, 0, "objects are word-aligned");
    let mut runs = Vec::new();
    let mut skip: u32 = 0;
    let mut pending: Vec<u32> = Vec::new();
    for (cur, old) in words_of(current).zip(words_of(twin)) {
        if cur == old {
            if !pending.is_empty() {
                runs.push(Run {
                    skip,
                    data: std::mem::take(&mut pending),
                });
                skip = 0;
            }
            skip += 1;
        } else {
            pending.push(cur);
        }
    }
    if !pending.is_empty() {
        runs.push(Run { skip, data: pending });
    }
    Diff {
        runs,
        words: (current.len() / 4) as u32,
    }
}

/// Applies `diff` to `target`, overwriting the words the diff marks as
/// changed. `target` is typically a remote copy of the object (or the
/// owner's master copy for `result` objects).
///
/// # Errors
///
/// Returns [`MuninError::ProtocolViolation`] if the diff does not fit the
/// target (length mismatch or runs overrunning the object).
pub fn apply(diff: &Diff, target: &mut [u8]) -> Result<()> {
    if target.len() % 4 != 0 || target.len() / 4 != diff.words as usize {
        return Err(MuninError::ProtocolViolation("diff length mismatch"));
    }
    let mut word_idx: usize = 0;
    for run in &diff.runs {
        word_idx += run.skip as usize;
        let end = word_idx + run.data.len();
        if end > diff.words as usize {
            return Err(MuninError::ProtocolViolation("diff run overruns object"));
        }
        for (i, word) in run.data.iter().enumerate() {
            let off = (word_idx + i) * 4;
            target[off..off + 4].copy_from_slice(&word.to_le_bytes());
        }
        word_idx = end;
    }
    Ok(())
}

/// A pending DUQ entry's twin, tagged with its object.
#[derive(Clone, Debug)]
pub struct Twin {
    /// The object this twin shadows.
    pub object: ObjectId,
    /// Snapshot of the object at the time of the first write since the last
    /// flush.
    pub data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bytes(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = to_bytes(&[1, 2, 3, 4]);
        let d = encode(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.changed_words(), 0);
        assert_eq!(d.run_count(), 0);
    }

    #[test]
    fn single_word_change_is_one_run() {
        let twin = to_bytes(&[0; 8]);
        let mut cur = twin.clone();
        cur[12..16].copy_from_slice(&7u32.to_le_bytes());
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0], Run { skip: 3, data: vec![7] });
        assert_eq!(d.changed_words(), 1);
    }

    #[test]
    fn every_word_changed_is_one_big_run() {
        let twin = to_bytes(&[0; 16]);
        let cur = to_bytes(&[9; 16]);
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].skip, 0);
        assert_eq!(d.changed_words(), 16);
    }

    #[test]
    fn alternate_words_is_worst_case_run_count() {
        // "In the third every other word has changed which is the worst case
        // for our run-length encoding scheme because there are a maximum
        // number of minimum-length runs."
        let twin = to_bytes(&vec![0u32; 64]);
        let cur = to_bytes(
            &(0..64u32)
                .map(|i| if i % 2 == 0 { 5 } else { 0 })
                .collect::<Vec<_>>(),
        );
        let d = encode(&cur, &twin);
        assert_eq!(d.run_count(), 32);
        assert_eq!(d.changed_words(), 32);
        assert!(d.encoded_bytes() > 32 * 4);
    }

    #[test]
    fn apply_reconstructs_the_modified_object() {
        let twin = to_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut cur = twin.clone();
        cur[0..4].copy_from_slice(&100u32.to_le_bytes());
        cur[20..24].copy_from_slice(&200u32.to_le_bytes());
        let d = encode(&cur, &twin);
        let mut other_copy = twin.clone();
        apply(&d, &mut other_copy).unwrap();
        assert_eq!(other_copy, cur);
    }

    #[test]
    fn apply_merges_disjoint_concurrent_writes() {
        // Two writers modify disjoint words of the same object; applying both
        // diffs to the original must yield both changes (the multiple-writers
        // guarantee that defeats false sharing).
        let original = to_bytes(&[0; 8]);
        let mut writer_a = original.clone();
        writer_a[0..4].copy_from_slice(&11u32.to_le_bytes());
        let mut writer_b = original.clone();
        writer_b[28..32].copy_from_slice(&22u32.to_le_bytes());
        let diff_a = encode(&writer_a, &original);
        let diff_b = encode(&writer_b, &original);
        let mut master = original.clone();
        apply(&diff_a, &mut master).unwrap();
        apply(&diff_b, &mut master).unwrap();
        assert_eq!(u32::from_le_bytes(master[0..4].try_into().unwrap()), 11);
        assert_eq!(u32::from_le_bytes(master[28..32].try_into().unwrap()), 22);
    }

    #[test]
    fn apply_rejects_mismatched_length() {
        let twin = to_bytes(&[0; 4]);
        let cur = to_bytes(&[1; 4]);
        let d = encode(&cur, &twin);
        let mut short = to_bytes(&[0; 2]);
        assert!(apply(&d, &mut short).is_err());
    }

    #[test]
    fn encoded_bytes_tracks_runs_and_data() {
        let twin = to_bytes(&[0; 4]);
        let mut cur = twin.clone();
        cur[4..8].copy_from_slice(&1u32.to_le_bytes());
        let d = encode(&cur, &twin);
        // header + one run (8 bytes) + one data word.
        assert_eq!(d.encoded_bytes(), 4 + 8 + 4);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn encode_panics_on_length_mismatch() {
        let _ = encode(&[0u8; 8], &[0u8; 4]);
    }
}
