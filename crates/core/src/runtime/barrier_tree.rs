//! Hierarchical combining-tree barriers.
//!
//! Flat barriers funnel N−1 `BarrierArrive`s into one owner and fan N
//! releases back out — O(N) ingress at a single node per episode, which is
//! the first thing that stops scaling past a few dozen nodes. The tree path
//! spreads both directions over a static k-ary tree (see
//! [`TreeTopology`]): arrivals combine upward (each interior node merges its
//! children's reports into one [`DsmMsg::BarrierCombine`]), releases fan
//! back down ([`DsmMsg::BarrierTreeRelease`]), and no node ever receives
//! more than k + 1 barrier messages per episode.
//!
//! The carrier layer's barrier-relay optimization rides the tree hops: a
//! node's flush bundles are stashed locally at arrival, bundles whose
//! destination lies outside its static subtree ride its upward combine, and
//! each downward release carries the bundles destined for the covered
//! subtree. Every bundle is installed at its destination before the release
//! that frames it is routed to the user thread — the same
//! install-before-dispatch anchor as the flat path.
//!
//! Crash handling: the static tree never changes, but reporting edges do. A
//! node whose static ancestor dies re-reports to the nearest *live* static
//! ancestor, which records it as a dynamic child (releases retrace exactly
//! the dynamic edges). A report that lands after its episode already
//! completed is answered with a direct recovery release. Tree mode with the
//! failure detector enabled flushes eagerly (`FlushMode::Immediate`), so a
//! dying interior node can never take relayed bundles down with it.

use std::sync::Arc;

use munin_sim::{Envelope, NodeId, VirtTime};

use crate::msg::{CarrierUpdate, DsmMsg, RelayUpdate, UpdateItem};
use crate::nodeset::NodeSet;
use crate::stats::{add, bump};
use crate::sync::{BarrierId, TreeTopology};

use super::NodeRuntime;

/// What an advance pass decided to do, computed under the sync lock and
/// acted on outside it (sends never happen while holding the lock).
enum Advance {
    /// Nothing to do: the subtree is incomplete, or nothing grew since the
    /// last upward report.
    Hold,
    /// Interior/leaf: forward the merged arrived set to the live parent.
    Combine {
        gen: u64,
        arrived: NodeSet,
        subtree: NodeSet,
    },
    /// Owner: every live node has arrived — open the episode.
    Open {
        gen: u64,
        children: Vec<(NodeId, NodeSet)>,
    },
}

impl NodeRuntime {
    /// The combining-tree topology for `barrier`, or `None` when the barrier
    /// runs flat (partial-party barriers, clusters below the auto threshold,
    /// or an explicit `MUNIN_BARRIER_FANOUT=flat`). Every node derives the
    /// same answer from shared configuration — no coordination.
    pub(crate) fn tree_topology(&self, barrier: BarrierId) -> Option<TreeTopology> {
        let (owner, parties) = {
            let sync = self.sync.lock();
            if sync.barrier_count() <= barrier.0 as usize {
                return None;
            }
            let b = sync.barrier(barrier);
            (b.owner, b.parties)
        };
        if parties != self.nodes || self.nodes < 2 {
            return None;
        }
        let fanout = self.cfg.effective_barrier_fanout()?;
        Some(TreeTopology::new(owner, self.nodes, fanout))
    }

    /// The user thread's tree-mode arrival: stash this node's own flush
    /// bundles, record the arrival, and advance (which sends the upward
    /// combine — or opens the barrier — if this completed the subtree).
    pub(crate) fn tree_arrive_local(
        self: &Arc<Self>,
        barrier: BarrierId,
        topo: &TreeTopology,
        relay: std::collections::BTreeMap<NodeId, Vec<UpdateItem>>,
    ) {
        if !relay.is_empty() {
            // Every bundle is stashed locally first; the advance below
            // extracts the ones leaving this subtree onto the combine. Each
            // takes its slot in this node's update stream to `dest` *now*,
            // so later direct updates can never be overtaken by a bundle's
            // slower multi-hop route (same argument as the flat relay).
            let staged: Vec<(NodeId, CarrierUpdate)> = relay
                .into_iter()
                .map(|(dest, items)| {
                    add(&self.stats.msgs_piggybacked, 1);
                    self.note_update_sent(&items);
                    let bundle = CarrierUpdate {
                        from: self.node,
                        seq: self.next_update_seq(dest),
                        items,
                        sync_install: false,
                    };
                    (dest, bundle)
                })
                .collect();
            let mut outbox = self.outbox.lock();
            for (dest, bundle) in staged {
                outbox.stash_relay(barrier, dest, bundle);
            }
        }
        {
            let mut sync = self.sync.lock();
            let own = self.node;
            sync.tree_barrier_mut(barrier).arrived.insert(own);
        }
        self.tree_advance(barrier, topo, None);
    }

    /// Checks completeness and acts: forwards a combine upward, or — at the
    /// owner — opens the episode. Idempotent and safe to call from the user
    /// thread (`at == None`), the service thread (`at == Some(arrival)`),
    /// and crash recovery; the `forwarded_count` guard keeps duplicate
    /// triggers from duplicating upward traffic.
    fn tree_advance(
        self: &Arc<Self>,
        barrier: BarrierId,
        topo: &TreeTopology,
        at: Option<VirtTime>,
    ) {
        let dead = self.dead_set();
        let decision = {
            let mut sync = self.sync.lock();
            let t = sync.tree_barrier_mut(barrier);
            let subtree = t
                .subtree
                .get_or_insert_with(|| topo.subtree_of(self.node))
                .clone();
            let mut needed = subtree.clone();
            needed.difference_with(&dead);
            // This node is in its own `needed`, so nothing happens before
            // its own user thread arrives.
            if !t.arrived.is_superset_of(&needed) {
                Advance::Hold
            } else if topo.owner == self.node {
                let gen = t.completed + 1;
                let children = std::mem::take(&mut t.children);
                t.reset_episode(gen);
                // Mirror the episode count into the flat state so tools that
                // read `BarrierState::generation` see the same history.
                sync.barrier_mut(barrier).generation = gen;
                Advance::Open { gen, children }
            } else if t.arrived.count() > t.forwarded_count {
                t.forwarded_count = t.arrived.count();
                Advance::Combine {
                    gen: t.completed + 1,
                    arrived: t.arrived.clone(),
                    subtree,
                }
            } else {
                Advance::Hold
            }
        };
        match decision {
            Advance::Hold => {}
            Advance::Combine {
                gen,
                arrived,
                subtree,
            } => {
                // A dead static parent is skipped: the report re-parents to
                // the nearest live ancestor. None means the owner is dead —
                // the waiting user thread surfaces `NodeDown`.
                let Some(parent) = topo.live_parent_of(self.node, &dead) else {
                    return;
                };
                let outgoing = {
                    let mut outbox = self.outbox.lock();
                    outbox.take_relay_outside(barrier, &subtree)
                };
                let combine = DsmMsg::BarrierCombine {
                    barrier,
                    from: self.node,
                    gen,
                    arrived,
                };
                crate::runtime::proto_trace!(
                    self,
                    "combine barrier {} gen {gen} up to {parent:?}",
                    barrier.0
                );
                let msg = if outgoing.is_empty() {
                    combine
                } else {
                    let relay = outgoing
                        .into_iter()
                        .flat_map(|(dest, bundles)| {
                            bundles.into_iter().map(move |b| RelayUpdate {
                                dest,
                                from: b.from,
                                seq: b.seq,
                                items: b.items,
                            })
                        })
                        .collect();
                    DsmMsg::Carrier {
                        inner: Some(Box::new(combine)),
                        updates: Vec::new(),
                        relay,
                    }
                };
                let _ = match at {
                    None => self.send(parent, msg),
                    Some(t) => self.send_service(parent, msg, t + self.cost.sync_op()),
                };
            }
            Advance::Open { gen, children } => {
                crate::runtime::proto_trace!(self, "barrier {} gen {gen} opens", barrier.0);
                let now = at.unwrap_or_else(|| self.clock.now());
                self.tree_release_children(barrier, gen, children, now);
                // The owner's own release takes the flat self-release path,
                // so message accounting matches episode for episode.
                self.release_barrier_waiters(barrier, vec![self.node], now);
            }
        }
    }

    /// Fans the release down one level: each dynamic child's release carries
    /// the bundles destined for itself (plus this node's coalesced items)
    /// and re-relays the bundles destined for the rest of its covered set.
    fn tree_release_children(
        self: &Arc<Self>,
        barrier: BarrierId,
        gen: u64,
        children: Vec<(NodeId, NodeSet)>,
        now: VirtTime,
    ) {
        for (child, covered) in children {
            if self.is_peer_dead(child) {
                continue;
            }
            let (mut updates, stashed) = {
                let mut outbox = self.outbox.lock();
                (
                    outbox.take_relay(barrier, child),
                    outbox.take_relay_within(barrier, &covered, child),
                )
            };
            if let Some((pending, seq)) = self.take_pending_with_seq(child) {
                add(&self.stats.msgs_piggybacked, 1);
                self.note_update_sent(&pending);
                updates.push(CarrierUpdate {
                    from: self.node,
                    seq,
                    items: pending,
                    sync_install: false,
                });
            }
            let relay: Vec<RelayUpdate> = stashed
                .into_iter()
                .flat_map(|(dest, bundles)| {
                    bundles.into_iter().map(move |b| RelayUpdate {
                        dest,
                        from: b.from,
                        seq: b.seq,
                        items: b.items,
                    })
                })
                .collect();
            let release = DsmMsg::BarrierTreeRelease { barrier, gen };
            let msg = if updates.is_empty() && relay.is_empty() {
                release
            } else {
                DsmMsg::Carrier {
                    inner: Some(Box::new(release)),
                    updates,
                    relay,
                }
            };
            let _ = self.send_service(child, msg, now + self.cost.sync_op());
        }
    }

    /// Handles an upward report (service thread).
    pub(crate) fn handle_barrier_combine(
        self: &Arc<Self>,
        env: Envelope,
        barrier: BarrierId,
        from: NodeId,
        gen: u64,
        arrived: NodeSet,
    ) {
        self.charge_sys(self.cost.sync_op());
        let Some(topo) = self.tree_topology(barrier) else {
            // A combine at a node whose configuration says "flat" means the
            // cluster disagrees about the topology — loud, not silent.
            bump(&self.stats.runtime_errors);
            debug_assert!(false, "BarrierCombine received with tree mode off");
            return;
        };
        if topo.owner == self.node {
            bump(&self.stats.barrier_owner_ingress);
        }
        let stale = {
            let mut sync = self.sync.lock();
            let t = sync.tree_barrier_mut(barrier);
            if gen <= t.completed {
                true
            } else {
                if gen > t.completed + 1 {
                    // An episode from the future can only mean lost state;
                    // merge leniently so the run can limp to a diagnosis.
                    bump(&self.stats.runtime_errors);
                    debug_assert!(false, "combine for episode {gen} > {} + 1", t.completed);
                }
                t.merge_report(from, &arrived);
                false
            }
        };
        if stale {
            // The sender missed this episode's release (its parent died
            // between absorbing its report and forwarding the release).
            // Answer directly; a plain message is safe because tree mode
            // with the detector on never relays bundles.
            crate::runtime::proto_trace!(
                self,
                "stale combine gen {gen} from {from:?}; releasing directly"
            );
            let _ = self.send_service(
                from,
                DsmMsg::BarrierTreeRelease { barrier, gen },
                env.arrival + self.cost.sync_op(),
            );
            return;
        }
        self.tree_advance(barrier, &topo, Some(env.arrival));
    }

    /// Handles a downward release (service thread): re-forward to dynamic
    /// children, reset the episode, and route the plain release to this
    /// node's own waiting user thread.
    pub(crate) fn handle_barrier_tree_release(
        self: &Arc<Self>,
        env: Envelope,
        barrier: BarrierId,
        gen: u64,
    ) {
        self.charge_sys(self.cost.sync_op());
        let children = {
            let mut sync = self.sync.lock();
            let t = sync.tree_barrier_mut(barrier);
            if gen <= t.completed {
                // A duplicate (crash-recovery re-send); already released.
                return;
            }
            if gen > t.completed + 1 {
                bump(&self.stats.runtime_errors);
                debug_assert!(false, "release for episode {gen} > {} + 1", t.completed);
            }
            let children = std::mem::take(&mut t.children);
            t.reset_episode(gen);
            children
        };
        self.tree_release_children(barrier, gen, children, env.arrival);
        // The received release IS this node's release — no extra wire
        // message, just the hand-off to the parked user thread.
        self.route_to_user(env, DsmMsg::BarrierRelease { barrier });
    }

    /// Re-evaluates every tree barrier after `dead` is confirmed gone.
    /// Called from crash recovery (and defensively from the waiting user
    /// thread, which may observe the death before recovery finishes).
    ///
    /// Two distinct effects:
    /// * `dead` was a static *ancestor*: it may have swallowed this node's
    ///   report without forwarding it. Resetting `forwarded_count` makes the
    ///   advance re-send the merged report — to the nearest live ancestor,
    ///   since `live_parent_of` now skips the corpse. Re-sends merge
    ///   idempotently, so over-sending is safe and under-sending is not.
    /// * `dead` was in this node's subtree (or anywhere, at the owner): its
    ///   removal from `needed` may complete the subtree right now.
    pub(crate) fn tree_handle_death(self: &Arc<Self>, dead: NodeId) {
        let barriers = { self.sync.lock().barrier_count() };
        for i in 0..barriers {
            let barrier = BarrierId(i as u32);
            let Some(topo) = self.tree_topology(barrier) else {
                continue;
            };
            if topo.owner != self.node && topo.is_ancestor_of(dead, self.node) {
                let mut sync = self.sync.lock();
                sync.tree_barrier_mut(barrier).forwarded_count = 0;
            }
            self.tree_advance(barrier, &topo, Some(self.clock.now()));
        }
    }
}
