//! The runtime service loop: handling requests from other nodes.
//!
//! This is the reproduction of the paper's "Munin worker threads": one thread
//! per node that receives protocol messages and performs the corresponding
//! directory, memory, and synchronization work. Handlers never block waiting
//! for a remote reply; requests that hit a directory entry in transition are
//! deferred and retried when the transition completes.

use std::sync::Arc;

use munin_sim::{Envelope, NodeId, Receiver};

use crate::annotation::SharingAnnotation;
use crate::copyset::CopySet;
use crate::diff;
use crate::directory::AccessRights;
use crate::msg::{
    CarrierUpdate, DsmMsg, FetchKind, ReduceOp, RelayUpdate, UpdateItem, UpdatePayload,
};
use crate::object::ObjectId;
use crate::stats::{add, bump};
use crate::sync::RemoteAcquireAction;

use super::NodeRuntime;

impl NodeRuntime {
    /// Runs the service loop until a `Shutdown` message arrives. Intended to
    /// run on its own OS thread, with the node's network receiver moved in.
    pub fn server_loop(self: Arc<Self>, receiver: Receiver<DsmMsg>) {
        self.health_start();
        loop {
            let Ok((env, msg)) = receiver.recv() else {
                // All senders dropped (or the inbox was closed by the abort
                // path): the run is over.
                return;
            };
            if self.handle_incoming(env, msg) {
                self.drain_unacked(&receiver);
                return;
            }
        }
    }

    /// Processes one incoming transmission: unwraps the reliability layer
    /// (acks, dedup, in-order release) when present, then dispatches every
    /// deliverable protocol message. Returns `true` once `Shutdown` has been
    /// dispatched.
    pub(crate) fn handle_incoming(self: &Arc<Self>, env: Envelope, msg: DsmMsg) -> bool {
        if self.health_enabled() && env.src != self.node {
            // Confirmed-dead peers are past tense: recovery already pruned
            // them from every copyset and re-homed their objects, so a
            // zombie message (a frozen node thawing after the detection
            // window, or late retransmissions) must not re-enter the
            // protocol. Liveness traffic from everyone else refreshes the
            // detector.
            if self.is_peer_dead(env.src) {
                crate::runtime::proto_trace!(
                    self,
                    "drop zombie {} from {:?}",
                    msg.class(),
                    env.src
                );
                return false;
            }
            self.health_heard(env.src);
        }
        match msg {
            DsmMsg::Tick => {
                self.obs.record(
                    env.arrival.as_nanos(),
                    crate::obs::EventKind::TimerFire,
                    |_| {},
                );
                self.reliability_tick();
                false
            }
            DsmMsg::HealthTick => {
                self.obs.record(
                    env.arrival.as_nanos(),
                    crate::obs::EventKind::TimerFire,
                    |_| {},
                );
                self.health_tick();
                false
            }
            // The last-heard refresh above is the heartbeat's entire job.
            DsmMsg::Heartbeat => false,
            DsmMsg::PeerDown { node } => {
                self.confirm_peer_dead(node, true);
                false
            }
            DsmMsg::NetAck { upto } => {
                self.on_net_ack(env.src, upto);
                false
            }
            DsmMsg::Reliable { id, ack, inner } => {
                self.on_net_ack(env.src, ack);
                let mut shutdown = false;
                for released in self.reliable_deliver(env.src, id, *inner) {
                    shutdown |= self.dispatch(env, released);
                }
                shutdown
            }
            msg => self.dispatch(env, msg),
        }
    }

    /// Routes one protocol message to its handler. Returns `true` for
    /// `Shutdown`.
    fn dispatch(self: &Arc<Self>, env: Envelope, msg: DsmMsg) -> bool {
        let shutdown = matches!(msg, DsmMsg::Shutdown);
        if let DsmMsg::WorkerDone { from } = msg {
            // Completion notifications go to a dedicated channel so they
            // cannot interleave with a protocol operation the root's user
            // thread is still performing.
            let _ = self.done_tx.send(from);
        } else if matches!(msg, DsmMsg::Carrier { .. }) {
            // Carriers are unwrapped here — never routed to the user
            // thread directly — so the piggybacked payload is always
            // installed before the framed message is dispatched.
            self.handle_request(env, msg);
            self.process_deferred();
        } else if msg.is_user_reply() {
            self.route_to_user(env, msg);
        } else {
            self.handle_request(env, msg);
            self.process_deferred();
        }
        shutdown
    }

    /// Post-shutdown drain: while this node still holds unacknowledged
    /// outbound messages, keep servicing the reliability layer (acks in,
    /// retransmits out, ack-and-discard any late inner messages) so peers
    /// can finish their own drains, up to a bounded wall-clock deadline.
    /// Without this, a node whose final messages were lost would exit and
    /// strand its peers' retransmit loops until *their* watchdogs fire.
    fn drain_unacked(self: &Arc<Self>, receiver: &Receiver<DsmMsg>) {
        if !self.reliability_enabled() {
            return;
        }
        // Ack the `Shutdown` frame (and anything else owed) right away: the
        // sender is blocked in its own drain waiting for it, and this node's
        // tick never fires again once the service loop exits.
        self.flush_owed_acks();
        // Messages to confirmed-dead peers will never be acked; waiting out
        // the deadline for them would serialize a full second per survivor.
        for n in self.dead_set().iter() {
            if n != self.node {
                self.purge_peer_link(n);
            }
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(1);
        while self.has_unacked() && std::time::Instant::now() < deadline {
            // A tick is always scheduled while messages are unacked, so this
            // recv wakes at least once per retransmit interval.
            let Ok((env, msg)) = receiver.recv() else {
                return;
            };
            match msg {
                DsmMsg::Tick => self.reliability_tick(),
                DsmMsg::NetAck { upto } => self.on_net_ack(env.src, upto),
                DsmMsg::Reliable { id, ack, inner } => {
                    self.on_net_ack(env.src, ack);
                    // Deliverable inners are acknowledged (the dedup frontier
                    // advances) but discarded: the run is over, and anything
                    // arriving now is a retransmission of work already done.
                    let _ = self.reliable_deliver(env.src, id, *inner);
                }
                _ => {}
            }
        }
        // Acks owed for frames that arrived *during* the drain (a peer's
        // retransmissions) flush here so the peer's own drain completes
        // instead of running out its deadline against a closed inbox.
        self.flush_owed_acks();
    }

    /// Dispatches one incoming request. Replies are timestamped from the
    /// request's arrival time plus the service cost, so a busy user thread
    /// does not delay (in virtual time) the service this node provides.
    pub(crate) fn handle_request(self: &Arc<Self>, env: Envelope, msg: DsmMsg) {
        let now = env.arrival;
        match msg {
            DsmMsg::ObjectFetch {
                object,
                access,
                requester,
            } => self.handle_object_fetch(env, object, access, requester),
            DsmMsg::Invalidate { object, requester } => {
                self.handle_invalidate(env, object, requester)
            }
            DsmMsg::Update {
                items,
                requester,
                seq,
                needs_ack,
            } => self.handle_update(env, items, requester, seq, needs_ack, now),
            DsmMsg::RelayFanout { items, origin, seq } => {
                self.handle_relay_fanout(env, items, origin, seq, now)
            }
            DsmMsg::RelayForward { items, origin, seq } => {
                self.handle_relay_forward(env, items, origin, seq, now)
            }
            DsmMsg::CopysetQuery { objects, requester } => {
                self.handle_copyset_query(env, objects, requester)
            }
            DsmMsg::OwnerCopysetQuery { objects, requester } => {
                self.handle_owner_copyset_query(objects, requester, now)
            }
            DsmMsg::ReduceRequest {
                object,
                offset,
                op,
                requester,
            } => self.handle_reduce(object, offset, op, requester, now),
            DsmMsg::LockAcquire { lock, requester } => {
                self.handle_lock_acquire(lock, requester, now)
            }
            DsmMsg::BarrierArrive { barrier, from } => {
                self.handle_barrier_arrive(barrier, from, now)
            }
            DsmMsg::BarrierCombine {
                barrier,
                from,
                gen,
                arrived,
            } => self.handle_barrier_combine(env, barrier, from, gen, arrived),
            DsmMsg::BarrierTreeRelease { barrier, gen } => {
                self.handle_barrier_tree_release(env, barrier, gen)
            }
            DsmMsg::Carrier {
                inner,
                updates,
                relay,
            } => self.handle_carrier(env, inner, updates, relay),
            DsmMsg::Adopt {
                object,
                access,
                requester,
            } => self.handle_adopt(env, object, access, requester),
            // Replies and control messages are routed before we get here.
            other => {
                debug_assert!(
                    other.is_user_reply(),
                    "unexpected request message: {other:?}"
                );
            }
        }
    }

    /// Unwraps a carrier: installs the piggybacked payload, stashes or
    /// installs relayed bundles, then dispatches the framed message through
    /// the normal routing rules. The install-before-dispatch order is the
    /// carrier layer's correctness anchor: a piggybacked lock grant or
    /// barrier release can never reach the user thread ahead of the data
    /// that must be visible when it resumes.
    fn handle_carrier(
        self: &Arc<Self>,
        env: Envelope,
        inner: Option<Box<DsmMsg>>,
        updates: Vec<CarrierUpdate>,
        relay: Vec<RelayUpdate>,
    ) {
        // A grant or release *gates an acquire*: the blocked user thread
        // resumes the moment it is routed, so it must never outrun its
        // bundles. If any bundle cannot be applied yet, the whole carrier
        // (inner included) is re-queued and retried — deadlock-free, because
        // the receiver's user thread is parked in `wait_reply` (it cannot
        // hold busy/pinned entries) and any missing stream number is already
        // on the wire. Every other inner keeps legacy ordering: it is
        // dispatched now and only the blocked bundles wait (an
        // `InvalidateAck` *must* go through — its requester is mid-write-
        // fault, which is exactly what blocks the bundle).
        let gates_acquire = matches!(
            inner.as_deref(),
            Some(DsmMsg::LockGrant { .. })
                | Some(DsmMsg::BarrierRelease { .. })
                | Some(DsmMsg::BarrierTreeRelease { .. })
        );
        if gates_acquire {
            let waiting = self.try_install_carrier_updates(env, updates);
            if !waiting.is_empty() {
                crate::runtime::proto_trace!(self, "defer whole carrier (gating inner)");
                self.deferred.lock().push((
                    env,
                    DsmMsg::Carrier {
                        inner,
                        updates: waiting,
                        relay,
                    },
                ));
                return;
            }
        } else {
            self.install_carrier_updates(env, updates);
        }
        if !relay.is_empty() {
            // Relays only ever ride barrier traffic — flat arrives, or the
            // tree path's combines and releases (a bundle can transit
            // several tree hops before reaching its destination). The
            // barrier id keys the stash so overlapping episodes cannot mix.
            let barrier = match inner.as_deref() {
                Some(DsmMsg::BarrierArrive { barrier, .. })
                | Some(DsmMsg::BarrierCombine { barrier, .. })
                | Some(DsmMsg::BarrierTreeRelease { barrier, .. }) => Some(*barrier),
                _ => None,
            };
            for r in relay {
                let bundle = CarrierUpdate {
                    from: r.from,
                    seq: r.seq,
                    items: r.items,
                    sync_install: false,
                };
                if r.dest == self.node {
                    // The owner's own share is installed now — before the
                    // arrival below is counted. (If it has to defer, the trip
                    // still cannot release anyone ahead of the install: this
                    // node's own arrival is outstanding until its user thread
                    // clears the blocking state, and `process_deferred` runs
                    // first.)
                    self.install_carrier_updates(env, vec![bundle]);
                } else if let Some(b) = barrier {
                    self.outbox.lock().stash_relay(b, r.dest, bundle);
                } else {
                    // A relay without a framing barrier message is a
                    // protocol bug; dropping it silently would diverge the
                    // destination, so fail loudly enough to diagnose.
                    bump(&self.stats.runtime_errors);
                    crate::runtime::proto_trace!(
                        self,
                        "dropping relay bundle without a barrier frame (dest {:?})",
                        r.dest
                    );
                    debug_assert!(false, "relay bundles require a barrier frame");
                }
            }
        }
        let Some(inner) = inner else { return };
        let inner = *inner;
        if let DsmMsg::WorkerDone { from } = inner {
            let _ = self.done_tx.send(from);
        } else if inner.is_user_reply() {
            self.route_to_user(env, inner);
        } else {
            self.handle_request(env, inner);
        }
    }

    /// The unified carrier-install path: applies piggybacked update bundles
    /// with the same pin/busy discipline as standalone updates. A bundle
    /// whose directory entries are mid-transition is re-queued as a bare
    /// carrier frame and retried when the transition completes, exactly like
    /// a deferred `Update`.
    pub(crate) fn install_carrier_updates(
        self: &Arc<Self>,
        env: Envelope,
        updates: Vec<CarrierUpdate>,
    ) {
        for bundle in self.try_install_carrier_updates(env, updates) {
            self.deferred.lock().push((
                env,
                DsmMsg::Carrier {
                    inner: None,
                    updates: vec![bundle],
                    relay: Vec::new(),
                },
            ));
        }
    }

    /// Applies every bundle that can be applied *now* and returns the rest
    /// (blocked on a busy/pinned entry, or ahead of its source's sequence
    /// stream). The caller decides how the returned bundles wait.
    fn try_install_carrier_updates(
        self: &Arc<Self>,
        env: Envelope,
        updates: Vec<CarrierUpdate>,
    ) -> Vec<CarrierUpdate> {
        let mut waiting = Vec::new();
        for bundle in updates {
            let blocked = {
                let dir = self.dir.lock();
                bundle.items.iter().any(|i| {
                    let st = dir.entry(i.object).state;
                    st.busy || st.pinned
                })
            };
            if blocked {
                crate::runtime::proto_trace!(self, "defer carrier bundle from {:?}", bundle.from);
                if !bundle.sync_install {
                    self.obs.record(
                        env.arrival.as_nanos(),
                        crate::obs::EventKind::UpdateDefer,
                        |ev| {
                            ev.peer = Some(bundle.from);
                            ev.seq = Some(bundle.seq);
                        },
                    );
                }
                waiting.push(bundle);
                continue;
            }
            if bundle.sync_install {
                self.install_sync_items(bundle.items);
                continue;
            }
            // Flush bundles participate in the per-source update sequence
            // stream: a bundle ahead of the stream (a lower-numbered direct
            // update or bundle still in flight) defers like a busy entry; a
            // stale one (duplicate delivery) is dropped.
            match self.check_update_seq(bundle.from, bundle.seq) {
                super::SeqCheck::Apply => {
                    crate::runtime::proto_trace!(
                        self,
                        "install carrier bundle from {:?} seq {}: {:?}",
                        bundle.from,
                        bundle.seq,
                        bundle.items.iter().map(|i| i.object).collect::<Vec<_>>()
                    );
                    self.obs.record(
                        env.arrival.as_nanos(),
                        crate::obs::EventKind::UpdateInstall,
                        |ev| {
                            ev.peer = Some(bundle.from);
                            ev.seq = Some(bundle.seq);
                        },
                    );
                    self.apply_update_items(bundle.items, false, env.arrival);
                }
                super::SeqCheck::Early => {
                    crate::runtime::proto_trace!(
                        self,
                        "defer early carrier bundle from {:?} seq {}",
                        bundle.from,
                        bundle.seq
                    );
                    self.obs.record(
                        env.arrival.as_nanos(),
                        crate::obs::EventKind::UpdateDefer,
                        |ev| {
                            ev.peer = Some(bundle.from);
                            ev.seq = Some(bundle.seq);
                        },
                    );
                    waiting.push(bundle);
                }
                super::SeqCheck::Stale => {
                    crate::runtime::proto_trace!(
                        self,
                        "drop stale carrier bundle from {:?} seq {}",
                        bundle.from,
                        bundle.seq
                    );
                }
            }
        }
        waiting
    }

    /// Installs data associated with a synchronization object
    /// (`AssociateDataAndSynch` payloads on a lock grant): full images are
    /// written even where no local copy exists, and migratory objects hand
    /// ownership and write access to the new lock holder. Each entry is
    /// marked busy across its install so a concurrently arriving update or
    /// fetch for the same object is deferred instead of interleaving with
    /// the install.
    fn install_sync_items(self: &Arc<Self>, items: Vec<UpdateItem>) {
        for item in items {
            let UpdatePayload::Full(data) = item.payload else {
                debug_assert!(false, "sync installs always carry full images");
                continue;
            };
            let object = item.object;
            self.charge_sys(self.cost.copy(data.len() as u64));
            {
                let mut dir = self.dir.lock();
                dir.entry_mut(object).state.busy = true;
            }
            self.install_object_bytes(object, &data);
            {
                let mut dir = self.dir.lock();
                let e = dir.entry_mut(object);
                if e.annotation == SharingAnnotation::Migratory {
                    // Migratory data travels with the lock: the new holder
                    // gets ownership and write access immediately.
                    self.set_entry_rights(e, AccessRights::ReadWrite);
                    e.state.owned = true;
                    e.probable_owner = self.node;
                } else if !e.state.rights.allows_write() {
                    self.set_entry_rights(e, AccessRights::Read);
                }
                e.state.busy = false;
            }
            self.note_unblocked_and_process_deferred();
        }
    }

    /// Handles an adoption request: the requester's orphan-recovery round
    /// (see `refetch_orphan`) identified this node as the lowest-id
    /// surviving holder of an object whose owner died. Claim ownership if
    /// the local copy is still valid, then serve the blocked fetch exactly
    /// as an owner would.
    fn handle_adopt(
        self: &Arc<Self>,
        env: Envelope,
        object: ObjectId,
        access: FetchKind,
        requester: NodeId,
    ) {
        {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.busy || entry.state.pinned {
                // Mid-transition: retry once it completes, as a fetch would.
                drop(dir);
                self.deferred.lock().push((
                    env,
                    DsmMsg::Adopt {
                        object,
                        access,
                        requester,
                    },
                ));
                return;
            }
            if !entry.state.owned && entry.state.rights.allows_read() {
                entry.state.owned = true;
                entry.probable_owner = self.node;
                bump(&self.stats.objects_rehomed);
                self.obs.record(
                    env.arrival.as_nanos(),
                    crate::obs::EventKind::OwnershipRecovered,
                    |ev| {
                        ev.object = Some(object);
                        ev.peer = Some(requester);
                    },
                );
                crate::runtime::proto_trace!(self, "adopted orphan {object:?} for {requester:?}");
            }
        }
        // Owned now (or already): the normal fetch path serves it, with the
        // usual ownership-transfer semantics for write/migratory access. If
        // the local copy was invalidated since the requester's query round,
        // this forwards along the (recovery-redirected) hint chain instead.
        self.handle_object_fetch(env, object, access, requester);
    }

    /// Serves (or forwards, or defers) an object fetch.
    fn handle_object_fetch(
        self: &Arc<Self>,
        env: Envelope,
        object: ObjectId,
        access: FetchKind,
        requester: NodeId,
    ) {
        let now = env.arrival;
        enum Action {
            Defer,
            Forward(NodeId),
            Reply {
                ownership: bool,
                copyset: CopySet,
                writable: bool,
                data: Vec<u8>,
            },
        }
        let action = {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.busy || entry.state.pinned {
                // Mid-transition, or the user thread holds the rights for an
                // in-flight memory access: serve the fetch only after the
                // transition/access completes, so a served copy can never
                // miss a locally checked-but-not-yet-performed write.
                Action::Defer
            } else if !entry.state.owned {
                let hint = if entry.probable_owner == self.node {
                    // Stale self-hint: fall back to the home node of last resort.
                    entry.home
                } else {
                    entry.probable_owner
                };
                Action::Forward(hint)
            } else {
                let annotation = entry.annotation;
                let params = entry.params;
                let has_copy = entry.state.rights.allows_read();
                // Stable-sharing check: a fetch for a producer-consumer object
                // whose sharing relationship is already fixed, from a node
                // outside that relationship, is the runtime error the paper
                // describes. We record it and still serve the data.
                if params.is_stable()
                    && entry.state.copyset_fixed
                    && !entry.copyset.contains(requester)
                {
                    bump(&self.stats.runtime_errors);
                }
                let single_writer_transfer = params.uses_invalidate()
                    && (matches!(access, FetchKind::Write)
                        || annotation == SharingAnnotation::Migratory);
                // The object bytes are copied inside this directory-lock
                // scope: the not-pinned guard above and the copy are then
                // atomic with respect to the user thread's pinned accesses,
                // so a served copy can never be torn mid-access (the VM-trap
                // mode's lock-free user copies rely on this; the explicit
                // mode previously relied on the segment mutex for the same
                // guarantee at whole-access granularity).
                if single_writer_transfer {
                    // Conventional write miss or any migratory access:
                    // ownership (and for migratory, the only copy) moves to
                    // the requester; the local copy is invalidated.
                    let mut handed_copyset = entry.copyset.clone();
                    handed_copyset.remove(requester);
                    self.set_entry_rights(entry, AccessRights::Invalid);
                    entry.state.owned = false;
                    entry.copyset = CopySet::EMPTY;
                    entry.probable_owner = requester;
                    Action::Reply {
                        ownership: true,
                        copyset: handed_copyset,
                        writable: true,
                        data: self.object_bytes(object),
                    }
                } else if has_copy {
                    // Read replica (or a read fetch of an update-protocol
                    // object): hand out a copy and remember the replica.
                    entry.copyset.insert(requester);
                    if params.uses_invalidate() {
                        // Single-writer protocols write-protect the owner's
                        // copy so its next write re-invalidates the replicas.
                        self.set_entry_rights(entry, AccessRights::Read);
                    }
                    Action::Reply {
                        ownership: false,
                        copyset: CopySet::EMPTY,
                        writable: false,
                        data: self.object_bytes(object),
                    }
                } else {
                    // First touch of an object the owner never materialized:
                    // serve a zero-filled page. For fixed-owner objects the
                    // owner keeps ownership (flushes must keep arriving
                    // here); otherwise ownership follows the first toucher.
                    let keep_ownership = params.has_fixed_owner();
                    if !keep_ownership {
                        entry.state.owned = false;
                        entry.probable_owner = requester;
                    } else {
                        entry.copyset.insert(requester);
                    }
                    Action::Reply {
                        ownership: !keep_ownership,
                        copyset: CopySet::EMPTY,
                        writable: false,
                        data: self.object_bytes(object),
                    }
                }
            }
        };
        // The directory-lookup cost is charged once per request actually
        // examined, not per defer-retry cycle: the number of retries depends
        // on host thread interleaving and must not perturb virtual time.
        if !matches!(action, Action::Defer) {
            self.charge_sys(self.cost.dir_op());
        }
        match action {
            Action::Defer => {
                crate::runtime::proto_trace!(self, "defer fetch {object:?} from {requester:?}");
                self.deferred.lock().push((
                    env,
                    DsmMsg::ObjectFetch {
                        object,
                        access,
                        requester,
                    },
                ));
            }
            Action::Forward(next) => {
                let _ = self.send_service(
                    next,
                    DsmMsg::ObjectFetch {
                        object,
                        access,
                        requester,
                    },
                    now + self.cost.dir_op(),
                );
            }
            Action::Reply {
                ownership,
                copyset,
                writable,
                data,
            } => {
                crate::runtime::proto_trace!(
                    self,
                    "serve fetch {object:?} to {requester:?} (ownership={ownership} writable={writable}, arrival={}ns)",
                    env.arrival.as_nanos()
                );
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::FetchServe, |ev| {
                        ev.object = Some(object);
                        ev.peer = Some(requester);
                    });
                // The served bytes are live memory, so any outbox items for
                // this (requester, object) pair are subsumed — and if the
                // object is written again before they drain, delivering them
                // later would regress the requester's fresh copy.
                if self.cfg.piggyback {
                    self.outbox.lock().drop_pending_object(requester, object);
                }
                // Charge the copy cost the prototype pays when it assembles
                // the reply (the copy itself happened under the directory
                // lock above).
                let size = self.table.object(object).size;
                self.charge_sys(self.cost.copy(size as u64));
                let _ = self.send_service(
                    requester,
                    DsmMsg::ObjectData {
                        object,
                        data,
                        ownership,
                        copyset,
                        writable,
                    },
                    now + self.cost.dir_op() + self.cost.copy(size as u64),
                );
            }
        }
    }

    /// Invalidates the local copy of an object and acknowledges.
    ///
    /// If the local user thread holds the entry pinned for an in-flight
    /// memory access, the invalidation is deferred: invalidating now would
    /// lose the checked-but-not-yet-performed write. Pins are released
    /// without blocking, so the deferral cannot deadlock (unlike deferring on
    /// `busy`, whose holder may itself be waiting for this node's reply).
    fn handle_invalidate(self: &Arc<Self>, env: Envelope, object: ObjectId, requester: NodeId) {
        let now = env.arrival;
        // Pinned guard, flush encode, and the invalidation itself run under
        // ONE directory lock, so a pin cannot start (and a write cannot land
        // unseen) anywhere between the guard and the rights change. The lock
        // order is dir → duq → memory, consistent with every other path
        // (`phase_change` takes dir before duq for this reason).
        let flush_payload = {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.pinned {
                // No virtual-time charge on a deferred attempt: retry counts
                // are host-timing dependent.
                drop(dir);
                self.deferred
                    .lock()
                    .push((env, DsmMsg::Invalidate { object, requester }));
                return;
            }
            let flush_first = entry.state.dirty && entry.params.allows_multiple_writers();
            let payload = if flush_first {
                // "If a Munin node with a dirty copy of an object receives an
                // invalidation request for that object and multiple writers
                // are allowed, any pending local updates are propagated."
                let twin = {
                    let mut duq = self.duq.lock();
                    duq.remove(object).and_then(|e| e.twin)
                };
                match twin {
                    Some(twin) => {
                        let d = self.with_object_mem(object, |cur| {
                            let mut scratch = self.diff_scratch.lock();
                            scratch.encode(cur, &twin)
                        });
                        self.duq.lock().recycle_twin(twin);
                        Some(UpdatePayload::Diff(d))
                    }
                    None => Some(UpdatePayload::Full(self.object_bytes(object))),
                }
            } else {
                if entry.state.dirty && !entry.params.allows_multiple_writers() {
                    // Invalidation of a dirty single-writer copy: detected
                    // runtime error (should be impossible under a correct
                    // protocol).
                    bump(&self.stats.runtime_errors);
                }
                None
            };
            self.set_entry_rights(entry, AccessRights::Invalid);
            entry.state.dirty = false;
            entry.state.owned = false;
            entry.probable_owner = requester;
            payload
        };
        self.charge_sys(self.cost.dir_op());
        bump(&self.stats.invalidations_received);
        match flush_payload {
            // The dirty-copy flush rides the acknowledgement it would
            // otherwise race ahead of: one carrier instead of an Update
            // followed by an InvalidateAck to the same destination. The
            // receiver installs the update before the ack is routed, which
            // is the same order per-link FIFO gave the two messages.
            Some(payload) if self.cfg.piggyback => {
                add(&self.stats.msgs_piggybacked, 1);
                let _ = self.send_service(
                    requester,
                    DsmMsg::Carrier {
                        inner: Some(Box::new(DsmMsg::InvalidateAck { object })),
                        updates: vec![CarrierUpdate {
                            from: self.node,
                            seq: self.next_update_seq(requester),
                            items: vec![UpdateItem { object, payload }],
                            sync_install: false,
                        }],
                        relay: Vec::new(),
                    },
                    now + self.cost.dir_op(),
                );
                return;
            }
            Some(payload) => {
                let _ = self.send_service(
                    requester,
                    DsmMsg::Update {
                        items: vec![UpdateItem { object, payload }],
                        requester: self.node,
                        seq: self.next_update_seq(requester),
                        needs_ack: false,
                    },
                    now + self.cost.dir_op(),
                );
            }
            None => {}
        }
        let _ = self.send_service(
            requester,
            DsmMsg::InvalidateAck { object },
            now + self.cost.dir_op(),
        );
    }

    /// Applies incoming delayed updates to the local copies.
    ///
    /// If any updated object is mid-fetch on this node (its busy bit is
    /// set), the whole update is deferred until the fetch completes: the
    /// in-flight object data was served *before* this update was applied at
    /// the server, so discarding the update as "no copy here" would leave the
    /// just-fetched copy permanently stale (the same window the copyset-query
    /// deferral closes; diffs carry absolute word values, so applying the
    /// deferred update on top of the installed copy is exact). The sender
    /// waits for the deferred ack as part of its release, which also
    /// guarantees it cannot issue a *newer* update for the object that this
    /// deferred one could regress.
    fn handle_update(
        self: &Arc<Self>,
        env: Envelope,
        items: Vec<UpdateItem>,
        requester: NodeId,
        seq: u64,
        needs_ack: bool,
        now: munin_sim::VirtTime,
    ) {
        {
            let dir = self.dir.lock();
            // Deferred while any target is mid-fetch (busy) *or* covered by
            // an in-flight pinned access: applying concurrently with a
            // pinned access would interleave with the user thread's copy at
            // byte granularity (the VM-trap mode's user copies are
            // lock-free). Pins are released without blocking, so this
            // cannot deadlock — same argument as the invalidate deferral.
            if items.iter().any(|i| {
                let st = dir.entry(i.object).state;
                st.busy || st.pinned
            }) {
                drop(dir);
                crate::runtime::proto_trace!(self, "defer update from {requester:?}");
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateDefer, |ev| {
                        ev.peer = Some(requester);
                        ev.seq = Some(seq);
                    });
                self.deferred.lock().push((
                    env,
                    DsmMsg::Update {
                        items,
                        requester,
                        seq,
                        needs_ack,
                    },
                ));
                return;
            }
        }
        // Sequence-stream check (see `DsmMsg::Update::seq`): an update ahead
        // of its source's stream defers until the in-flight lower-numbered
        // transmission (e.g. a barrier-relayed bundle on another link)
        // arrives; a stale one is an injected duplicate and must not be
        // re-applied over newer data.
        match self.check_update_seq(requester, seq) {
            super::SeqCheck::Apply => {
                // The flow-arrow sink ("f") matching the sender's
                // `next_update_seq` allocation.
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateInstall, |ev| {
                        ev.peer = Some(requester);
                        ev.seq = Some(seq);
                    });
            }
            super::SeqCheck::Early => {
                crate::runtime::proto_trace!(
                    self,
                    "defer early update from {requester:?} seq {seq}"
                );
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateDefer, |ev| {
                        ev.peer = Some(requester);
                        ev.seq = Some(seq);
                    });
                self.deferred.lock().push((
                    env,
                    DsmMsg::Update {
                        items,
                        requester,
                        seq,
                        needs_ack,
                    },
                ));
                return;
            }
            super::SeqCheck::Stale => {
                crate::runtime::proto_trace!(
                    self,
                    "drop stale update from {requester:?} seq {seq}"
                );
                if needs_ack {
                    // The original delivery was acknowledged when it was
                    // applied; ack the duplicate too so a sender counting
                    // per-message acks is no worse off than under the legacy
                    // re-apply behaviour.
                    let _ = self.send_service(
                        requester,
                        DsmMsg::UpdateAck {
                            count: 0,
                            owned_copysets: Vec::new(),
                        },
                        now,
                    );
                }
                return;
            }
        }
        let (applied, service, owned_copysets) = self.apply_update_items(items, needs_ack, now);
        if needs_ack {
            // The ack is itself a carrier opportunity: any coalesced items
            // queued for the flusher ride it home.
            self.send_service_with_pending(
                requester,
                DsmMsg::UpdateAck {
                    count: applied,
                    owned_copysets,
                },
                now + service,
            );
        }
    }

    /// Handles an owner-cooperative fan-out bundle: installs the items this
    /// node owns, then re-fans them to the other members of its
    /// *authoritative* copyset (the union of every determined set with the
    /// replicas recorded while serving fetches) — the flusher never runs a
    /// determination round or heals stragglers for these objects. Items this
    /// node does not own (the origin's ownership hint was stale) are bounced
    /// back in the ack as `rejected`, neither installed nor distributed; the
    /// origin repairs its hint and falls back to a direct broadcast.
    ///
    /// Defer and sequencing rules mirror `handle_update`: the bundle rides
    /// the origin→owner update stream, and a stale duplicate is answered
    /// with an empty ack so the origin's per-message accounting stays whole.
    fn handle_relay_fanout(
        self: &Arc<Self>,
        env: Envelope,
        items: Vec<UpdateItem>,
        origin: NodeId,
        seq: u64,
        now: munin_sim::VirtTime,
    ) {
        {
            let dir = self.dir.lock();
            if items.iter().any(|i| {
                let st = dir.entry(i.object).state;
                st.busy || st.pinned
            }) {
                drop(dir);
                crate::runtime::proto_trace!(self, "defer relay fanout from {origin:?}");
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateDefer, |ev| {
                        ev.peer = Some(origin);
                        ev.seq = Some(seq);
                    });
                self.deferred
                    .lock()
                    .push((env, DsmMsg::RelayFanout { items, origin, seq }));
                return;
            }
        }
        match self.check_update_seq(origin, seq) {
            super::SeqCheck::Apply => {
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateInstall, |ev| {
                        ev.peer = Some(origin);
                        ev.seq = Some(seq);
                    });
            }
            super::SeqCheck::Early => {
                crate::runtime::proto_trace!(
                    self,
                    "defer early relay fanout from {origin:?} seq {seq}"
                );
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateDefer, |ev| {
                        ev.peer = Some(origin);
                        ev.seq = Some(seq);
                    });
                self.deferred
                    .lock()
                    .push((env, DsmMsg::RelayFanout { items, origin, seq }));
                return;
            }
            super::SeqCheck::Stale => {
                crate::runtime::proto_trace!(
                    self,
                    "drop stale relay fanout from {origin:?} seq {seq}"
                );
                let _ = self.send_service(
                    origin,
                    DsmMsg::RelayFanoutAck {
                        refanned: Vec::new(),
                        rejected: Vec::new(),
                    },
                    now,
                );
                return;
            }
        }
        // Partition on ownership and snapshot the authoritative copysets in
        // one directory-lock scope; liveness is checked afterwards because
        // the failure detector takes its own lock.
        let mut owned_items = Vec::new();
        let mut rejected = Vec::new();
        let mut per_dest: std::collections::BTreeMap<NodeId, Vec<UpdateItem>> =
            std::collections::BTreeMap::new();
        {
            let dir = self.dir.lock();
            for item in items {
                let e = dir.entry(item.object);
                if !e.state.owned {
                    rejected.push(item.object);
                    continue;
                }
                for dest in e.copyset.iter(self.nodes, Some(self.node)) {
                    if dest == origin {
                        continue;
                    }
                    per_dest.entry(dest).or_default().push(item.clone());
                }
                owned_items.push(item);
            }
        }
        per_dest.retain(|dest, _| !self.is_peer_dead(*dest));
        // Install before any re-fan leaves: the owner must never distribute
        // data it has not itself made visible (the same anchor as the
        // carrier layer's install-before-dispatch).
        let (_, service, _) = self.apply_update_items(owned_items, false, now);
        let mut refanned = Vec::new();
        for (dest, dest_items) in per_dest {
            self.note_update_sent(&dest_items);
            bump(&self.stats.owner_refans);
            self.obs
                .record(now.as_nanos(), crate::obs::EventKind::OwnerRefan, |ev| {
                    ev.peer = Some(dest);
                    ev.object = dest_items.first().map(|i| i.object);
                    ev.seq = Some(seq);
                });
            // The forward carries the *origin's* fan-out seq for trace
            // correlation but deliberately does NOT draw a slot from this
            // node's own update stream to `dest`: this service thread may
            // run while the user thread has relay bundles (holding earlier
            // stream slots) parked at a barrier owner until the release, and
            // a fresh slot here would open a gap `dest` can only close after
            // a release that transitively waits on this forward's ack.
            let _ = self.send_service(
                dest,
                DsmMsg::RelayForward {
                    items: dest_items,
                    origin,
                    seq,
                },
                now + service,
            );
            refanned.push(dest);
        }
        self.send_service_with_pending(
            origin,
            DsmMsg::RelayFanoutAck { refanned, rejected },
            now + service,
        );
    }

    /// Handles a bundle re-fanned by an owner on the origin's behalf, acking
    /// `origin`, whose flush is blocked counting acks.
    ///
    /// Forwards are exempt from the per-stream sequence check: they travel
    /// the owner→here link directly (FIFO, no carrier detour), and they
    /// deliberately carry no slot of the owner's update stream — the
    /// re-fanning service thread may run while the owner's user thread has
    /// relay bundles holding earlier slots parked at a barrier owner (see
    /// `handle_relay_fanout`). Interleaving with those stashed bundles is
    /// order-insensitive: concurrent-interval diffs from distinct writers
    /// touch disjoint words in data-race-free programs — the same assumption
    /// the legacy multi-link fan-out already makes.
    fn handle_relay_forward(
        self: &Arc<Self>,
        env: Envelope,
        items: Vec<UpdateItem>,
        origin: NodeId,
        seq: u64,
        now: munin_sim::VirtTime,
    ) {
        {
            let dir = self.dir.lock();
            if items.iter().any(|i| {
                let st = dir.entry(i.object).state;
                st.busy || st.pinned
            }) {
                drop(dir);
                crate::runtime::proto_trace!(self, "defer relay forward from {:?}", env.src);
                self.obs
                    .record(now.as_nanos(), crate::obs::EventKind::UpdateDefer, |ev| {
                        ev.peer = Some(env.src);
                        ev.seq = Some(seq);
                    });
                self.deferred
                    .lock()
                    .push((env, DsmMsg::RelayForward { items, origin, seq }));
                return;
            }
        }
        self.obs
            .record(now.as_nanos(), crate::obs::EventKind::UpdateInstall, |ev| {
                ev.peer = Some(env.src);
                ev.seq = Some(seq);
            });
        let (applied, service, _) = self.apply_update_items(items, false, now);
        self.send_service_with_pending(
            origin,
            DsmMsg::UpdateAck {
                count: applied,
                owned_copysets: Vec::new(),
            },
            now + service,
        );
    }

    /// Applies a list of update items to the local copies. The single apply
    /// path shared by standalone `Update` messages and piggybacked carrier
    /// bundles. Returns the number applied, the service time charged, and —
    /// when `collect_owned` — the authoritative recorded copyset of every
    /// *owned* updated object (see `DsmMsg::UpdateAck`): the union of every
    /// determined set with the replicas recorded while serving fetches, so
    /// the flusher can heal members its own (possibly stale) determination
    /// missed.
    fn apply_update_items(
        self: &Arc<Self>,
        items: Vec<UpdateItem>,
        collect_owned: bool,
        now: munin_sim::VirtTime,
    ) -> (
        usize,
        munin_sim::VirtTime,
        Vec<(crate::object::ObjectId, crate::copyset::CopySet)>,
    ) {
        let mut applied = 0usize;
        let mut service = munin_sim::VirtTime::ZERO;
        let mut owned_copysets: Vec<(crate::object::ObjectId, crate::copyset::CopySet)> =
            Vec::new();
        for item in items {
            let has_copy = {
                let dir = self.dir.lock();
                let e = dir.entry(item.object);
                if collect_owned && e.state.owned {
                    owned_copysets.push((item.object, e.copyset.clone()));
                }
                e.state.rights.allows_read()
            };
            crate::runtime::proto_trace!(
                self,
                "update {:?} has_copy={has_copy} arrival={}ns",
                item.object,
                now.as_nanos()
            );
            if !has_copy {
                continue;
            }
            match item.payload {
                UpdatePayload::Diff(d) => {
                    let cost = self
                        .cost
                        .decode(d.changed_words() as u64, d.run_count() as u64);
                    self.charge_sys(cost);
                    service += cost;
                    if self
                        .with_object_mem_mut(item.object, |cur| diff::apply(&d, cur))
                        .is_err()
                    {
                        continue;
                    }
                    // If the object is locally dirty, fold the remote changes
                    // into the twin as well so they are not re-sent as local
                    // modifications at the next flush.
                    let mut duq = self.duq.lock();
                    duq.patch_twin(item.object, |twin| {
                        let _ = diff::apply(&d, twin);
                    });
                }
                UpdatePayload::Full(data) => {
                    let cost = self.cost.copy(data.len() as u64);
                    self.charge_sys(cost);
                    service += cost;
                    self.with_object_mem_mut(item.object, |cur| {
                        if cur.len() == data.len() {
                            cur.copy_from_slice(&data);
                        }
                    });
                }
            }
            applied += 1;
            bump(&self.stats.updates_applied);
        }
        (applied, service, owned_copysets)
    }

    /// Takes everything pending for `dst` and — when non-empty — the next
    /// update-stream slot, in ONE outbox-lock scope. Atomicity matters: if
    /// the take and the slot allocation were separate, a preempted service
    /// thread could end up holding *older* items than a concurrent
    /// user-thread flush while drawing a *later* slot, and the receiver
    /// (which applies strictly in seq order) would install the stale items
    /// over the newer data.
    pub(crate) fn take_pending_with_seq(&self, dst: NodeId) -> Option<(Vec<UpdateItem>, u64)> {
        if !self.cfg.piggyback {
            return None;
        }
        let mut outbox = self.outbox.lock();
        let pending = outbox.take_pending(dst);
        if pending.is_empty() {
            return None;
        }
        let seq = self.next_update_seq(dst);
        Some((pending, seq))
    }

    /// Sends a service-thread reply, attaching any coalesced outbox items
    /// queued for the same destination as a carrier bundle (the "queued
    /// updates ride replies already headed there" half of the carrier
    /// layer). Falls back to the plain message when nothing is pending or
    /// piggybacking is off.
    fn send_service_with_pending(
        self: &Arc<Self>,
        dst: NodeId,
        msg: DsmMsg,
        logical_time: munin_sim::VirtTime,
    ) {
        let Some((pending, seq)) = self.take_pending_with_seq(dst) else {
            let _ = self.send_service(dst, msg, logical_time);
            return;
        };
        add(&self.stats.msgs_piggybacked, 1);
        self.note_update_sent(&pending);
        let _ = self.send_service(
            dst,
            DsmMsg::Carrier {
                inner: Some(Box::new(msg)),
                updates: vec![CarrierUpdate {
                    from: self.node,
                    seq,
                    items: pending,
                    sync_install: false,
                }],
                relay: Vec::new(),
            },
            logical_time,
        );
    }

    /// Answers a broadcast copyset query: which of the listed objects does
    /// this node hold a copy of?
    ///
    /// If any listed object is mid-fetch on this node (its busy bit is set),
    /// the answer is deferred until the fetch completes: answering "don't
    /// have" while the object data is in flight would let the flusher skip
    /// this node, whose just-fetched copy would then miss the update forever.
    fn handle_copyset_query(
        self: &Arc<Self>,
        env: Envelope,
        objects: std::sync::Arc<[ObjectId]>,
        requester: NodeId,
    ) {
        let now = env.arrival;
        // Busy check and "have" computation under ONE directory lock: a fetch
        // starting between two separate lock scopes would otherwise still be
        // answered "don't have".
        let have: Vec<ObjectId> = {
            let dir = self.dir.lock();
            if objects.iter().any(|o| dir.entry(*o).state.busy) {
                // No virtual-time charge on a deferred attempt: retry counts
                // are host-timing dependent. Re-queueing shares the same
                // `Arc`-backed object list — no copy.
                drop(dir);
                crate::runtime::proto_trace!(self, "defer copyset query from {requester:?}");
                self.deferred
                    .lock()
                    .push((env, DsmMsg::CopysetQuery { objects, requester }));
                return;
            }
            objects
                .iter()
                .copied()
                .filter(|o| dir.entry(*o).state.rights.allows_read())
                .collect()
        };
        self.charge_sys(self.cost.dir_op());
        self.send_service_with_pending(
            requester,
            DsmMsg::CopysetReply { have },
            now + self.cost.dir_op(),
        );
    }

    /// Answers an owner-collected copyset query with the copyset recorded
    /// while serving fetches. For objects this node does not own the reply is
    /// conservatively `AllNodes`.
    fn handle_owner_copyset_query(
        self: &Arc<Self>,
        objects: Vec<ObjectId>,
        requester: NodeId,
        now: munin_sim::VirtTime,
    ) {
        self.charge_sys(self.cost.dir_op());
        let copysets: Vec<(ObjectId, CopySet)> = {
            let dir = self.dir.lock();
            objects
                .into_iter()
                .map(|o| {
                    let e = dir.entry(o);
                    if e.state.owned {
                        (o, e.copyset.clone())
                    } else {
                        (o, CopySet::AllNodes)
                    }
                })
                .collect()
        };
        self.send_service_with_pending(
            requester,
            DsmMsg::OwnerCopysetReply { copysets },
            now + self.cost.dir_op(),
        );
    }

    /// Executes a `Fetch_and_Φ` at the fixed owner and replies with the old
    /// value.
    fn handle_reduce(
        self: &Arc<Self>,
        object: ObjectId,
        offset: usize,
        op: ReduceOp,
        requester: NodeId,
        now: munin_sim::VirtTime,
    ) {
        self.charge_sys(self.cost.sync_op());
        let old = self.apply_reduce_local(object, offset, op);
        let _ = self.send_service(
            requester,
            DsmMsg::ReduceReply { old },
            now + self.cost.sync_op(),
        );
    }

    /// Applies a reduction operation to the local (owner) copy, returning the
    /// previous value bytes.
    pub(crate) fn apply_reduce_local(
        self: &Arc<Self>,
        object: ObjectId,
        offset: usize,
        op: ReduceOp,
    ) -> Vec<u8> {
        self.with_object_mem_mut(object, |cur| {
            let slot = &mut cur[offset..offset + 8];
            let old = slot.to_vec();
            let old_i = i64::from_le_bytes(old.clone().try_into().unwrap_or([0; 8]));
            let old_f = f64::from_le_bytes(old.clone().try_into().unwrap_or([0; 8]));
            let new_bytes: Option<[u8; 8]> = match op {
                ReduceOp::Read => None,
                ReduceOp::AddI64(v) => Some((old_i.wrapping_add(v)).to_le_bytes()),
                ReduceOp::MinI64(v) => Some(old_i.min(v).to_le_bytes()),
                ReduceOp::MaxI64(v) => Some(old_i.max(v).to_le_bytes()),
                ReduceOp::AddF64(v) => Some((old_f + v).to_le_bytes()),
                ReduceOp::MinF64(v) => Some(old_f.min(v).to_le_bytes()),
                ReduceOp::MaxF64(v) => Some(old_f.max(v).to_le_bytes()),
            };
            if let Some(bytes) = new_bytes {
                slot.copy_from_slice(&bytes);
            }
            old
        })
    }

    /// Handles a remote lock acquire: grant, queue, or forward.
    fn handle_lock_acquire(
        self: &Arc<Self>,
        lock: crate::sync::LockId,
        requester: NodeId,
        now: munin_sim::VirtTime,
    ) {
        self.charge_sys(self.cost.sync_op());
        // A crash-recovery re-acquire can chase its own tail: the waiter
        // re-sent towards the home, the original request was satisfied
        // after all, and the duplicate is now being forwarded back to a
        // requester that already holds the token. Drop it — queueing a
        // node behind itself would deadlock the queue.
        if self.health_enabled() && requester == self.node {
            let owned = self.sync.lock().lock(lock).owned;
            if owned {
                crate::runtime::proto_trace!(
                    self,
                    "drop own looped-back acquire for lock {}",
                    lock.0
                );
                return;
            }
        }
        let action = {
            let mut sync = self.sync.lock();
            sync.lock_mut(lock).handle_remote_acquire(requester)
        };
        match action {
            RemoteAcquireAction::Forward(next) => {
                add(&self.stats.lock_messages, 1);
                let _ = self.send_service(
                    next,
                    DsmMsg::LockAcquire { lock, requester },
                    now + self.cost.sync_op(),
                );
            }
            RemoteAcquireAction::Grant => {
                self.send_lock_grant(lock, requester, Vec::new(), Vec::new());
            }
            RemoteAcquireAction::Queued => {}
        }
    }

    /// Sends a lock grant (ownership transfer) to `to`, carrying the waiter
    /// queue. The associated consistency data (`AssociateDataAndSynch`), any
    /// flush updates the releaser diverted onto this grant, and any
    /// coalesced outbox items for the grantee all ride the same carrier
    /// frame; a grant with none of them goes out bare.
    pub(crate) fn send_lock_grant(
        self: &Arc<Self>,
        lock: crate::sync::LockId,
        to: NodeId,
        queue: Vec<NodeId>,
        diverted: Vec<UpdateItem>,
    ) {
        let sync_items = self.build_lock_piggyback(lock, to);
        // Pending outbox items and their stream slot are taken in one
        // outbox-lock scope (see `take_pending_with_seq`); the diverted
        // flush items draw a slot the same way so the merged bundle's number
        // reflects when its content was captured.
        let mut flush_items = diverted;
        let mut seq = None;
        if let Some((pending, s)) = self.take_pending_with_seq(to) {
            // Older coalesced changes apply before this release's items.
            let fresh = std::mem::replace(&mut flush_items, pending);
            flush_items.extend(fresh);
            seq = Some(s);
        }
        add(&self.stats.lock_messages, 1);
        let grant = DsmMsg::LockGrant { lock, queue };
        if sync_items.is_empty() && flush_items.is_empty() {
            let _ = self.send(to, grant);
            return;
        }
        let mut updates = Vec::new();
        if !sync_items.is_empty() {
            updates.push(CarrierUpdate {
                from: self.node,
                seq: 0, // sync installs are ordered by the lock token, not the stream
                items: sync_items,
                sync_install: true,
            });
        }
        if !flush_items.is_empty() {
            add(&self.stats.msgs_piggybacked, 1);
            self.note_update_sent(&flush_items);
            updates.push(CarrierUpdate {
                from: self.node,
                seq: seq.unwrap_or_else(|| self.next_update_seq(to)),
                items: flush_items,
                sync_install: false,
            });
        }
        let _ = self.send(
            to,
            DsmMsg::Carrier {
                inner: Some(Box::new(grant)),
                updates,
                relay: Vec::new(),
            },
        );
    }

    /// Builds the consistency data piggybacked on a lock grant: the current
    /// contents of every object associated with the lock that this node holds
    /// a valid copy of ("Munin sends the new value of the object in the
    /// message that is used to pass lock ownership"). Installed on the
    /// receive side by the unified carrier-install path (`sync_install`
    /// bundles).
    fn build_lock_piggyback(
        self: &Arc<Self>,
        lock: crate::sync::LockId,
        to: NodeId,
    ) -> Vec<UpdateItem> {
        let associated = {
            let sync = self.sync.lock();
            sync.lock(lock).associated.clone()
        };
        if associated.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for object in associated {
            let (has_copy, migrate) = {
                let dir = self.dir.lock();
                let e = dir.entry(object);
                (
                    e.state.rights.allows_read(),
                    e.annotation == SharingAnnotation::Migratory && e.state.owned,
                )
            };
            if !has_copy {
                continue;
            }
            let size = self.table.object(object).size;
            self.charge_sys(self.cost.copy(size as u64));
            out.push(UpdateItem {
                object,
                payload: UpdatePayload::Full(self.object_bytes(object)),
            });
            if migrate {
                // Migratory data protected by the lock travels with it: the
                // old holder gives up its copy and ownership.
                let mut dir = self.dir.lock();
                let e = dir.entry_mut(object);
                self.set_entry_rights(e, AccessRights::Invalid);
                e.state.owned = false;
                e.state.dirty = false;
                e.probable_owner = to;
            }
        }
        out
    }

    /// Handles a barrier arrival at the owner node.
    fn handle_barrier_arrive(
        self: &Arc<Self>,
        barrier: crate::sync::BarrierId,
        from: NodeId,
        now: munin_sim::VirtTime,
    ) {
        self.charge_sys(self.cost.sync_op());
        bump(&self.stats.barrier_owner_ingress);
        let released = {
            let mut sync = self.sync.lock();
            sync.barrier_mut(barrier).arrive(from)
        };
        if let Some(waiters) = released {
            self.release_barrier_waiters(barrier, waiters, now);
        }
    }

    /// Sends a barrier release to every waiter. Each release carries the
    /// relayed flush bundles stashed for its destination (and any of this
    /// node's own coalesced items), so the waiter installs every update it
    /// is owed before its user thread resumes. Shared by the last-arrival
    /// path and the crash-recovery exclusion path (a dead node's exclusion
    /// can open the barrier for everyone still waiting).
    pub(crate) fn release_barrier_waiters(
        self: &Arc<Self>,
        barrier: crate::sync::BarrierId,
        waiters: Vec<NodeId>,
        now: munin_sim::VirtTime,
    ) {
        for node in waiters {
            if node != self.node && self.is_peer_dead(node) {
                // An arrival recorded before its sender died: nothing to
                // release there.
                continue;
            }
            let mut updates = {
                let mut outbox = self.outbox.lock();
                outbox.take_relay(barrier, node)
            };
            if let Some((pending, seq)) = self.take_pending_with_seq(node) {
                add(&self.stats.msgs_piggybacked, 1);
                self.note_update_sent(&pending);
                updates.push(CarrierUpdate {
                    from: self.node,
                    seq,
                    items: pending,
                    sync_install: false,
                });
            }
            let release = DsmMsg::BarrierRelease { barrier };
            if updates.is_empty() {
                let _ = self.send_service(node, release, now + self.cost.sync_op());
            } else {
                let _ = self.send_service(
                    node,
                    DsmMsg::Carrier {
                        inner: Some(Box::new(release)),
                        updates,
                        relay: Vec::new(),
                    },
                    now + self.cost.sync_op(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MuninConfig;
    use crate::segment::SharedDataTable;
    use munin_sim::{CostModel, Network, NodeClock};
    use std::collections::HashSet;

    /// Builds a two-node network where node 0 hosts a runtime and node 1 is
    /// driven manually by the test.
    struct Harness {
        rt: Arc<NodeRuntime>,
        peer_tx: munin_sim::Sender<DsmMsg>,
        peer_rx: munin_sim::Receiver<DsmMsg>,
        rt_rx: munin_sim::Receiver<DsmMsg>,
    }

    fn harness() -> Harness {
        harness_with(MuninConfig::fast_test(2))
    }

    /// Same two-node harness but with the reliability layer forced on, for
    /// the duplicate-delivery idempotence tests.
    fn reliable_harness() -> Harness {
        harness_with(MuninConfig::fast_test(2).with_reliability(true))
    }

    fn harness_with(cfg: MuninConfig) -> Harness {
        let mut table = SharedDataTable::new(64);
        table.declare("ro", SharingAnnotation::ReadOnly, 4, 8, false);
        table.declare("conv", SharingAnnotation::Conventional, 4, 8, false);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        table.declare("red", SharingAnnotation::Reduction, 8, 2, false);
        table.declare("mig", SharingAnnotation::Migratory, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(cfg);
        let clock0 = NodeClock::new();
        let clock1 = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(2, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock0.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, clock1).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            2,
            cfg,
            table,
            vec![NodeId::new(0)],
            vec![(NodeId::new(0), 2)],
            clock0,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        Harness {
            rt,
            peer_tx: tx1,
            peer_rx: rx1,
            rt_rx: rx0,
        }
    }

    impl Harness {
        fn obj(&self, name: &str) -> ObjectId {
            self.rt.table().var_by_name(name).unwrap().objects[0]
        }

        /// Delivers the next message addressed to node 0 into the runtime.
        fn pump(&self) {
            let (env, msg) = self.rt_rx.recv().unwrap();
            self.rt.handle_request(env, msg);
        }

        fn peer_recv(&self) -> DsmMsg {
            self.peer_rx.recv().unwrap().1
        }
    }

    #[test]
    fn read_fetch_returns_data_and_records_replica() {
        let h = harness();
        let ro = h.obj("ro");
        h.rt.install_object_bytes(ro, &[3u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "object_fetch",
                40,
                DsmMsg::ObjectFetch {
                    object: ro,
                    access: FetchKind::Read,
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        match h.peer_recv() {
            DsmMsg::ObjectData {
                data,
                ownership,
                writable,
                ..
            } => {
                assert_eq!(data, vec![3u8; 32]);
                assert!(!ownership);
                assert!(!writable);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        assert!(h.rt.dir.lock().entry(ro).copyset.contains(NodeId::new(1)));
    }

    #[test]
    fn conventional_write_fetch_transfers_ownership_and_invalidates_owner() {
        let h = harness();
        let conv = h.obj("conv");
        h.peer_tx
            .send(
                NodeId::new(0),
                "object_fetch",
                40,
                DsmMsg::ObjectFetch {
                    object: conv,
                    access: FetchKind::Write,
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        match h.peer_recv() {
            DsmMsg::ObjectData {
                ownership,
                writable,
                ..
            } => {
                assert!(ownership);
                assert!(writable);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        let dir = h.rt.dir.lock();
        let e = dir.entry(conv);
        assert_eq!(e.state.rights, AccessRights::Invalid);
        assert!(!e.state.owned);
        assert_eq!(e.probable_owner, NodeId::new(1));
    }

    #[test]
    fn fetch_for_busy_entry_is_deferred_until_transition_completes() {
        let h = harness();
        let conv = h.obj("conv");
        h.rt.dir.lock().entry_mut(conv).state.busy = true;
        h.peer_tx
            .send(
                NodeId::new(0),
                "object_fetch",
                40,
                DsmMsg::ObjectFetch {
                    object: conv,
                    access: FetchKind::Read,
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.deferred.lock().len(), 1);
        // Completing the transition and retrying serves the request.
        h.rt.dir.lock().entry_mut(conv).state.busy = false;
        h.rt.process_deferred();
        assert!(matches!(h.peer_recv(), DsmMsg::ObjectData { .. }));
    }

    /// The owner's `UpdateAck` carries its authoritative recorded copyset
    /// for every owned object in the update, so the flusher can heal members
    /// its determination missed.
    #[test]
    fn update_ack_from_owner_reports_recorded_copyset() {
        let h = harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        // The owner recorded a replica at N1 (e.g. while serving a fetch).
        h.rt.dir.lock().entry_mut(ws).copyset.insert(NodeId::new(1));
        let d = diff::encode(&[1u8; 32], &[0u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "update",
                64,
                DsmMsg::Update {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    requester: NodeId::new(1),
                    seq: 0,
                    needs_ack: true,
                },
            )
            .unwrap();
        h.pump();
        match h.peer_recv() {
            DsmMsg::UpdateAck {
                count,
                owned_copysets,
            } => {
                assert_eq!(count, 1);
                assert_eq!(owned_copysets.len(), 1);
                let (object, cs) = &owned_copysets[0];
                let (object, cs) = (*object, cs.clone());
                assert_eq!(object, ws);
                assert!(cs.contains(NodeId::new(1)));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    /// An update hitting an object whose fetch is in flight is deferred, not
    /// dropped: the in-flight object data predates the update, so discarding
    /// it would leave the just-installed copy permanently stale.
    #[test]
    fn update_for_mid_fetch_object_is_deferred_until_install() {
        let h = harness();
        let ws = h.obj("ws");
        // Simulate "fetch in flight": no local copy, busy bit set.
        {
            let mut dir = h.rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.state.rights = AccessRights::Invalid;
            e.state.busy = true;
        }
        let d = diff::encode(&[9u8; 32], &[0u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "update",
                64,
                DsmMsg::Update {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    requester: NodeId::new(1),
                    seq: 0,
                    needs_ack: true,
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.deferred.lock().len(), 1, "update must be deferred");
        // The fetch completes: data installed, busy cleared. The deferred
        // update is then applied on top of the installed (stale) copy.
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        {
            let mut dir = h.rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.state.busy = false;
            e.state.rights = AccessRights::Read;
        }
        h.rt.process_deferred();
        match h.peer_recv() {
            DsmMsg::UpdateAck { count, .. } => assert_eq!(count, 1),
            other => panic!("unexpected reply: {other:?}"),
        }
        assert_eq!(
            h.rt.object_bytes(ws),
            vec![9u8; 32],
            "deferred update applied after install"
        );
    }

    #[test]
    fn update_applies_diff_to_local_copy_and_acks() {
        let h = harness();
        let ws = h.obj("ws");
        let original = vec![0u8; 32];
        h.rt.install_object_bytes(ws, &original);
        let mut modified = original.clone();
        modified[0..4].copy_from_slice(&7u32.to_le_bytes());
        let d = diff::encode(&modified, &original);
        h.peer_tx
            .send(
                NodeId::new(0),
                "update",
                64,
                DsmMsg::Update {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    requester: NodeId::new(1),
                    seq: 0,
                    needs_ack: true,
                },
            )
            .unwrap();
        h.pump();
        assert!(matches!(h.peer_recv(), DsmMsg::UpdateAck { count: 1, .. }));
        assert_eq!(&h.rt.object_bytes(ws)[0..4], &7u32.to_le_bytes());
    }

    /// The unified carrier-install path: a bare carrier frame applies its
    /// bundle exactly like a standalone update (no ack, same diff apply).
    #[test]
    fn carrier_bundle_applies_like_an_update() {
        let h = harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let d = diff::encode(&[5u8; 32], &[0u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "carrier",
                64,
                DsmMsg::Carrier {
                    inner: None,
                    updates: vec![CarrierUpdate {
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: ws,
                            payload: UpdatePayload::Diff(d),
                        }],
                        sync_install: false,
                    }],
                    relay: vec![],
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.object_bytes(ws), vec![5u8; 32]);
        assert_eq!(h.rt.stats().snapshot().updates_applied, 1);
        // Piggybacked bundles are never individually acknowledged.
        assert!(h.peer_rx.try_recv().unwrap().is_none());
    }

    /// A carrier bundle hitting a busy entry defers — same pin/busy
    /// discipline as a standalone update — and applies once the transition
    /// completes.
    #[test]
    fn carrier_bundle_for_busy_entry_is_deferred() {
        let h = harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        h.rt.dir.lock().entry_mut(ws).state.busy = true;
        let d = diff::encode(&[9u8; 32], &[0u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "carrier",
                64,
                DsmMsg::Carrier {
                    inner: None,
                    updates: vec![CarrierUpdate {
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: ws,
                            payload: UpdatePayload::Diff(d),
                        }],
                        sync_install: false,
                    }],
                    relay: vec![],
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.deferred.lock().len(), 1, "bundle must defer on busy");
        assert_eq!(h.rt.object_bytes(ws), vec![0u8; 32]);
        h.rt.dir.lock().entry_mut(ws).state.busy = false;
        h.rt.process_deferred();
        assert_eq!(h.rt.object_bytes(ws), vec![9u8; 32]);
    }

    /// Sync-install bundles (lock-associated data on a grant carrier) force
    /// the install and apply the migratory ownership handover — the receive
    /// side of the old `install_piggyback`, now on the one carrier path.
    #[test]
    fn lock_grant_carrier_installs_migratory_data_with_ownership() {
        let h = harness();
        let mig = h.obj("mig");
        {
            // This node is not the owner and has no copy: a migratory grant
            // must install the image and hand over ownership anyway.
            let mut dir = h.rt.dir.lock();
            let e = dir.entry_mut(mig);
            e.state.rights = AccessRights::Invalid;
            e.state.owned = false;
            e.probable_owner = NodeId::new(1);
        }
        h.peer_tx
            .send(
                NodeId::new(0),
                "lock_grant",
                96,
                DsmMsg::Carrier {
                    inner: Some(Box::new(DsmMsg::LockGrant {
                        lock: crate::sync::LockId(0),
                        queue: vec![],
                    })),
                    updates: vec![CarrierUpdate {
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: mig,
                            payload: UpdatePayload::Full(vec![3u8; 32]),
                        }],
                        sync_install: true,
                    }],
                    relay: vec![],
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.object_bytes(mig), vec![3u8; 32]);
        let dir = h.rt.dir.lock();
        let e = dir.entry(mig);
        assert_eq!(e.state.rights, AccessRights::ReadWrite);
        assert!(e.state.owned);
        assert_eq!(e.probable_owner, NodeId::new(0));
        drop(dir);
        // The framed grant itself was routed to the (test's) user mailbox
        // only after the install.
        let (_env, reply) = h.rt.reply_rx.try_recv().unwrap();
        assert!(matches!(reply, DsmMsg::LockGrant { .. }));
    }

    /// A barrier-arrive carrier stashes relayed bundles at the owner and
    /// re-attaches each to the release headed to its destination; the
    /// owner's own share installs before the arrival is counted.
    #[test]
    fn barrier_arrive_relay_is_redistributed_on_the_releases() {
        let h = harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let b = crate::sync::BarrierId(0);
        // Node 0 arrives first (no relay of its own).
        h.rt.handle_request(
            Envelope {
                src: NodeId::new(0),
                dst: NodeId::new(0),
                class: "barrier_arrive",
                model_bytes: 40,
                sent_at: munin_sim::VirtTime::ZERO,
                arrival: munin_sim::VirtTime::ZERO,
            },
            DsmMsg::BarrierArrive {
                barrier: b,
                from: NodeId::new(0),
            },
        );
        // Node 1 arrives with a relay: one bundle for node 0 (the owner
        // itself) and one for node 1 (its own release will carry it back —
        // degenerate but legal).
        let d0 = diff::encode(&[7u8; 32], &[0u8; 32]);
        h.peer_tx
            .send(
                NodeId::new(0),
                "barrier_arrive",
                96,
                DsmMsg::Carrier {
                    inner: Some(Box::new(DsmMsg::BarrierArrive {
                        barrier: b,
                        from: NodeId::new(1),
                    })),
                    updates: vec![],
                    relay: vec![RelayUpdate {
                        dest: NodeId::new(0),
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: ws,
                            payload: UpdatePayload::Diff(d0),
                        }],
                    }],
                },
            )
            .unwrap();
        h.pump();
        // The owner's share was installed at arrive-processing time, before
        // the trip.
        assert_eq!(h.rt.object_bytes(ws), vec![7u8; 32]);
        // Node 1's release is a plain BarrierRelease (nothing stashed for it).
        assert!(matches!(h.peer_recv(), DsmMsg::BarrierRelease { .. }));
    }

    /// The cross-link reordering regression the update sequence stream
    /// exists for: a barrier-relayed bundle (seq 0, travelling via the
    /// barrier owner) is overtaken by a newer direct update (seq 1, on the
    /// flusher's own link). The direct update must defer until the relayed
    /// bundle lands, and a late duplicate of the old bundle must be dropped
    /// — never applied over the newer data.
    #[test]
    fn update_stream_orders_relayed_and_direct_updates_across_links() {
        let h = harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let old_diff = diff::encode(&[1u8; 32], &[0u8; 32]);
        let new_diff = diff::encode(&[2u8; 32], &[1u8; 32]);
        // The newer direct update (seq 1) arrives first: it must defer.
        h.peer_tx
            .send(
                NodeId::new(0),
                "update",
                64,
                DsmMsg::Update {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(new_diff),
                    }],
                    requester: NodeId::new(1),
                    seq: 1,
                    needs_ack: true,
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(h.rt.deferred.lock().len(), 1, "early update must defer");
        assert_eq!(h.rt.object_bytes(ws), vec![0u8; 32]);
        // The relayed bundle (seq 0) lands — e.g. on a BarrierRelease
        // carrier — and unblocks the stream.
        h.peer_tx
            .send(
                NodeId::new(0),
                "barrier_release",
                96,
                DsmMsg::Carrier {
                    inner: Some(Box::new(DsmMsg::BarrierRelease {
                        barrier: crate::sync::BarrierId(0),
                    })),
                    updates: vec![CarrierUpdate {
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: ws,
                            payload: UpdatePayload::Diff(old_diff.clone()),
                        }],
                        sync_install: false,
                    }],
                    relay: vec![],
                },
            )
            .unwrap();
        h.pump();
        h.rt.process_deferred();
        // Both applied, in stream order: the copy holds the *newer* data.
        assert_eq!(h.rt.object_bytes(ws), vec![2u8; 32]);
        assert!(matches!(h.peer_recv(), DsmMsg::UpdateAck { count: 1, .. }));
        // A duplicate of the old bundle is stale and must be dropped.
        h.peer_tx
            .send(
                NodeId::new(0),
                "carrier",
                64,
                DsmMsg::Carrier {
                    inner: None,
                    updates: vec![CarrierUpdate {
                        from: NodeId::new(1),
                        seq: 0,
                        items: vec![UpdateItem {
                            object: ws,
                            payload: UpdatePayload::Diff(old_diff),
                        }],
                        sync_install: false,
                    }],
                    relay: vec![],
                },
            )
            .unwrap();
        h.pump();
        assert_eq!(
            h.rt.object_bytes(ws),
            vec![2u8; 32],
            "stale bundle must not regress the copy"
        );
    }

    #[test]
    fn invalidate_drops_copy_and_acknowledges() {
        let h = harness();
        let conv = h.obj("conv");
        h.peer_tx
            .send(
                NodeId::new(0),
                "invalidate",
                40,
                DsmMsg::Invalidate {
                    object: conv,
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        assert!(matches!(h.peer_recv(), DsmMsg::InvalidateAck { .. }));
        assert_eq!(
            h.rt.dir.lock().entry(conv).state.rights,
            AccessRights::Invalid
        );
    }

    #[test]
    fn copyset_query_reports_held_objects_only() {
        let h = harness();
        let ro = h.obj("ro");
        let ws = h.obj("ws");
        // Drop the write-shared copy so only `ro` is held.
        h.rt.dir.lock().entry_mut(ws).state.rights = AccessRights::Invalid;
        h.peer_tx
            .send(
                NodeId::new(0),
                "copyset_query",
                40,
                DsmMsg::CopysetQuery {
                    objects: vec![ro, ws].into(),
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        match h.peer_recv() {
            DsmMsg::CopysetReply { have } => assert_eq!(have, vec![ro]),
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    #[test]
    fn reduce_request_applies_fetch_and_min() {
        let h = harness();
        let red = h.obj("red");
        h.rt.install_object_bytes(red, &{
            let mut v = vec![0u8; 16];
            v[0..8].copy_from_slice(&100i64.to_le_bytes());
            v
        });
        h.peer_tx
            .send(
                NodeId::new(0),
                "reduce_request",
                56,
                DsmMsg::ReduceRequest {
                    object: red,
                    offset: 0,
                    op: ReduceOp::MinI64(42),
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        match h.peer_recv() {
            DsmMsg::ReduceReply { old } => {
                assert_eq!(i64::from_le_bytes(old.try_into().unwrap()), 100);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        let bytes = h.rt.object_bytes(red);
        assert_eq!(i64::from_le_bytes(bytes[0..8].try_into().unwrap()), 42);
    }

    #[test]
    fn lock_acquire_on_free_lock_grants_ownership() {
        let h = harness();
        h.peer_tx
            .send(
                NodeId::new(0),
                "lock_acquire",
                40,
                DsmMsg::LockAcquire {
                    lock: crate::sync::LockId(0),
                    requester: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        assert!(matches!(h.peer_recv(), DsmMsg::LockGrant { .. }));
        assert!(!h.rt.sync.lock().lock(crate::sync::LockId(0)).owned);
    }

    #[test]
    fn barrier_releases_after_all_arrivals() {
        let h = harness();
        let b = crate::sync::BarrierId(0);
        // Node 1 arrives first: no release yet.
        h.peer_tx
            .send(
                NodeId::new(0),
                "barrier_arrive",
                40,
                DsmMsg::BarrierArrive {
                    barrier: b,
                    from: NodeId::new(1),
                },
            )
            .unwrap();
        h.pump();
        assert!(h.peer_rx.try_recv().unwrap().is_none());
        // Node 0 arrives (self-delivered in the real runtime; injected here).
        h.rt.handle_request(
            Envelope {
                src: NodeId::new(0),
                dst: NodeId::new(0),
                class: "barrier_arrive",
                model_bytes: 40,
                sent_at: munin_sim::VirtTime::ZERO,
                arrival: munin_sim::VirtTime::ZERO,
            },
            DsmMsg::BarrierArrive {
                barrier: b,
                from: NodeId::new(0),
            },
        );
        // Node 1 gets released; node 0's release goes to its own endpoint.
        assert!(matches!(h.peer_recv(), DsmMsg::BarrierRelease { .. }));
        assert!(matches!(
            h.rt_rx.recv().unwrap().1,
            DsmMsg::BarrierRelease { .. }
        ));
    }

    // --- reliability-layer idempotence -----------------------------------
    //
    // These tests forge `Reliable` frames straight into `handle_incoming`,
    // modelling a retransmission whose original was *not* lost: the handler
    // behind each frame must run exactly once. The handlers covered are the
    // ones that are not naturally idempotent — a re-dispatched barrier
    // arrival advances the arrival count, a re-dispatched lock acquire
    // re-grants the lock, a re-dispatched update re-enters the seq check,
    // and a re-routed invalidate ack desynchronizes the requester's
    // ack-counting loop with a phantom reply.

    /// Envelope for a forged frame from node 1.
    fn rel_env() -> Envelope {
        Envelope {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            class: "reliable",
            model_bytes: 40,
            sent_at: munin_sim::VirtTime::ZERO,
            arrival: munin_sim::VirtTime::ZERO,
        }
    }

    fn rel_frame(id: u64, inner: DsmMsg) -> DsmMsg {
        DsmMsg::Reliable {
            id,
            ack: 0,
            inner: Box::new(inner),
        }
    }

    /// Strips transport (`Reliable`) and carrier framing off a message.
    fn innermost(m: DsmMsg) -> Option<DsmMsg> {
        match m {
            DsmMsg::Reliable { inner, .. } => innermost(*inner),
            DsmMsg::Carrier {
                inner: Some(inner), ..
            } => innermost(*inner),
            DsmMsg::Carrier { inner: None, .. } => None,
            other => Some(other),
        }
    }

    #[test]
    fn duplicate_barrier_arrive_is_counted_once() {
        let h = reliable_harness();
        let arrive = DsmMsg::BarrierArrive {
            barrier: crate::sync::BarrierId(0),
            from: NodeId::new(1),
        };
        h.rt.handle_incoming(rel_env(), rel_frame(1, arrive.clone()));
        h.rt.handle_incoming(rel_env(), rel_frame(1, arrive));
        // Were the duplicate dispatched, the 2-party barrier would count two
        // arrivals and release; the peer must see only the dedup quench ack.
        let mut released = false;
        let mut net_acks = 0;
        while let Some((_env, m)) = h.peer_rx.try_recv().unwrap() {
            match (matches!(m, DsmMsg::NetAck { .. }), innermost(m)) {
                (true, _) => net_acks += 1,
                (false, Some(DsmMsg::BarrierRelease { .. })) => released = true,
                _ => {}
            }
        }
        assert!(!released, "duplicate barrier arrival released the barrier");
        assert_eq!(net_acks, 1);
        assert_eq!(h.rt.stats().snapshot().dup_msgs_dropped, 1);
    }

    #[test]
    fn duplicate_lock_acquire_grants_once() {
        let h = reliable_harness();
        let acquire = DsmMsg::LockAcquire {
            lock: crate::sync::LockId(0),
            requester: NodeId::new(1),
        };
        h.rt.handle_incoming(rel_env(), rel_frame(1, acquire.clone()));
        h.rt.handle_incoming(rel_env(), rel_frame(1, acquire));
        let mut grants = 0;
        while let Some((_env, m)) = h.peer_rx.try_recv().unwrap() {
            if let Some(DsmMsg::LockGrant { .. }) = innermost(m) {
                grants += 1;
            }
        }
        assert_eq!(grants, 1, "duplicate lock acquire must not re-grant");
        assert_eq!(h.rt.stats().snapshot().dup_msgs_dropped, 1);
    }

    #[test]
    fn duplicate_update_is_dropped_before_the_seq_check() {
        let h = reliable_harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let d = diff::encode(&[1u8; 32], &[0u8; 32]);
        let update = DsmMsg::Update {
            items: vec![UpdateItem {
                object: ws,
                payload: UpdatePayload::Diff(d),
            }],
            requester: NodeId::new(1),
            seq: 0,
            needs_ack: true,
        };
        h.rt.handle_incoming(rel_env(), rel_frame(1, update.clone()));
        h.rt.handle_incoming(rel_env(), rel_frame(1, update));
        let snap = h.rt.stats().snapshot();
        assert_eq!(snap.updates_applied, 1);
        assert_eq!(snap.dup_msgs_dropped, 1);
        // Exactly one real UpdateAck; the duplicate is answered by the
        // transport's NetAck, never by a second (count: 0) protocol ack.
        let mut update_acks = 0;
        let mut net_acks = 0;
        while let Some((_env, m)) = h.peer_rx.try_recv().unwrap() {
            match (matches!(m, DsmMsg::NetAck { .. }), innermost(m)) {
                (true, _) => net_acks += 1,
                (false, Some(DsmMsg::UpdateAck { .. })) => update_acks += 1,
                _ => {}
            }
        }
        assert_eq!(update_acks, 1);
        assert_eq!(net_acks, 1);
    }

    #[test]
    fn duplicate_invalidate_ack_routes_to_user_once() {
        let h = reliable_harness();
        let ack = DsmMsg::InvalidateAck {
            object: h.obj("ws"),
        };
        h.rt.handle_incoming(rel_env(), rel_frame(1, ack.clone()));
        h.rt.handle_incoming(rel_env(), rel_frame(1, ack));
        // A phantom second ack would make a later ack-counting wait return
        // early; exactly one reply may reach the user mailbox.
        assert!(h.rt.reply_rx.try_recv().is_ok());
        assert!(h.rt.reply_rx.try_recv().is_err());
        assert_eq!(h.rt.stats().snapshot().dup_msgs_dropped, 1);
    }

    #[test]
    fn out_of_order_frames_are_released_in_id_order() {
        let h = reliable_harness();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let first = DsmMsg::Update {
            items: vec![UpdateItem {
                object: ws,
                payload: UpdatePayload::Diff(diff::encode(&[1u8; 32], &[0u8; 32])),
            }],
            requester: NodeId::new(1),
            seq: 0,
            needs_ack: false,
        };
        let second = DsmMsg::Update {
            items: vec![UpdateItem {
                object: ws,
                payload: UpdatePayload::Diff(diff::encode(&[2u8; 32], &[1u8; 32])),
            }],
            requester: NodeId::new(1),
            seq: 1,
            needs_ack: false,
        };
        // Frame 2 arrives first: buffered, nothing dispatched.
        h.rt.handle_incoming(rel_env(), rel_frame(2, second));
        assert_eq!(h.rt.stats().snapshot().updates_applied, 0);
        // Frame 1 fills the gap: both dispatch, in id order.
        h.rt.handle_incoming(rel_env(), rel_frame(1, first));
        assert_eq!(h.rt.stats().snapshot().updates_applied, 2);
        assert_eq!(h.rt.object_bytes(ws), vec![2u8; 32]);
    }

    #[test]
    fn cumulative_ack_releases_held_messages() {
        let h = reliable_harness();
        let ws = h.obj("ws");
        let invalidate = DsmMsg::Invalidate {
            object: ws,
            requester: NodeId::new(0),
        };
        h.rt.send(NodeId::new(1), invalidate.clone()).unwrap();
        h.rt.send(NodeId::new(1), invalidate).unwrap();
        assert!(h.rt.has_unacked());
        // Acking id 1 still leaves id 2 held; acking through id 2 clears.
        h.rt.handle_incoming(rel_env(), DsmMsg::NetAck { upto: 1 });
        assert!(h.rt.has_unacked());
        h.rt.handle_incoming(rel_env(), DsmMsg::NetAck { upto: 2 });
        assert!(!h.rt.has_unacked());
    }

    /// Three-node variant of the harness: node 0 hosts the runtime, nodes 1
    /// and 2 are driven manually — enough fan-out to watch an owner re-fan a
    /// cooperative bundle to a copyset member that is not the origin.
    struct Harness3 {
        rt: Arc<NodeRuntime>,
        tx1: munin_sim::Sender<DsmMsg>,
        rx1: munin_sim::Receiver<DsmMsg>,
        rx2: munin_sim::Receiver<DsmMsg>,
        rt_rx: munin_sim::Receiver<DsmMsg>,
    }

    fn harness3() -> Harness3 {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3).with_piggyback(true));
        let clock0 = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock0.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let (_tx2, rx2) = net.endpoint(2, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![NodeId::new(0)],
            vec![(NodeId::new(0), 3)],
            clock0,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        Harness3 {
            rt,
            tx1,
            rx1,
            rx2,
            rt_rx: rx0,
        }
    }

    impl Harness3 {
        fn obj(&self, name: &str) -> ObjectId {
            self.rt.table().var_by_name(name).unwrap().objects[0]
        }

        fn pump(&self) {
            let (env, msg) = self.rt_rx.recv().unwrap();
            self.rt.handle_request(env, msg);
        }
    }

    /// The owner side of the cooperative relay: a `RelayFanout` bundle from
    /// the origin is installed locally, re-fanned to the authoritative
    /// copyset members (excluding the origin), and acknowledged with the
    /// re-fan destination list.
    #[test]
    fn relay_fanout_installs_refans_and_acks_origin() {
        let h = harness3();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        // The owner's recorded copyset: the origin (1) and a bystander (2).
        {
            let mut dir = h.rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.copyset.insert(NodeId::new(2));
        }
        let d = diff::encode(&[4u8; 32], &[0u8; 32]);
        h.tx1
            .send(
                NodeId::new(0),
                "relay_fanout",
                64,
                DsmMsg::RelayFanout {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    origin: NodeId::new(1),
                    seq: 0,
                },
            )
            .unwrap();
        h.pump();
        // Install-before-dispatch: the owner's copy carries the diff.
        assert_eq!(h.rt.object_bytes(ws), vec![4u8; 32]);
        // Node 2 got the forward (and only node 2: the origin is excluded).
        match h.rx2.recv().unwrap().1 {
            DsmMsg::RelayForward { items, origin, seq } => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].object, ws);
                assert_eq!(origin, NodeId::new(1));
                assert_eq!(seq, 0);
            }
            other => panic!("expected RelayForward at N2, got {other:?}"),
        }
        // The origin got the ack naming the re-fan destination.
        match h.rx1.recv().unwrap().1 {
            DsmMsg::RelayFanoutAck { refanned, rejected } => {
                assert_eq!(refanned, vec![NodeId::new(2)]);
                assert!(rejected.is_empty());
            }
            other => panic!("expected RelayFanoutAck at origin, got {other:?}"),
        }
        assert_eq!(h.rt.stats().snapshot().owner_refans, 1);
    }

    /// A stale ownership hint: the fanout target does not own the object, so
    /// the bundle is bounced back untouched — not installed, not re-fanned —
    /// and the origin's ack names the rejected object.
    #[test]
    fn relay_fanout_bounces_unowned_objects() {
        let h = harness3();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        {
            let mut dir = h.rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.state.owned = false;
            e.probable_owner = NodeId::new(2);
            e.copyset.insert(NodeId::new(2));
        }
        let d = diff::encode(&[9u8; 32], &[0u8; 32]);
        h.tx1
            .send(
                NodeId::new(0),
                "relay_fanout",
                64,
                DsmMsg::RelayFanout {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    origin: NodeId::new(1),
                    seq: 0,
                },
            )
            .unwrap();
        h.pump();
        match h.rx1.recv().unwrap().1 {
            DsmMsg::RelayFanoutAck { refanned, rejected } => {
                assert!(refanned.is_empty());
                assert_eq!(rejected, vec![ws]);
            }
            other => panic!("expected RelayFanoutAck, got {other:?}"),
        }
        // Neither installed nor counted as a re-fan.
        assert_eq!(h.rt.object_bytes(ws), vec![0u8; 32]);
        assert_eq!(h.rt.stats().snapshot().owner_refans, 0);
    }

    /// The destination side of the cooperative relay: a `RelayForward`
    /// applies immediately — exempt from the per-stream sequence check, since
    /// it carries no slot of the forwarding owner's update stream — and the
    /// ack goes to the *origin*, whose flush is counting it, not back to the
    /// forwarding owner.
    #[test]
    fn relay_forward_applies_without_seq_check_and_acks_origin() {
        let h = harness3();
        let ws = h.obj("ws");
        h.rt.install_object_bytes(ws, &[0u8; 32]);
        let d = diff::encode(&[6u8; 32], &[0u8; 32]);
        // seq 7 on a stream that has seen nothing: an ordinary Update would
        // be deferred as early; the forward must apply at once.
        h.tx1
            .send(
                NodeId::new(0),
                "relay_forward",
                64,
                DsmMsg::RelayForward {
                    items: vec![UpdateItem {
                        object: ws,
                        payload: UpdatePayload::Diff(d),
                    }],
                    origin: NodeId::new(2),
                    seq: 7,
                },
            )
            .unwrap();
        h.pump();
        assert!(h.rt.deferred.lock().is_empty(), "forwards are not deferred");
        assert_eq!(h.rt.object_bytes(ws), vec![6u8; 32]);
        match h.rx2.recv().unwrap().1 {
            DsmMsg::UpdateAck { count, .. } => assert_eq!(count, 1),
            other => panic!("expected UpdateAck at the origin, got {other:?}"),
        }
    }
}
