//! The failure detector and degraded-mode recovery.
//!
//! Detection is heartbeat-based with traffic piggybacking: every message a
//! peer sends (protocol traffic, reliability frames, heartbeats alike)
//! refreshes its *last heard* timestamp, and a periodic `HealthTick` timer
//! sends explicit [`DsmMsg::Heartbeat`] probes so an idle-but-alive peer is
//! never mistaken for a dead one. A peer quiet for more than half the
//! detection window (`MuninConfig::detection`) becomes *suspect* — surfaced
//! in stall reports — and one quiet for the full window is confirmed *dead*.
//! The reliability layer's retransmit-attempt cap feeds the same state: a
//! link that stopped acknowledging marks its peer suspect without waiting
//! for the window to age out.
//!
//! Confirmation is a one-way door. The first thread to confirm a death (the
//! status transition happens under the health mutex, so exactly one wins)
//! broadcasts [`DsmMsg::PeerDown`] gossip to the surviving peers and runs
//! the local recovery walk exactly once:
//!
//! * the reliability link to the corpse is purged (nothing it owes will
//!   ever arrive);
//! * every directory entry's copyset drops the dead node — the paper's
//!   update-timeout replica-pruning, applied to a confirmed crash;
//! * objects whose probable owner died are re-homed to the lowest-id
//!   surviving replica holder (deterministic: every survivor picks the same
//!   node without coordination);
//! * lock tokens last seen heading towards the corpse are regenerated at
//!   the lock's home, and barriers owned here exclude the dead node from
//!   their arrival counts, releasing waiters the corpse was holding up.
//!
//! Blocked user threads observe deaths through [`NodeRuntime::wait_reply_or_dead`],
//! which surfaces the internal [`MuninError::PeerDied`] signal; each call
//! site recomputes its expectations against the shrunken cluster and either
//! proceeds (a dead node's ack will never come — stop waiting for it) or
//! escalates to the public [`MuninError::NodeDown`] when the dead node was
//! load-bearing (sole copy of an object, a lock or barrier home, the root).
//!
//! Timers bypass the engine's crash-injection drops, so a crashed node's own
//! detector keeps running: it watches every peer go quiet, confirms the
//! whole cluster dead, and its blocked user thread fails fast with a
//! structured `NodeDown` instead of hanging until the watchdog.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use munin_sim::{Envelope, NodeId, VirtTime};

use crate::config::MuninConfig;
use crate::error::{MuninError, Result};
use crate::msg::DsmMsg;
use crate::nodeset::NodeSet;
use crate::object::ObjectId;
use crate::stats::bump;
use crate::sync::{BarrierId, LockId};

use super::{NodeRuntime, WaitOp, WATCHDOG_SLICE};

/// Liveness verdict for one peer. Transitions only move rightward
/// (`Alive → Suspect → Dead`), except that hearing from a suspect peer
/// clears the suspicion; `Dead` is final.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PeerStatus {
    Alive,
    Suspect,
    Dead,
}

/// The failure detector's state (one per node, on the runtime).
pub(crate) struct Health {
    /// Whether detection runs at all (resolved once at startup: a detection
    /// window is configured — explicitly or implied by a crash plan — and
    /// there is more than one node).
    enabled: bool,
    /// The detection window: a peer quiet this long is dead.
    detect: Duration,
    inner: Mutex<HealthInner>,
}

struct HealthInner {
    /// Wall-clock time each peer was last heard from (any message).
    last_heard: Vec<Instant>,
    /// Current verdict per peer.
    status: Vec<PeerStatus>,
    /// Wall-clock time of the last heartbeat batch this node sent.
    last_beat: Instant,
}

/// Virtual-time spacing of `HealthTick` re-arms. Timers fire on wall-clock
/// idleness but are *ordered* by virtual due time, and the health tick
/// competes with the reliability layer's retransmit tick (re-armed ~1 ms of
/// virtual time ahead of a clock that stands still while every thread is
/// blocked): a tick armed a full heartbeat period of virtual time ahead
/// would starve behind it forever. So the timer is armed close-in and the
/// actual heartbeat sends are paced by wall clock in [`NodeRuntime::health_tick`],
/// matching the wall-clock `last_heard` bookkeeping the verdicts use.
const HEALTH_TICK_VIRT_NS: u64 = 1_000_000;

impl Health {
    pub(crate) fn new(cfg: &MuninConfig, nodes: usize) -> Self {
        let detect = cfg.detection();
        let enabled = detect.is_some() && nodes > 1;
        let now = Instant::now();
        Health {
            enabled,
            detect: detect.unwrap_or(Duration::from_secs(2)),
            inner: Mutex::new(HealthInner {
                last_heard: vec![now; nodes],
                status: vec![PeerStatus::Alive; nodes],
                last_beat: now,
            }),
        }
    }
}

impl NodeRuntime {
    /// Whether the failure detector is running on this node.
    pub(crate) fn health_enabled(&self) -> bool {
        self.health.enabled
    }

    /// The heartbeat period: a quarter of the detection window, so several
    /// probes fit inside it and one lost heartbeat cannot kill a peer.
    fn heartbeat_every(&self) -> Duration {
        self.health.detect / 4
    }

    /// Starts the detector: stamps every peer freshly heard (startup is not
    /// silence) and schedules the first `HealthTick`. Called from the
    /// service loop before it starts receiving.
    pub(crate) fn health_start(&self) {
        if !self.health.enabled {
            return;
        }
        {
            let mut h = self.health.inner.lock();
            let now = Instant::now();
            for t in h.last_heard.iter_mut() {
                *t = now;
            }
            // Backdate the beat stamp so the first idle moment probes
            // immediately instead of a full period into the run.
            h.last_beat = now - self.heartbeat_every();
        }
        let due = self.clock.now() + VirtTime::from_nanos(HEALTH_TICK_VIRT_NS);
        let _ = self
            .sender
            .schedule_timer(due, "health", DsmMsg::HealthTick);
    }

    /// Records traffic from `peer`: refreshes its last-heard stamp and lifts
    /// an active suspicion (a thawed freeze or recovered link resumes at
    /// full trust and base retransmit pacing). A confirmed death is final —
    /// zombie traffic does not resurrect the peer.
    pub(crate) fn health_heard(&self, peer: NodeId) {
        if !self.health.enabled || peer == self.node {
            return;
        }
        let cleared = {
            let mut h = self.health.inner.lock();
            let i = peer.as_usize();
            if h.status[i] == PeerStatus::Dead {
                return;
            }
            h.last_heard[i] = Instant::now();
            if h.status[i] == PeerStatus::Suspect {
                h.status[i] = PeerStatus::Alive;
                true
            } else {
                false
            }
        };
        if cleared {
            crate::runtime::proto_trace!(self, "peer {peer:?} heard from again; suspicion cleared");
            self.reset_retransmit_attempts(peer);
        }
    }

    /// Marks `peer` suspect (no-op if already suspect or dead). `reason`
    /// goes to the trace; the suspicion itself ages into a confirmed death
    /// only via the quiet-window check in [`Self::health_check`].
    pub(crate) fn health_suspect(&self, peer: NodeId, reason: &str) {
        if !self.health.enabled || peer == self.node {
            return;
        }
        {
            let mut h = self.health.inner.lock();
            let i = peer.as_usize();
            if h.status[i] != PeerStatus::Alive {
                return;
            }
            h.status[i] = PeerStatus::Suspect;
        }
        bump(&self.stats.peers_suspected);
        self.obs.record(
            self.clock.now().as_nanos(),
            crate::obs::EventKind::PeerSuspect,
            |ev| ev.peer = Some(peer),
        );
        crate::runtime::proto_trace!(self, "peer {peer:?} suspected ({reason})");
    }

    /// Ages the quiet windows: suspects peers quiet for more than half the
    /// detection window and confirms dead those quiet for the full window.
    /// Driven from both the `HealthTick` timer (service thread) and the
    /// blocked user thread's wait slices, so detection advances even when
    /// the destination's delivery schedule never goes idle.
    pub(crate) fn health_check(self: &Arc<Self>) {
        if !self.health.enabled {
            return;
        }
        let now = Instant::now();
        let mut to_suspect: Vec<NodeId> = Vec::new();
        let mut to_confirm: Vec<NodeId> = Vec::new();
        {
            let h = self.health.inner.lock();
            for i in 0..self.nodes {
                if i == self.node.as_usize() || h.status[i] == PeerStatus::Dead {
                    continue;
                }
                let quiet = now.duration_since(h.last_heard[i]);
                if quiet >= self.health.detect {
                    to_confirm.push(NodeId::new(i));
                } else if quiet >= self.health.detect / 2 && h.status[i] == PeerStatus::Alive {
                    to_suspect.push(NodeId::new(i));
                }
            }
        }
        for peer in to_suspect {
            self.health_suspect(peer, "quiet for half the detection window");
        }
        for peer in to_confirm {
            self.confirm_peer_dead(peer, false);
        }
    }

    /// The `HealthTick` handler (service thread): probes every non-dead
    /// peer when a wall-clock heartbeat period has elapsed, ages the quiet
    /// windows, and re-arms the timer. The tick fires far more often than it
    /// probes (see [`HEALTH_TICK_VIRT_NS`]); the wall-clock gate keeps the
    /// heartbeat rate — and its virtual-time footprint — at the configured
    /// quarter-window period.
    pub(crate) fn health_tick(self: &Arc<Self>) {
        if !self.health.enabled {
            return;
        }
        let probe = {
            let mut h = self.health.inner.lock();
            if h.last_beat.elapsed() >= self.heartbeat_every() {
                h.last_beat = Instant::now();
                true
            } else {
                false
            }
        };
        if probe {
            for peer in self.live_peers().iter() {
                bump(&self.stats.heartbeats_sent);
                let _ = self.send(peer, DsmMsg::Heartbeat);
            }
        }
        self.health_check();
        let due = self.clock.now() + VirtTime::from_nanos(HEALTH_TICK_VIRT_NS);
        let _ = self
            .sender
            .schedule_timer(due, "health", DsmMsg::HealthTick);
    }

    /// Confirms `peer` dead and, on the first confirmation (exactly one
    /// caller wins the status transition under the health mutex), gossips
    /// `PeerDown` to the survivors and runs the recovery walk. `via_gossip`
    /// suppresses the re-broadcast — receivers of gossip act locally only,
    /// so a death costs one broadcast, not a flood.
    pub(crate) fn confirm_peer_dead(self: &Arc<Self>, peer: NodeId, via_gossip: bool) {
        if !self.health.enabled || peer == self.node {
            return;
        }
        let detect_latency = {
            let mut h = self.health.inner.lock();
            let i = peer.as_usize();
            if h.status[i] == PeerStatus::Dead {
                return;
            }
            h.status[i] = PeerStatus::Dead;
            Instant::now().duration_since(h.last_heard[i])
        };
        bump(&self.stats.peers_dead);
        let t_virt = self.clock.now().as_nanos();
        self.obs
            .record(t_virt, crate::obs::EventKind::PeerDead, |ev| {
                ev.peer = Some(peer);
                ev.dur_ns = detect_latency.as_nanos() as u64;
            });
        self.obs
            .record_wait("peer_detect", detect_latency.as_nanos() as u64);
        crate::runtime::proto_trace!(
            self,
            "peer {peer:?} confirmed dead ({}; quiet {detect_latency:?})",
            if via_gossip {
                "gossip"
            } else {
                "local detection"
            }
        );
        if !via_gossip {
            for survivor in self.live_peers().iter() {
                let _ = self.send(survivor, DsmMsg::PeerDown { node: peer });
            }
        }
        let t0 = Instant::now();
        self.recover_from_death(peer);
        self.obs
            .record_wait("peer_recovery", t0.elapsed().as_nanos() as u64);
    }

    /// The set of confirmed-dead peers.
    pub(crate) fn dead_set(&self) -> NodeSet {
        let mut dead = NodeSet::EMPTY;
        if !self.health.enabled {
            return dead;
        }
        let h = self.health.inner.lock();
        for (i, s) in h.status.iter().enumerate() {
            if *s == PeerStatus::Dead {
                dead.insert(NodeId::new(i));
            }
        }
        dead
    }

    /// The set of peers not confirmed dead, excluding this node — the
    /// broadcast fan-out set. With detection off this is simply every other
    /// node.
    pub(crate) fn live_peers(&self) -> NodeSet {
        let mut live = NodeSet::full(self.nodes);
        live.remove(self.node);
        if self.health.enabled {
            live.difference_with(&self.dead_set());
        }
        live
    }

    /// Whether `peer` has been confirmed dead.
    pub(crate) fn is_peer_dead(&self, peer: NodeId) -> bool {
        if !self.health.enabled {
            return false;
        }
        let h = self.health.inner.lock();
        h.status
            .get(peer.as_usize())
            .is_some_and(|s| *s == PeerStatus::Dead)
    }

    /// The lowest-id dead peer not yet in `handled`, if any. `handled` is a
    /// per-wait-loop cursor so each death is signalled to a blocked
    /// operation exactly once.
    fn next_unhandled_dead(&self, handled: &NodeSet) -> Option<NodeId> {
        self.dead_set().first_not_in(handled)
    }

    /// Peers currently suspect or dead, as node indexes (stall forensics).
    pub(crate) fn suspected_snapshot(&self) -> Vec<usize> {
        if !self.health.enabled {
            return Vec::new();
        }
        let h = self.health.inner.lock();
        h.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != PeerStatus::Alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Like [`NodeRuntime::wait_reply`], but a blocked operation also wakes
    /// when the failure detector confirms a peer dead, via the internal
    /// [`MuninError::PeerDied`] signal. `handled` carries the already-
    /// signalled deaths across one call site's wait loop (start from the
    /// empty set), so each death interrupts the operation once —
    /// already-dead peers are signalled on the first call, which is what a
    /// call site that sent a request to a corpse needs. The timeout slices
    /// double as detection drive: a user thread blocked on a corpse ages
    /// the quiet windows itself instead of depending on the service
    /// thread's timer.
    pub(crate) fn wait_reply_or_dead(
        self: &Arc<Self>,
        op: WaitOp,
        handled: &mut NodeSet,
    ) -> Result<(Envelope, DsmMsg)> {
        if !self.health.enabled {
            return self.wait_reply(op);
        }
        let start = Instant::now();
        let entered_virt = self.clock.now().as_nanos();
        let done = |reply: (Envelope, DsmMsg)| {
            self.obs.record_wait(
                op.kind(),
                reply.0.arrival.as_nanos().saturating_sub(entered_virt),
            );
            Ok(reply)
        };
        loop {
            // A queued real reply beats a death signal: drain genuine
            // progress first so recovery only runs when the operation is
            // actually wedged.
            if let Ok(reply) = self.reply_rx.try_recv() {
                return done(reply);
            }
            if let Some(dead) = self.next_unhandled_dead(handled) {
                handled.insert(dead);
                return Err(MuninError::PeerDied(dead));
            }
            match self.reply_rx.recv_timeout(WATCHDOG_SLICE) {
                Ok(reply) => return done(reply),
                Err(_) => {
                    self.health_check();
                    let waited = start.elapsed();
                    if waited >= self.cfg.watchdog {
                        return Err(self.raise_stall(op, waited));
                    }
                }
            }
        }
    }

    /// The degraded-mode recovery walk, run exactly once per dead peer (the
    /// caller holds the first-confirmation ticket). Everything here acts on
    /// local state and sends fire-and-forget messages; nothing blocks on a
    /// reply, so the walk is safe from both threads.
    fn recover_from_death(self: &Arc<Self>, dead: NodeId) {
        self.purge_peer_link(dead);
        let t_virt = self.clock.now().as_nanos();
        // Directory walk: prune the corpse from every copyset and re-home
        // orphaned objects to the lowest-id surviving replica holder. Every
        // survivor prunes the same node and sorts the same copyset, so they
        // converge on the same new home without coordination.
        {
            let mut dir = self.dir.lock();
            for idx in 0..dir.len() {
                let e = dir.entry_mut(ObjectId::new(idx as u32));
                let mat = e.copyset.materialize(self.nodes);
                if mat.contains(dead) {
                    let mut pruned = mat;
                    pruned.remove(dead);
                    e.copyset = pruned;
                    bump(&self.stats.copysets_pruned);
                    self.obs
                        .record(t_virt, crate::obs::EventKind::CopysetPruned, |ev| {
                            ev.object = Some(e.object);
                            ev.peer = Some(dead);
                        });
                }
                if !e.state.owned && e.probable_owner == dead {
                    let first_survivor = e.copyset.iter(self.nodes, Some(dead)).next();
                    let self_has_copy = e.state.rights.allows_read();
                    let heir = if self_has_copy {
                        // This node's own copy competes for the adoption by id.
                        Some(first_survivor.map_or(self.node, |n| n.min(self.node)))
                    } else {
                        first_survivor
                    };
                    match heir {
                        Some(n) if n == self.node => {
                            e.state.owned = true;
                            e.probable_owner = self.node;
                            bump(&self.stats.objects_rehomed);
                            self.obs.record(
                                t_virt,
                                crate::obs::EventKind::OwnershipRecovered,
                                |ev| {
                                    ev.object = Some(e.object);
                                    ev.peer = Some(dead);
                                },
                            );
                        }
                        Some(n) => e.probable_owner = n,
                        None => {
                            // No known surviving copy. The hint falls back to
                            // the home node of last resort; if the object is
                            // truly orphaned the next fetch's recovery round
                            // (`refetch_orphan`) establishes that and raises
                            // `NodeDown`.
                            if e.home != dead {
                                e.probable_owner = e.home;
                            }
                        }
                    }
                }
            }
        }
        // Sync walk: lock tokens last seen heading towards the corpse are
        // regenerated at the lock's home (orphaned waiters re-send their
        // acquires there); barriers owned here exclude the dead node from
        // the arrival count, releasing waiters it was holding up. Release
        // sends happen outside the sync lock.
        let mut barrier_releases: Vec<(BarrierId, Vec<NodeId>)> = Vec::new();
        {
            let mut sync = self.sync.lock();
            for i in 0..sync.lock_count() {
                let id = LockId(i as u32);
                let home = self.lock_homes[i];
                let l = sync.lock_mut(id);
                // Capture before pruning: `prune_dead` redirects a hint that
                // points at the corpse, which would erase the evidence that
                // the token was last seen there.
                let token_lost = home == self.node && !l.owned && l.probable_owner == dead;
                l.prune_dead(dead, home);
                if token_lost && l.regenerate_token(self.node) {
                    crate::runtime::proto_trace!(
                        self,
                        "lock {i} token orphaned by {dead:?}; regenerated at home"
                    );
                }
            }
            for i in 0..sync.barrier_count() {
                let id = BarrierId(i as u32);
                let b = sync.barrier_mut(id);
                if b.owner == self.node {
                    if let Some(waiters) = b.exclude(dead) {
                        barrier_releases.push((id, waiters));
                    }
                }
            }
        }
        let now = self.clock.now();
        for (id, waiters) in barrier_releases {
            crate::runtime::proto_trace!(self, "barrier {} opens on exclusion of {dead:?}", id.0);
            self.release_barrier_waiters(id, waiters, now);
        }
        // Tree barriers re-evaluate on every node: a dead reporting ancestor
        // means this node's merged report must re-parent to a live one, and
        // a dead subtree member may complete the subtree right now.
        if self.cfg.effective_barrier_fanout().is_some() {
            self.tree_handle_death(dead);
        }
    }
}
