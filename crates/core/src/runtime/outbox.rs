//! The per-destination carrier/outbox layer.
//!
//! Munin's central message-economy claim is that release consistency lets the
//! runtime merge consistency traffic into far fewer messages than a
//! sequentially-consistent DSM. The outbox is where that merging lives:
//!
//! * **Cross-release coalescing** — a `Flush()`-hint flush whose objects are
//!   owned locally buffers its encoded updates here instead of sending them;
//!   the next transmission to the same destination (a release flush, a reply,
//!   a grant) carries them along, and consecutive hint flushes merge into one
//!   message per destination. The window is closed by an intervening acquire
//!   (see `NodeRuntime::close_coalescing_window`).
//! * **Piggybacking** — pending items for a destination are attached to any
//!   protocol message already headed there (lock grants, barrier releases,
//!   copyset replies, update acks), framed by [`crate::msg::DsmMsg::Carrier`].
//! * **Barrier relay** — at an all-node barrier the owner stashes the update
//!   bundles that rode in on `BarrierArrive` carriers and re-attaches each to
//!   the `BarrierRelease` headed to its destination, so a release flush costs
//!   no standalone update or ack messages at all.
//!
//! The outbox is a leaf lock: it is never held while the directory, DUQ, or
//! sync locks are taken. Only *owner-flushed* fan-out updates are ever
//! buffered or relayed (the flusher serves every fetch of those objects from
//! live memory itself), which is what makes delayed delivery safe — see
//! `DESIGN.md`, "Carrier layer", for the full argument.

use std::collections::BTreeMap;

use munin_sim::NodeId;

use crate::msg::{CarrierUpdate, UpdateItem};
use crate::sync::BarrierId;

/// The per-node outbox.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Coalesced (cross-release buffered) update items per destination.
    /// Only owner-flushed fan-out items are ever buffered.
    pending: BTreeMap<NodeId, Vec<UpdateItem>>,
    /// Relay stash at a barrier owner: bundles that rode in on arrive
    /// carriers, keyed by barrier and final destination so overlapping
    /// barrier episodes can never cross-contaminate.
    relay: BTreeMap<(BarrierId, NodeId), Vec<CarrierUpdate>>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers coalesced items for `dest`, appending after anything already
    /// pending (older changes must be applied first; diffs carry absolute
    /// word values, so in-order application is exact).
    pub fn buffer(&mut self, dest: NodeId, items: Vec<UpdateItem>) {
        self.pending.entry(dest).or_default().extend(items);
    }

    /// Takes everything pending for one destination (attach-to-carrier and
    /// per-destination transmission paths).
    pub fn take_pending(&mut self, dest: NodeId) -> Vec<UpdateItem> {
        self.pending.remove(&dest).unwrap_or_default()
    }

    /// Drains the whole pending map (release flushes and window closes).
    pub fn drain_pending(&mut self) -> BTreeMap<NodeId, Vec<UpdateItem>> {
        std::mem::take(&mut self.pending)
    }

    /// Whether any coalesced items are pending (tests).
    #[cfg(test)]
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether any coalesced item targets one of the listed objects (the
    /// `Invalidate`/`ChangeAnnotation` hints flush only when the objects
    /// they touch actually have buffered changes).
    pub fn has_pending_object(&self, objects: &[crate::object::ObjectId]) -> bool {
        self.pending
            .values()
            .flatten()
            .any(|i| objects.contains(&i.object))
    }

    /// Number of destinations with pending coalesced items (tests).
    #[cfg(test)]
    pub fn pending_destinations(&self) -> usize {
        self.pending.len()
    }

    /// Drops every buffered item for `object` headed to `dest`. Called when
    /// this node serves `dest` a fetch of `object`: the served bytes are the
    /// live memory, which already contains everything the buffered diffs
    /// would deliver — and delivering them later would *regress* the fresh
    /// copy if the object was written again after the buffering.
    pub fn drop_pending_object(&mut self, dest: NodeId, object: crate::object::ObjectId) {
        if let Some(items) = self.pending.get_mut(&dest) {
            items.retain(|i| i.object != object);
            if items.is_empty() {
                self.pending.remove(&dest);
            }
        }
    }

    /// Stashes a relayed bundle at the barrier owner until the barrier trips.
    pub fn stash_relay(&mut self, barrier: BarrierId, dest: NodeId, bundle: CarrierUpdate) {
        self.relay.entry((barrier, dest)).or_default().push(bundle);
    }

    /// Takes the relayed bundles to attach to the release headed to `dest`.
    pub fn take_relay(&mut self, barrier: BarrierId, dest: NodeId) -> Vec<CarrierUpdate> {
        self.relay.remove(&(barrier, dest)).unwrap_or_default()
    }

    /// Removes and returns every stashed bundle for `barrier` whose
    /// destination is *not* in `inside`. A combining-tree interior node
    /// calls this when forwarding its upward report: bundles leaving its
    /// static subtree ride the combine; bundles staying inside wait for the
    /// downward release.
    pub fn take_relay_outside(
        &mut self,
        barrier: BarrierId,
        inside: &crate::nodeset::NodeSet,
    ) -> Vec<(NodeId, Vec<CarrierUpdate>)> {
        self.take_relay_matching(barrier, |dest| !inside.contains(dest))
    }

    /// Removes and returns every stashed bundle for `barrier` whose
    /// destination is in `covered`, excluding `except` (whose bundles
    /// attach directly to its own release as carrier updates). The
    /// downward-release partition of the tree path.
    pub fn take_relay_within(
        &mut self,
        barrier: BarrierId,
        covered: &crate::nodeset::NodeSet,
        except: NodeId,
    ) -> Vec<(NodeId, Vec<CarrierUpdate>)> {
        self.take_relay_matching(barrier, |dest| dest != except && covered.contains(dest))
    }

    fn take_relay_matching(
        &mut self,
        barrier: BarrierId,
        pred: impl Fn(NodeId) -> bool,
    ) -> Vec<(NodeId, Vec<CarrierUpdate>)> {
        let keys: Vec<(BarrierId, NodeId)> = self
            .relay
            .keys()
            .filter(|(b, dest)| *b == barrier && pred(*dest))
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| (k.1, self.relay.remove(&k).unwrap_or_default()))
            .collect()
    }

    /// Number of stashed relay bundles (tests).
    #[cfg(test)]
    pub fn relay_len(&self) -> usize {
        self.relay.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::UpdatePayload;
    use crate::object::ObjectId;

    fn item(o: u32, byte: u8) -> UpdateItem {
        UpdateItem {
            object: ObjectId::new(o),
            payload: UpdatePayload::Full(vec![byte; 4]),
        }
    }

    #[test]
    fn buffered_items_merge_in_order_per_destination() {
        let mut ob = Outbox::new();
        let d = NodeId::new(1);
        ob.buffer(d, vec![item(0, 1)]);
        ob.buffer(d, vec![item(0, 2), item(3, 9)]);
        ob.buffer(NodeId::new(2), vec![item(1, 7)]);
        assert!(ob.has_pending());
        assert_eq!(ob.pending_destinations(), 2);
        let taken = ob.take_pending(d);
        assert_eq!(taken.len(), 3);
        // Older changes first: a later full image for the same object must
        // come after the earlier one so in-order application lands on the
        // newest state.
        assert_eq!(taken[0], item(0, 1));
        assert_eq!(taken[1], item(0, 2));
        assert_eq!(ob.pending_destinations(), 1);
        let drained = ob.drain_pending();
        assert_eq!(drained.len(), 1);
        assert!(!ob.has_pending());
    }

    /// Serving a fetch drops the served object's buffered items for the
    /// fetcher (they are subsumed by the live bytes), leaving other objects
    /// and destinations untouched.
    #[test]
    fn serving_a_fetch_drops_subsumed_pending_items() {
        let mut ob = Outbox::new();
        let d = NodeId::new(1);
        ob.buffer(d, vec![item(0, 1), item(3, 9), item(0, 2)]);
        ob.buffer(NodeId::new(2), vec![item(0, 7)]);
        ob.drop_pending_object(d, ObjectId::new(0));
        let left = ob.take_pending(d);
        assert_eq!(left, vec![item(3, 9)]);
        // Another destination's items for the same object are unaffected.
        assert_eq!(ob.take_pending(NodeId::new(2)), vec![item(0, 7)]);
        // Dropping the last item removes the destination entirely.
        ob.buffer(d, vec![item(5, 1)]);
        ob.drop_pending_object(d, ObjectId::new(5));
        assert!(!ob.has_pending());
    }

    #[test]
    fn relay_stash_is_keyed_by_barrier_and_destination() {
        let mut ob = Outbox::new();
        let bundle = |from: usize| CarrierUpdate {
            from: NodeId::new(from),
            seq: 0,
            items: vec![item(0, from as u8)],
            sync_install: false,
        };
        ob.stash_relay(BarrierId(0), NodeId::new(1), bundle(2));
        ob.stash_relay(BarrierId(0), NodeId::new(1), bundle(3));
        ob.stash_relay(BarrierId(1), NodeId::new(1), bundle(4));
        assert_eq!(ob.relay_len(), 3);
        let got = ob.take_relay(BarrierId(0), NodeId::new(1));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].from, NodeId::new(2));
        // The other barrier's stash is untouched.
        assert_eq!(ob.relay_len(), 1);
        assert!(ob.take_relay(BarrierId(0), NodeId::new(1)).is_empty());
    }

    /// The tree-path partition: `take_relay_outside` extracts exactly the
    /// bundles leaving a subtree, `take_relay_within` exactly the covered
    /// remainder minus the directly-released child, and neither touches the
    /// other barrier's stash.
    #[test]
    fn relay_partitions_split_a_stash_by_destination_set() {
        use crate::nodeset::NodeSet;
        let mut ob = Outbox::new();
        let bundle = |from: usize| CarrierUpdate {
            from: NodeId::new(from),
            seq: 0,
            items: vec![item(0, from as u8)],
            sync_install: false,
        };
        for dest in [1, 2, 5, 6] {
            ob.stash_relay(BarrierId(0), NodeId::new(dest), bundle(0));
        }
        ob.stash_relay(BarrierId(1), NodeId::new(5), bundle(0));
        let subtree = NodeSet::from_nodes([0, 1, 2].map(NodeId::new));
        let out = ob.take_relay_outside(BarrierId(0), &subtree);
        assert_eq!(
            out.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![NodeId::new(5), NodeId::new(6)]
        );
        // Inside bundles are still stashed; release to child 1 covering
        // {1, 2} re-relays only node 2's bundle.
        let covered = NodeSet::from_nodes([1, 2].map(NodeId::new));
        let within = ob.take_relay_within(BarrierId(0), &covered, NodeId::new(1));
        assert_eq!(
            within.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![NodeId::new(2)]
        );
        // Child 1's own bundle attaches via take_relay, and barrier 1's
        // stash never moved.
        assert_eq!(ob.take_relay(BarrierId(0), NodeId::new(1)).len(), 1);
        assert_eq!(ob.relay_len(), 1);
    }
}
