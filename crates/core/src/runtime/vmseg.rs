//! The VM-trap segment backend (`AccessMode::VmTraps`).
//!
//! In this mode a node's shared data segment lives in a
//! [`munin_vm::ProtectedRegion`] instead of a mutex-guarded `Vec<u8>`. Every
//! object occupies its own span of hardware pages (objects are page-aligned
//! so per-object directory rights can be expressed exactly as per-page
//! protections), and the directory's access rights are mirrored into page
//! protections at every rights transition: `Invalid → PROT_NONE`,
//! `Read → PROT_READ`, `ReadWrite → PROT_READ|PROT_WRITE`.
//!
//! # Layout
//!
//! Each object is laid out at a hardware-page boundary and is allotted
//! `ceil((size + 1) / hw_page)` pages. The `+ 1` guarantees at least one
//! byte of trailing slack: the *guard byte* at `region_offset + size`. Write
//! touches store to the guard byte — it shares the object's protection span
//! but never carries application data, so a touch that lands without
//! trapping (possible in the transient windows below) is harmless, and the
//! pin verification against the directory remains the single source of
//! truth. Inter-object layout therefore differs from the packed segment the
//! explicit mode uses, but *intra*-object bytes are contiguous, and every
//! path that matters (diff encode/apply, fetch serve/install, snapshots)
//! works object-at-a-time.
//!
//! # Access tiers
//!
//! * **User accesses** (the hot path): raw, lock-free copies performed by
//!   the user thread while the covered directory entries are *pinned*; the
//!   pin guarantees rights — and therefore protections — cannot change
//!   mid-copy, so these never fault.
//! * **Touches**: one volatile load (read) of the first data byte or one
//!   volatile store (write) to the guard byte per covered object, issued
//!   *before* pinning. Insufficient rights make the touch trap; the SIGSEGV
//!   handler routes the fault to the owning node's `read_fault`/`write_fault`
//!   protocol logic on the faulting (user) thread.
//! * **Privileged accesses**: everything the runtime does to segment memory
//!   that is not a user access (installing fetched data, applying diffs,
//!   serving copies of invalid objects, reductions, initialization,
//!   snapshots). These escalate the object's pages to the access they need,
//!   perform it, and restore the protection recorded in the shadow; they are
//!   serialized by one leaf mutex. A privileged escalation opens a transient
//!   window in which a touch that "should" trap does not — the pin
//!   verification turns that into a retry, never into a missed fault (see
//!   DESIGN.md "VM-trap access mode").

#[cfg(not(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
)))]
use std::sync::Arc;

#[cfg(not(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
)))]
use crate::object::ObjectId;
#[cfg(not(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
)))]
use crate::segment::SharedDataTable;

#[cfg(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
))]
mod real {
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Arc, Weak};

    use munin_vm::{PageRights, ProtectedRegion};
    use parking_lot::Mutex;

    use crate::directory::AccessRights;
    use crate::error::{MuninError, Result};
    use crate::object::ObjectId;
    use crate::runtime::NodeRuntime;
    use crate::segment::SharedDataTable;

    /// Per-object placement within the protected region.
    #[derive(Clone, Copy, Debug)]
    struct ObjSpan {
        /// First hardware page of the object's span.
        first_page: usize,
        /// Number of hardware pages in the span.
        page_count: usize,
        /// Byte offset of the object's data within the region.
        byte_offset: usize,
        /// Object size in bytes (the guard byte sits at `byte_offset + size`).
        size: usize,
    }

    /// Shadow protection states (mirrors `AccessRights`, stored per object).
    const SHADOW_NONE: u8 = 0;
    const SHADOW_READ: u8 = 1;
    const SHADOW_RW: u8 = 2;

    /// A node's shared segment backed by real page protections.
    pub struct VmSegment {
        region: ProtectedRegion,
        spans: Vec<ObjSpan>,
        /// Last protection synced from directory rights, per object. Used by
        /// privileged accesses to restore protection after an escalation.
        shadow: Vec<AtomicU8>,
        /// Serializes privileged escalate/access/restore sequences (and
        /// rights syncs) so concurrent privileged work cannot clobber each
        /// other's protection restores. Leaf lock: nothing else is acquired
        /// while it is held except the diff scratch (documented order).
        privileged: Mutex<()>,
    }

    impl VmSegment {
        /// Builds the region for `table`'s objects and registers a fault
        /// callback that routes traps to `runtime`'s fault protocol. All
        /// pages start inaccessible (`PROT_NONE`), matching the all-`Invalid`
        /// initial directory; `finish_root_init` raises the root's rights.
        pub fn for_runtime(
            table: &Arc<SharedDataTable>,
            runtime: Weak<NodeRuntime>,
        ) -> Result<Self> {
            let hw_page = ProtectedRegion::system_page_size();
            let mut spans = Vec::with_capacity(table.object_count());
            let mut page_cursor = 0usize;
            for obj in table.objects() {
                // `+ 1` reserves the guard byte in the trailing slack.
                let page_count = (obj.size + 1).div_ceil(hw_page);
                spans.push(ObjSpan {
                    first_page: page_cursor,
                    page_count,
                    byte_offset: page_cursor * hw_page,
                    size: obj.size,
                });
                page_cursor += page_count;
            }
            let callback: munin_vm::FaultCallback =
                Box::new(move |offset, is_write| match runtime.upgrade() {
                    Some(rt) => rt.vm_fault(offset, is_write),
                    None => false,
                });
            let region = ProtectedRegion::with_callback(page_cursor.max(1), callback)
                .map_err(|_| MuninError::VmUnavailable("protected region setup failed"))?;
            region
                .set_rights(0, region.pages(), PageRights::None)
                .map_err(|_| MuninError::VmUnavailable("initial protection failed"))?;
            Ok(VmSegment {
                region,
                shadow: (0..spans.len())
                    .map(|_| AtomicU8::new(SHADOW_NONE))
                    .collect(),
                spans,
                privileged: Mutex::new(()),
            })
        }

        fn span(&self, object: ObjectId) -> ObjSpan {
            self.spans[object.as_usize()]
        }

        /// Base pointer of an object's data within the region.
        fn obj_ptr(&self, object: ObjectId) -> *mut u8 {
            // SAFETY: the span offset lies inside the mapped region.
            unsafe { self.region.base_ptr().add(self.span(object).byte_offset) }
        }

        /// Maps a faulting region byte offset back to the object whose page
        /// span contains it.
        pub fn object_at(&self, region_offset: usize) -> Option<ObjectId> {
            let idx = self
                .spans
                .partition_point(|s| s.byte_offset <= region_offset)
                .checked_sub(1)?;
            let span = self.spans[idx];
            let hw_page = self.region.page_size();
            if region_offset < span.byte_offset + span.page_count * hw_page {
                Some(ObjectId::new(idx as u32))
            } else {
                None
            }
        }

        fn rights_to_page(rights: AccessRights) -> (PageRights, u8) {
            match rights {
                AccessRights::Invalid => (PageRights::None, SHADOW_NONE),
                AccessRights::Read => (PageRights::Read, SHADOW_READ),
                AccessRights::ReadWrite => (PageRights::ReadWrite, SHADOW_RW),
            }
        }

        /// Mirrors a directory rights change into the object's page
        /// protections. Called from within the directory-lock scope that
        /// changes the rights, so protections never lag behind rights as far
        /// as any directory-lock holder can observe.
        pub fn sync_rights(&self, object: ObjectId, rights: AccessRights) {
            let _priv_guard = self.privileged.lock();
            let (prot, shadow) = Self::rights_to_page(rights);
            let span = self.span(object);
            self.shadow[object.as_usize()].store(shadow, Ordering::Release);
            self.region
                .set_rights(span.first_page, span.page_count, prot)
                .expect("mprotect on own mapping cannot fail");
        }

        /// Loosens the object's pages to read-write *without* touching the
        /// shadow — the fault handler's error path uses this so a failed
        /// touch can complete and the user thread can observe the error; the
        /// touch wrapper re-syncs from the directory immediately after.
        pub fn force_writable(&self, object: ObjectId) {
            let span = self.span(object);
            // A failure here would re-raise the same fault forever; the
            // panic (→ abort from signal context) is the loud alternative.
            self.region
                .set_rights(span.first_page, span.page_count, PageRights::ReadWrite)
                .expect("mprotect loosening on own mapping failed");
        }

        /// Read touch: a volatile load of the object's first data byte. Traps
        /// (and resolves via the fault protocol) when the object is invalid.
        pub fn touch_read(&self, object: ObjectId) {
            // SAFETY: in-bounds; a protection fault is resolved by the
            // registered callback before the load completes.
            unsafe { std::ptr::read_volatile(self.obj_ptr(object)) };
        }

        /// Write touch: a volatile store to the object's guard byte. Traps
        /// when the object is not writable; the stored value never matters.
        pub fn touch_write(&self, object: ObjectId) {
            let size = self.span(object).size;
            // SAFETY: the guard byte at `size` is inside the page span
            // reserved for this object; faults resolve via the callback.
            unsafe { std::ptr::write_volatile(self.obj_ptr(object).add(size), 1) };
        }

        /// Raw user-access copy out of an object. Caller must hold the pin on
        /// the object's directory entry with at least read rights.
        pub fn user_copy_out(&self, object: ObjectId, obj_off: usize, out: &mut [u8]) {
            debug_assert!(obj_off + out.len() <= self.span(object).size);
            // SAFETY: in-bounds; the pin guarantees readable protection for
            // the duration and excludes concurrent privileged writers.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.obj_ptr(object).add(obj_off),
                    out.as_mut_ptr(),
                    out.len(),
                );
            }
        }

        /// Raw user-access copy into an object. Caller must hold the pin on
        /// the object's directory entry with write rights.
        pub fn user_copy_in(&self, object: ObjectId, obj_off: usize, data: &[u8]) {
            debug_assert!(obj_off + data.len() <= self.span(object).size);
            // SAFETY: in-bounds; the pin guarantees writable protection for
            // the duration and excludes concurrent privileged access.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    data.as_ptr(),
                    self.obj_ptr(object).add(obj_off),
                    data.len(),
                );
            }
        }

        /// Privileged read view of an object's current bytes. Escalates
        /// inaccessible pages to readable for the duration and restores the
        /// shadow protection afterwards.
        pub fn with_object<R>(&self, object: ObjectId, f: impl FnOnce(&[u8]) -> R) -> R {
            let _priv_guard = self.privileged.lock();
            let span = self.span(object);
            let shadow = self.shadow[object.as_usize()].load(Ordering::Acquire);
            if shadow == SHADOW_NONE {
                self.region
                    .set_rights(span.first_page, span.page_count, PageRights::Read)
                    .expect("mprotect escalation on own mapping failed");
            }
            // SAFETY: in-bounds readable pages; the privileged mutex excludes
            // other privileged views and the protocol (pin/busy deferral)
            // excludes concurrent user writes to this object.
            let result = f(unsafe { std::slice::from_raw_parts(self.obj_ptr(object), span.size) });
            if shadow == SHADOW_NONE {
                // A silently skipped restore would leave the pages looser
                // than the directory rights — touches would stop trapping
                // and the pin loop would spin. Fail loudly instead.
                self.region
                    .set_rights(span.first_page, span.page_count, PageRights::None)
                    .expect("mprotect restore on own mapping failed");
            }
            result
        }

        /// Privileged write access to an object's bytes. Escalates the pages
        /// to read-write for the duration and restores the shadow protection
        /// afterwards.
        pub fn with_object_mut<R>(&self, object: ObjectId, f: impl FnOnce(&mut [u8]) -> R) -> R {
            let _priv_guard = self.privileged.lock();
            let span = self.span(object);
            let shadow = self.shadow[object.as_usize()].load(Ordering::Acquire);
            if shadow != SHADOW_RW {
                let _ =
                    self.region
                        .set_rights(span.first_page, span.page_count, PageRights::ReadWrite);
            }
            // SAFETY: in-bounds writable pages; the privileged mutex and the
            // protocol's pin/busy deferral exclude concurrent access.
            let result =
                f(unsafe { std::slice::from_raw_parts_mut(self.obj_ptr(object), span.size) });
            if shadow != SHADOW_RW {
                let prot = if shadow == SHADOW_READ {
                    PageRights::Read
                } else {
                    PageRights::None
                };
                let _ = self
                    .region
                    .set_rights(span.first_page, span.page_count, prot);
            }
            result
        }

        /// Cheaply verifies the trap substrate actually works in this
        /// process (handler installation and an anonymous mapping succeed),
        /// so `MuninProgram::run` can fail with a typed error *before*
        /// spawning node threads instead of panicking one mid-setup.
        pub fn preflight() -> Result<()> {
            ProtectedRegion::new(1)
                .map(|_| ())
                .map_err(|_| MuninError::VmUnavailable("trap substrate probe failed"))
        }

        /// Copies every object back into the packed (explicit-mode) segment
        /// layout — used for end-of-run snapshots.
        pub fn snapshot_packed(&self, table: &SharedDataTable) -> Vec<u8> {
            let mut out = vec![0u8; table.segment_len()];
            for obj in table.objects() {
                self.with_object(obj.id, |bytes| {
                    out[obj.segment_offset..obj.segment_offset + obj.size].copy_from_slice(bytes);
                });
            }
            out
        }
    }

    // SAFETY: the raw region pointers are only dereferenced under the
    // concurrency protocol documented on each method (pins for user
    // accesses, the privileged mutex plus busy/pin deferral for privileged
    // ones); everything else is atomics and syscalls.
    unsafe impl Send for VmSegment {}
    // SAFETY: see above.
    unsafe impl Sync for VmSegment {}
}

#[cfg(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
))]
pub(crate) use real::VmSegment;

/// Stub for targets without the trap substrate: uninhabited, so every method
/// body is trivially unreachable and call sites need no `cfg` gates.
#[cfg(not(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
)))]
pub(crate) enum VmSegment {}

#[cfg(not(all(
    target_os = "linux",
    target_arch = "x86_64",
    target_pointer_width = "64"
)))]
#[allow(unused_variables, unreachable_code)]
impl VmSegment {
    pub fn for_runtime(
        table: &Arc<SharedDataTable>,
        runtime: std::sync::Weak<super::NodeRuntime>,
    ) -> crate::error::Result<Self> {
        Err(crate::error::MuninError::VmUnavailable(
            "AccessMode::VmTraps requires 64-bit Linux on x86_64",
        ))
    }
    pub fn preflight() -> crate::error::Result<()> {
        Err(crate::error::MuninError::VmUnavailable(
            "AccessMode::VmTraps requires 64-bit Linux on x86_64",
        ))
    }
    pub fn object_at(&self, region_offset: usize) -> Option<ObjectId> {
        match *self {}
    }
    pub fn sync_rights(&self, object: ObjectId, rights: crate::directory::AccessRights) {
        match *self {}
    }
    pub fn force_writable(&self, object: ObjectId) {
        match *self {}
    }
    pub fn touch_read(&self, object: ObjectId) {
        match *self {}
    }
    pub fn touch_write(&self, object: ObjectId) {
        match *self {}
    }
    pub fn user_copy_out(&self, object: ObjectId, obj_off: usize, out: &mut [u8]) {
        match *self {}
    }
    pub fn user_copy_in(&self, object: ObjectId, obj_off: usize, data: &[u8]) {
        match *self {}
    }
    pub fn with_object<R>(&self, object: ObjectId, f: impl FnOnce(&[u8]) -> R) -> R {
        match *self {}
    }
    pub fn with_object_mut<R>(&self, object: ObjectId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        match *self {}
    }
    pub fn snapshot_packed(&self, table: &SharedDataTable) -> Vec<u8> {
        match *self {}
    }
}
