//! User-thread synchronization operations and program-control protocol.
//!
//! Lock acquire/release, barrier waits, `Fetch_and_Φ` on reduction objects,
//! the `PreAcquire` hint, and the end-of-run completion handshake between the
//! workers and the root.

use std::sync::Arc;

use munin_sim::NodeId;

use crate::annotation::SharingAnnotation;
use crate::error::{MuninError, Result};
use crate::msg::{DsmMsg, ReduceOp, RelayUpdate};
use crate::object::ObjectId;
use crate::stats::{add, bump};
use crate::sync::{BarrierId, LockId};

use super::flush::FlushMode;
use super::NodeRuntime;

impl NodeRuntime {
    /// Installs the lock ↔ data associations declared with
    /// `AssociateDataAndSynch` (known to every node, since they are part of
    /// the program description).
    pub(crate) fn apply_lock_associations(&self, associations: &[Vec<ObjectId>]) {
        let mut sync = self.sync.lock();
        for (idx, objects) in associations.iter().enumerate() {
            sync.lock_mut(LockId(idx as u32)).associated = objects.clone();
        }
    }

    /// Acquires a distributed lock (an *acquire* in the release-consistency
    /// sense). An acquire closes the outbox's coalescing window: updates
    /// buffered by earlier `Flush()` hints are transmitted (and
    /// acknowledged) before the acquire proceeds, so no flush can be merged
    /// across an acquire.
    pub(crate) fn acquire_lock(self: &Arc<Self>, lock: LockId) -> Result<()> {
        self.close_coalescing_window()?;
        bump(&self.stats.lock_acquires);
        self.charge_sys(self.cost.sync_op());
        let hint = {
            let mut sync = self.sync.lock();
            if sync.lock_count() <= lock.0 as usize {
                return Err(MuninError::UnknownSyncObject(lock.0));
            }
            let state = sync.lock_mut(lock);
            if state.try_local_acquire() {
                bump(&self.stats.lock_local_acquires);
                return Ok(());
            }
            state.probable_owner
        };
        add(&self.stats.lock_messages, 1);
        let t0 = self.clock.now().as_nanos();
        self.obs
            .record(t0, crate::obs::EventKind::LockRequest, |ev| {
                ev.sync_id = Some(lock.0);
                ev.peer = Some(hint);
            });
        // Mark the grant as awaited *before* sending: the service thread
        // consumes this flag when routing the grant, and absorbs any grant
        // it arrives without (see `route_to_user`).
        self.waiting_grant
            .store(lock.0 + 1, std::sync::atomic::Ordering::Release);
        self.send(
            hint,
            DsmMsg::LockAcquire {
                lock,
                requester: self.node,
            },
        )?;
        // A peer death mid-wait may have taken the token (and the request
        // with it): the home regenerates orphaned tokens, so re-issue the
        // acquire there. The home's queue deduplicates, so a request that
        // was *not* actually lost cannot queue this node twice; a grant
        // produced twice anyway is absorbed by the routing guard above.
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        let (env, reply) = loop {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::LockGrant(lock.0), &mut handled) {
                Ok(reply) => break reply,
                Err(MuninError::PeerDied(_)) => {
                    let home = self.lock_homes[lock.0 as usize];
                    if self.is_peer_dead(home) {
                        self.waiting_grant
                            .store(0, std::sync::atomic::Ordering::Release);
                        bump(&self.stats.runtime_errors);
                        return Err(MuninError::NodeDown {
                            node: home,
                            lost_objects: Vec::new(),
                        });
                    }
                    add(&self.stats.lock_messages, 1);
                    self.waiting_grant
                        .store(lock.0 + 1, std::sync::atomic::Ordering::Release);
                    self.send(
                        home,
                        DsmMsg::LockAcquire {
                            lock,
                            requester: self.node,
                        },
                    )?;
                }
                Err(e) => {
                    self.waiting_grant
                        .store(0, std::sync::atomic::Ordering::Release);
                    return Err(e);
                }
            }
        };
        self.obs.record(
            env.arrival.as_nanos(),
            crate::obs::EventKind::LockGrant,
            |ev| {
                ev.sync_id = Some(lock.0);
                ev.dur_ns = env.arrival.as_nanos().saturating_sub(t0);
            },
        );
        match reply {
            DsmMsg::LockGrant { lock: l, queue } if l == lock => {
                // Any consistency data rode the grant's carrier frame and was
                // installed by the service loop's unified carrier-install
                // path before this reply was routed here.
                let mut sync = self.sync.lock();
                sync.lock_mut(lock).receive_grant(queue, self.node);
                Ok(())
            }
            _ => Err(MuninError::ProtocolViolation(
                "unexpected reply while waiting for a lock grant",
            )),
        }
    }

    /// Releases a distributed lock (a *release*): flushes the DUQ first, then
    /// passes ownership to the first waiter if any.
    ///
    /// With piggybacking enabled and a waiter already queued, owner-flushed
    /// updates destined for that waiter skip the standalone update+ack round
    /// and ride the `LockGrant` carrier instead: the grantee installs them
    /// before its acquire returns, which is exactly the visibility point the
    /// legacy ack round guaranteed.
    pub(crate) fn release_lock(self: &Arc<Self>, lock: LockId) -> Result<()> {
        // Peek the head waiter before flushing. Only the releasing user
        // thread ever pops the queue, and the service thread only appends,
        // so the head cannot change under us while we flush.
        let grantee = {
            let sync = self.sync.lock();
            if sync.lock_count() <= lock.0 as usize {
                return Err(MuninError::UnknownSyncObject(lock.0));
            }
            let state = sync.lock(lock);
            if !state.held {
                return Err(MuninError::LockNotHeld(lock.0));
            }
            state.queue.front().copied()
        };
        let mode = match grantee {
            Some(next) if self.cfg.piggyback => FlushMode::LockRelay { grantee: next },
            _ => FlushMode::Immediate,
        };
        let mut relay = self.flush_duq_mode(mode)?;
        self.charge_sys(self.cost.sync_op());
        let handoff = {
            let mut sync = self.sync.lock();
            sync.lock_mut(lock).release()
        };
        if let Some((next, rest)) = handoff {
            let diverted = relay.remove(&next).unwrap_or_default();
            debug_assert!(relay.is_empty(), "lock relay only ever targets the grantee");
            self.send_lock_grant(lock, next, rest, diverted);
        }
        Ok(())
    }

    /// Waits at a barrier (a *release* followed by an *acquire*): flushes the
    /// DUQ, notifies the barrier owner, and blocks until the barrier opens.
    ///
    /// With piggybacking enabled at an all-node barrier, owner-flushed
    /// updates ride the `BarrierArrive` carrier to the owner, which
    /// re-attaches each bundle to the `BarrierRelease` headed to its
    /// destination — a release flush then costs no standalone update or ack
    /// messages. Every destination is a barrier participant, and each
    /// installs its bundle before its release is routed to the user thread,
    /// so no thread can pass the barrier and observe pre-flush data.
    pub(crate) fn wait_at_barrier(self: &Arc<Self>, barrier: BarrierId) -> Result<()> {
        let (owner, parties) = {
            let sync = self.sync.lock();
            if sync.barrier_count() <= barrier.0 as usize {
                return Err(MuninError::UnknownSyncObject(barrier.0));
            }
            let b = sync.barrier(barrier);
            (b.owner, b.parties)
        };
        let tree = self.tree_topology(barrier);
        // Tree mode keeps the barrier-relay flush (bundles ride the tree
        // hops) — except when the failure detector is armed: a relayed
        // bundle parked at a dying interior node would be lost with it, so
        // crash-tolerant tree runs flush eagerly instead. The flat path
        // keeps its relay either way (the owner's recovery already covers
        // it).
        let mode = if self.cfg.piggyback
            && parties == self.nodes
            && (tree.is_none() || !self.health_enabled())
        {
            FlushMode::BarrierRelay { owner }
        } else {
            FlushMode::Immediate
        };
        let relay = self.flush_duq_mode(mode)?;
        crate::runtime::proto_trace!(self, "arrive barrier {barrier:?}");
        bump(&self.stats.barrier_waits);
        self.charge_sys(self.cost.sync_op());
        let t0 = self.clock.now().as_nanos();
        self.obs
            .record(t0, crate::obs::EventKind::BarrierArrive, |ev| {
                ev.sync_id = Some(barrier.0);
                ev.peer = Some(owner);
            });
        let arrive = DsmMsg::BarrierArrive {
            barrier,
            from: self.node,
        };
        if let Some(topo) = &tree {
            self.tree_arrive_local(barrier, topo, relay);
        } else if relay.is_empty() {
            self.send(owner, arrive)?;
        } else {
            let relay: Vec<RelayUpdate> = relay
                .into_iter()
                .map(|(dest, items)| {
                    add(&self.stats.msgs_piggybacked, 1);
                    self.note_update_sent(&items);
                    RelayUpdate {
                        dest,
                        from: self.node,
                        // The bundle takes its slot in this node's update
                        // stream to `dest` *now*, so any later direct update
                        // gets a higher number and can never be overtaken by
                        // this bundle's slower owner-relayed route.
                        seq: self.next_update_seq(dest),
                        items,
                    }
                })
                .collect();
            self.send(
                owner,
                DsmMsg::Carrier {
                    inner: Some(Box::new(arrive)),
                    updates: Vec::new(),
                    relay,
                },
            )?;
        }
        // A participant dying mid-wait is survivable — the owner's recovery
        // excludes it from the arrival count and releases the rest — but the
        // owner itself dying takes the barrier state with it.
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        let (env, reply) = loop {
            match self.wait_reply_or_dead(
                crate::runtime::WaitOp::BarrierRelease(barrier.0),
                &mut handled,
            ) {
                Ok(reply) => break reply,
                Err(MuninError::PeerDied(dead)) if dead == owner => {
                    bump(&self.stats.runtime_errors);
                    return Err(MuninError::NodeDown {
                        node: owner,
                        lost_objects: Vec::new(),
                    });
                }
                Err(MuninError::PeerDied(dead)) => {
                    // Tree mode: the corpse may have been this node's
                    // reporting ancestor (re-send the report to a live one)
                    // or the last hold-out in its subtree (advance now).
                    // Recovery also runs this; doing it here too closes the
                    // race where this thread sees the death first.
                    if tree.is_some() {
                        self.tree_handle_death(dead);
                    }
                }
                Err(e) => return Err(e),
            }
        };
        self.obs.record(
            env.arrival.as_nanos(),
            crate::obs::EventKind::BarrierRelease,
            |ev| {
                ev.sync_id = Some(barrier.0);
                ev.dur_ns = env.arrival.as_nanos().saturating_sub(t0);
            },
        );
        match reply {
            DsmMsg::BarrierRelease { barrier: b } if b == barrier => Ok(()),
            _ => Err(MuninError::ProtocolViolation(
                "unexpected reply while waiting at a barrier",
            )),
        }
    }

    /// Performs a `Fetch_and_Φ` on an element of a reduction object,
    /// returning the element's previous raw value.
    pub(crate) fn reduce(
        self: &Arc<Self>,
        object: ObjectId,
        offset: usize,
        op: ReduceOp,
    ) -> Result<Vec<u8>> {
        bump(&self.stats.reductions);
        let (annotation, owner) = {
            let dir = self.dir.lock();
            let e = dir.entry(object);
            (e.annotation, e.home)
        };
        if annotation != SharingAnnotation::Reduction {
            return Err(MuninError::NotAReductionObject(object));
        }
        if owner == self.node {
            self.charge_sys(self.cost.sync_op());
            return Ok(self.apply_reduce_local(object, offset, op));
        }
        self.send(
            owner,
            DsmMsg::ReduceRequest {
                object,
                offset,
                op,
                requester: self.node,
            },
        )?;
        // Reduction state lives only at the object's fixed home: its death
        // is unrecoverable for this object, any other death is irrelevant.
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        let (_env, reply) = loop {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::Reduce(object), &mut handled) {
                Ok(reply) => break reply,
                Err(MuninError::PeerDied(dead)) if dead == owner => {
                    bump(&self.stats.runtime_errors);
                    return Err(MuninError::NodeDown {
                        node: owner,
                        lost_objects: vec![object],
                    });
                }
                Err(MuninError::PeerDied(_)) => {}
                Err(e) => return Err(e),
            }
        };
        match reply {
            DsmMsg::ReduceReply { old } => Ok(old),
            _ => Err(MuninError::ProtocolViolation(
                "unexpected reply to a Fetch_and_Φ request",
            )),
        }
    }

    /// `PreAcquire()` hint: fetches readable copies of the given objects in
    /// anticipation of future use, avoiding later read-miss latency.
    pub(crate) fn pre_acquire(self: &Arc<Self>, objects: &[ObjectId]) -> Result<()> {
        for object in objects {
            self.ensure_read(*object)?;
        }
        Ok(())
    }

    // --- end-of-run completion protocol -----------------------------------

    /// Called by a non-root worker when its closure has finished.
    pub(crate) fn signal_worker_done(self: &Arc<Self>) -> Result<()> {
        self.send(NodeId::new(0), DsmMsg::WorkerDone { from: self.node })
    }

    /// Called by the root to wait until every other worker has finished. A
    /// worker confirmed dead is struck from the roster — its notification
    /// will never come, and the root carries on with the survivors'
    /// results. (A worker that notified *and then* died counts once.)
    pub(crate) fn wait_workers_done(self: &Arc<Self>) -> Result<()> {
        let mut pending: Vec<NodeId> = (1..self.nodes).map(NodeId::new).collect();
        loop {
            pending.retain(|&n| !self.is_peer_dead(n));
            if pending.is_empty() {
                return Ok(());
            }
            if let Some(from) = self.wait_worker_done_notification()? {
                pending.retain(|&n| n != from);
            }
        }
    }

    /// Called by a non-root worker after signalling completion: blocks until
    /// the root broadcasts shutdown (its service thread keeps serving
    /// requests in the meantime, e.g. for the root's `user_done` phase).
    /// Only the root can end the run, so its death here is terminal.
    pub(crate) fn wait_for_shutdown(self: &Arc<Self>) -> Result<()> {
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        loop {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::Shutdown, &mut handled) {
                Ok((_env, DsmMsg::Shutdown)) => return Ok(()),
                Ok(_) => {}
                Err(MuninError::PeerDied(dead)) if dead == NodeId::new(0) => {
                    bump(&self.stats.runtime_errors);
                    return Err(MuninError::NodeDown {
                        node: dead,
                        lost_objects: Vec::new(),
                    });
                }
                Err(MuninError::PeerDied(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Called by the root at the very end: tells every node (including
    /// itself, so its own service loop exits) to shut down.
    pub(crate) fn broadcast_shutdown(self: &Arc<Self>) -> Result<()> {
        // Workers first, self strictly last. The moment this node's own
        // service loop dispatches the self-addressed `Shutdown` it moves to
        // the bounded unacked drain and then exits — so every worker frame
        // must already be wrapped (and thus held for retransmission by that
        // drain) before the self frame is even submitted. Sending to self
        // first would race the drain against the rest of the broadcast: a
        // worker `Shutdown` lost after the drain finds the queue empty has
        // no retransmitter, and that worker stalls in `shutdown_wait` until
        // its watchdog fires.
        // A dead worker's shutdown would sit unacknowledged in the reliable
        // link forever and hold the drain at its deadline, so the fan-out
        // walks the live set only.
        for n in self.live_peers().iter() {
            self.send(n, DsmMsg::Shutdown)?;
        }
        self.send(self.node, DsmMsg::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MuninConfig;
    use crate::segment::SharedDataTable;
    use munin_sim::{CostModel, Network, NodeClock};
    use std::collections::HashSet;

    fn single_node_with_sync() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("mig", SharingAnnotation::Migratory, 4, 4, false);
        table.declare("red", SharingAnnotation::Reduction, 8, 1, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(1));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(1, CostModel::fast_test());
        let (tx, _rx) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            1,
            cfg,
            table,
            vec![NodeId::new(0)],
            vec![(NodeId::new(0), 1)],
            clock,
            Arc::new(CostModel::fast_test()),
            tx,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        rt
    }

    #[test]
    fn local_lock_acquire_and_release_need_no_messages() {
        let rt = single_node_with_sync();
        rt.acquire_lock(LockId(0)).unwrap();
        rt.release_lock(LockId(0)).unwrap();
        let snap = rt.stats().snapshot();
        assert_eq!(snap.lock_acquires, 1);
        assert_eq!(snap.lock_local_acquires, 1);
        assert_eq!(snap.lock_messages, 0);
    }

    #[test]
    fn releasing_an_unheld_lock_is_an_error() {
        let rt = single_node_with_sync();
        assert_eq!(
            rt.release_lock(LockId(0)).unwrap_err(),
            MuninError::LockNotHeld(0)
        );
    }

    #[test]
    fn unknown_sync_objects_are_rejected() {
        let rt = single_node_with_sync();
        assert!(matches!(
            rt.acquire_lock(LockId(9)),
            Err(MuninError::UnknownSyncObject(9))
        ));
        assert!(matches!(
            rt.wait_at_barrier(BarrierId(9)),
            Err(MuninError::UnknownSyncObject(9))
        ));
    }

    #[test]
    fn local_reduce_applies_and_returns_old_value() {
        let rt = single_node_with_sync();
        let red = rt.table().var_by_name("red").unwrap().objects[0];
        let old = rt.reduce(red, 0, ReduceOp::AddI64(5)).unwrap();
        assert_eq!(i64::from_le_bytes(old.try_into().unwrap()), 0);
        let old = rt.reduce(red, 0, ReduceOp::AddI64(3)).unwrap();
        assert_eq!(i64::from_le_bytes(old.try_into().unwrap()), 5);
        let now = rt.reduce(red, 0, ReduceOp::Read).unwrap();
        assert_eq!(i64::from_le_bytes(now.try_into().unwrap()), 8);
    }

    #[test]
    fn reduce_on_non_reduction_object_is_rejected() {
        let rt = single_node_with_sync();
        let mig = rt.table().var_by_name("mig").unwrap().objects[0];
        assert!(matches!(
            rt.reduce(mig, 0, ReduceOp::AddI64(1)),
            Err(MuninError::NotAReductionObject(_))
        ));
    }

    #[test]
    fn lock_associations_are_installed() {
        let rt = single_node_with_sync();
        let mig = rt.table().var_by_name("mig").unwrap().objects[0];
        rt.apply_lock_associations(&[vec![mig]]);
        assert_eq!(rt.sync.lock().lock(LockId(0)).associated, vec![mig]);
    }
}
