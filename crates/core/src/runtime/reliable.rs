//! The reliability layer: per-link message ids, cumulative acks,
//! retransmission with exponential backoff, and duplicate suppression.
//!
//! The event engine (and any future socket transport) may *lose* messages;
//! the Munin protocol above assumes it never does. This layer sits exactly at
//! the send/receive seam and restores that assumption: every outbound
//! protocol message is wrapped in [`DsmMsg::Reliable`] carrying a
//! per-(source, destination) message id — a generalization of the update
//! `seq` stream to all traffic — plus a cumulative ack of everything received
//! from that destination. Receivers deliver in id order exactly once
//! (buffering early arrivals, dropping duplicates below the receive
//! frontier), so the handlers above see the same in-order exactly-once
//! stream they always did. Senders hold unacked messages and retransmit on a
//! wall-clock backoff driven by engine timer events, which fire only when
//! the destination's delivery schedule is otherwise idle — a lost message
//! therefore stalls its link only until the next tick, not forever.
//!
//! The layer is off by default and auto-enables when the engine injects
//! loss (`MuninConfig::reliability` / `MUNIN_RELIABILITY` override the auto
//! policy). When off, `wrap_outgoing` is an `enabled` check and nothing else
//! changes on the wire, so loss-free runs keep byte-identical schedules.
//!
//! Lock order: the reliable state is a leaf lock except that raw engine
//! sends (`Sender::send`, `Sender::schedule_timer`) are performed while it
//! is held — reliable lock → engine shard lock is the one permitted
//! nesting. It is never held while the directory, DUQ, sync, or outbox
//! locks are taken, and `NodeRuntime::send`/`send_service` take it only in
//! `wrap_outgoing` (which performs no engine call).

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use munin_sim::{DeliveryMode, NodeId, VirtTime};

use crate::config::MuninConfig;
use crate::msg::DsmMsg;
use crate::stats;

use super::NodeRuntime;

/// Cap on the backoff exponent: backoff = pacing × 2^min(attempts, CAP).
const BACKOFF_EXP_CAP: u32 = 8;

/// Retransmit-attempt cap when failure detection is on: a message unacked
/// after this many attempts stops being retransmitted and marks the peer
/// suspect instead of spinning forever. Without detection the sweep stays
/// unbounded — a plain lossy run with no crash plan should keep converging
/// (and, if truly wedged, surface a watchdog stall, not a silent give-up).
const MAX_RETRANSMIT_ATTEMPTS: u32 = 32;

/// One unacknowledged outbound message, held for retransmission.
#[derive(Debug)]
struct UnackedEntry {
    /// Per-link message id (the id the wrapped transmission carried).
    id: u64,
    /// The inner protocol message, re-wrapped on retransmit with a fresh
    /// cumulative ack.
    inner: DsmMsg,
    /// Retransmissions performed so far (governs the backoff exponent).
    attempts: u32,
    /// Wall-clock time of the most recent transmission.
    last_tx: Instant,
}

/// Per-peer link state (one per destination, including the self link — the
/// engine's loss injection is per-lane and the self lane is a lane).
#[derive(Debug)]
struct PeerState {
    /// Id the next outbound wrapped message will carry (ids start at 1).
    next_id_out: u64,
    /// Outbound messages not yet covered by a cumulative ack from the peer.
    unacked: VecDeque<UnackedEntry>,
    /// Next inbound id we will deliver (everything below is acknowledged).
    next_id_in: u64,
    /// Early arrivals (id above `next_id_in`) buffered until the gap fills.
    reorder: BTreeMap<u64, DsmMsg>,
    /// Whether the peer has sent us something since our last ack to it; the
    /// ack rides the next outbound wrapped message, or a standalone
    /// `NetAck` at the next tick.
    acks_owed: bool,
}

impl PeerState {
    fn new() -> Self {
        PeerState {
            next_id_out: 1,
            unacked: VecDeque::new(),
            next_id_in: 1,
            reorder: BTreeMap::new(),
            acks_owed: false,
        }
    }

    /// Cumulative ack value: every id up to and including it was delivered.
    fn ack_upto(&self) -> u64 {
        self.next_id_in - 1
    }
}

/// The node's reliability-layer state (behind one mutex on `NodeRuntime`).
#[derive(Debug)]
pub(crate) struct ReliableState {
    /// Whether the layer wraps traffic at all (resolved once at startup).
    enabled: bool,
    /// Per-destination link state, indexed by node.
    peers: Vec<PeerState>,
    /// Whether a tick timer is currently scheduled with the engine.
    tick_scheduled: bool,
}

impl ReliableState {
    /// Builds the state, resolving the enable policy: an explicit
    /// `cfg.reliability` wins; otherwise the layer auto-enables exactly when
    /// the engine can lose messages (loss injection in virtual-time mode).
    pub(crate) fn new(cfg: &MuninConfig, nodes: usize) -> Self {
        // Crash plans count as lossy: a frozen node's traffic is dropped for
        // the freeze window, and only retransmission recovers the gap.
        let lossy = cfg.engine.faults.loss_ppm > 0 || !cfg.engine.faults.crash.is_none();
        let auto = lossy && cfg.engine.mode == DeliveryMode::VirtualTime;
        ReliableState {
            enabled: cfg.reliability.unwrap_or(auto),
            peers: (0..nodes).map(|_| PeerState::new()).collect(),
            tick_scheduled: false,
        }
    }
}

impl NodeRuntime {
    /// Whether the reliability layer is wrapping this node's traffic.
    pub(crate) fn reliability_enabled(&self) -> bool {
        self.reliable.lock().enabled
    }

    /// Snapshot of outstanding unacked messages as
    /// `(destination index, count)` pairs, for stall reports.
    pub(crate) fn unacked_snapshot(&self) -> Vec<(usize, u64)> {
        self.reliable
            .lock()
            .peers
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.unacked.is_empty())
            .map(|(i, p)| (i, p.unacked.len() as u64))
            .collect()
    }

    /// Wraps an outbound protocol message in a `Reliable` frame, assigning
    /// the next per-link id, piggybacking the cumulative ack owed to `dst`,
    /// and recording the message for retransmission. Identity when the layer
    /// is disabled; transport-internal frames (`NetAck`, `Tick`) and the
    /// failure detector's traffic (`HealthTick`, `Heartbeat`, `PeerDown`)
    /// pass through unchanged — retransmitting a liveness probe to a node
    /// suspected dead would defeat both layers.
    pub(crate) fn wrap_outgoing(&self, dst: NodeId, msg: DsmMsg) -> DsmMsg {
        if matches!(
            msg,
            DsmMsg::NetAck { .. }
                | DsmMsg::Tick
                | DsmMsg::HealthTick
                | DsmMsg::Heartbeat
                | DsmMsg::PeerDown { .. }
        ) {
            return msg;
        }
        let mut rel = self.reliable.lock();
        if !rel.enabled {
            return msg;
        }
        let peer = &mut rel.peers[dst.as_usize()];
        let id = peer.next_id_out;
        peer.next_id_out += 1;
        let ack = peer.ack_upto();
        peer.acks_owed = false;
        peer.unacked.push_back(UnackedEntry {
            id,
            inner: msg.clone(),
            attempts: 0,
            last_tx: Instant::now(),
        });
        self.ensure_tick(&mut rel);
        DsmMsg::Reliable {
            id,
            ack,
            inner: Box::new(msg),
        }
    }

    /// Processes a cumulative ack from `src`: drops every held message with
    /// id ≤ `upto`.
    pub(crate) fn on_net_ack(&self, src: NodeId, upto: u64) {
        let mut rel = self.reliable.lock();
        if !rel.enabled {
            return;
        }
        let peer = &mut rel.peers[src.as_usize()];
        while peer.unacked.front().is_some_and(|e| e.id <= upto) {
            peer.unacked.pop_front();
        }
    }

    /// Accepts an inbound `Reliable` frame from `src` and returns the inner
    /// messages now deliverable, in id order. Duplicates (id below the
    /// receive frontier) are dropped and quenched with an immediate
    /// standalone ack so the sender stops retransmitting; early arrivals are
    /// buffered until the gap fills.
    pub(crate) fn reliable_deliver(&self, src: NodeId, id: u64, inner: DsmMsg) -> Vec<DsmMsg> {
        let mut rel = self.reliable.lock();
        let peer = &mut rel.peers[src.as_usize()];
        if id < peer.next_id_in {
            stats::bump(&self.stats.dup_msgs_dropped);
            let upto = peer.ack_upto();
            peer.acks_owed = false;
            stats::bump(&self.stats.net_acks_sent);
            let ack = DsmMsg::NetAck { upto };
            let _ = self.sender.send(src, ack.class(), ack.model_bytes(), ack);
            return Vec::new();
        }
        if id > peer.next_id_in {
            peer.reorder.insert(id, inner);
            peer.acks_owed = true;
            self.ensure_tick(&mut rel);
            return Vec::new();
        }
        peer.next_id_in += 1;
        let mut out = vec![inner];
        loop {
            let next = peer.next_id_in;
            match peer.reorder.remove(&next) {
                Some(m) => {
                    out.push(m);
                    peer.next_id_in += 1;
                }
                None => break,
            }
        }
        peer.acks_owed = true;
        self.ensure_tick(&mut rel);
        out
    }

    /// The tick handler: flushes owed acks that found no outbound message to
    /// ride (standalone `NetAck`), retransmits every unacked message whose
    /// backoff window has elapsed, and re-arms the timer while any work
    /// remains. Sweeps are unconditional — a lost *reply* leaves the
    /// original request acked-but-unanswered on one side and the reply
    /// unacked on the other, and only the sweep restores liveness.
    pub(crate) fn reliability_tick(&self) {
        let mut rel = self.reliable.lock();
        rel.tick_scheduled = false;
        if !rel.enabled {
            return;
        }
        let now = Instant::now();
        let pacing = self.cfg.retransmit_pacing;
        let detecting = self.health_enabled();
        let mut to_suspect: Vec<NodeId> = Vec::new();
        for (dst, peer) in rel.peers.iter_mut().enumerate() {
            let dst = NodeId::new(dst);
            if peer.acks_owed {
                peer.acks_owed = false;
                stats::bump(&self.stats.net_acks_sent);
                let ack = DsmMsg::NetAck {
                    upto: peer.ack_upto(),
                };
                let _ = self.sender.send(dst, ack.class(), ack.model_bytes(), ack);
            }
            let upto = peer.ack_upto();
            for entry in peer.unacked.iter_mut() {
                let backoff = pacing * (1u32 << entry.attempts.min(BACKOFF_EXP_CAP));
                if now.duration_since(entry.last_tx) < backoff {
                    continue;
                }
                if detecting && entry.attempts >= MAX_RETRANSMIT_ATTEMPTS {
                    // Retransmission has done its job of surviving loss; a
                    // link this dead is the failure detector's problem now.
                    to_suspect.push(dst);
                    continue;
                }
                entry.attempts += 1;
                entry.last_tx = now;
                stats::bump(&self.stats.retransmits);
                // Recorder is a pure leaf lock, so taking it under the
                // reliable lock (like the engine shard) cannot invert.
                self.obs.record(
                    self.clock.now().as_nanos(),
                    crate::obs::EventKind::Retransmit,
                    |ev| {
                        ev.peer = Some(dst);
                        ev.seq = Some(entry.id);
                    },
                );
                let frame = DsmMsg::Reliable {
                    id: entry.id,
                    ack: upto,
                    inner: Box::new(entry.inner.clone()),
                };
                let _ = self
                    .sender
                    .send(dst, frame.class(), frame.model_bytes(), frame);
            }
        }
        let pending = rel
            .peers
            .iter()
            .any(|p| p.acks_owed || !p.unacked.is_empty());
        if pending {
            self.ensure_tick(&mut rel);
        }
        drop(rel);
        for dst in to_suspect {
            self.health_suspect(dst, "retransmit cap");
        }
    }

    /// Resets the retransmit backoff toward `peer` after hearing from it
    /// while it was suspect: a thawed freeze (or a recovered network) should
    /// resume delivery at base pacing, not wait out a maxed-out backoff.
    pub(crate) fn reset_retransmit_attempts(&self, peer: NodeId) {
        let mut rel = self.reliable.lock();
        if !rel.enabled {
            return;
        }
        for entry in rel.peers[peer.as_usize()].unacked.iter_mut() {
            entry.attempts = 0;
        }
        let any = !rel.peers[peer.as_usize()].unacked.is_empty();
        if any {
            self.ensure_tick(&mut rel);
        }
    }

    /// Drops all link state toward a confirmed-dead peer: unacked messages
    /// will never be acknowledged and buffered early arrivals will never have
    /// their gaps filled. Called from the recovery walk.
    pub(crate) fn purge_peer_link(&self, peer: NodeId) {
        let mut rel = self.reliable.lock();
        if !rel.enabled {
            return;
        }
        let p = &mut rel.peers[peer.as_usize()];
        p.unacked.clear();
        p.reorder.clear();
        p.acks_owed = false;
    }

    /// Immediately sends every owed cumulative ack as a standalone `NetAck`
    /// instead of waiting for the next tick. The shutdown drain calls this
    /// on entry and exit: the peer that sent this node its final message
    /// (the `Shutdown` frame itself) is blocked in its *own* drain waiting
    /// for exactly this ack, and once the service loop exits no tick will
    /// ever flush it.
    pub(crate) fn flush_owed_acks(&self) {
        let mut rel = self.reliable.lock();
        if !rel.enabled {
            return;
        }
        for (dst, peer) in rel.peers.iter_mut().enumerate() {
            if peer.acks_owed {
                peer.acks_owed = false;
                stats::bump(&self.stats.net_acks_sent);
                let ack = DsmMsg::NetAck {
                    upto: peer.ack_upto(),
                };
                let _ = self
                    .sender
                    .send(NodeId::new(dst), ack.class(), ack.model_bytes(), ack);
            }
        }
    }

    /// Whether any outbound message is still unacknowledged (shutdown drain).
    pub(crate) fn has_unacked(&self) -> bool {
        self.reliable
            .lock()
            .peers
            .iter()
            .any(|p| !p.unacked.is_empty())
    }

    /// Schedules a tick timer with the engine if none is outstanding. The
    /// virtual due time only orders the timer against other timers; actual
    /// firing waits for the destination schedule to go idle, and retransmit
    /// eligibility is governed by wall-clock backoff.
    fn ensure_tick(&self, rel: &mut ReliableState) {
        if rel.tick_scheduled || !rel.enabled {
            return;
        }
        let pacing = self.cfg.retransmit_pacing;
        let due = self.clock.now() + VirtTime::from_nanos(pacing.as_nanos() as u64);
        if self
            .sender
            .schedule_timer(due, "tick", DsmMsg::Tick)
            .is_ok()
        {
            rel.tick_scheduled = true;
        }
    }
}
