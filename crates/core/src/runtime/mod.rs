//! The per-node Munin runtime.
//!
//! Each simulated node runs two threads:
//!
//! * the **user thread**, which executes the application's worker closure and
//!   enters the runtime on access faults and synchronization operations
//!   (the paper's "Munin root thread is invoked" path), and
//! * the **runtime service thread** (the paper's "Munin worker threads"),
//!   which handles requests arriving from other nodes: object fetches,
//!   invalidations, delayed-update propagation, copyset queries, lock and
//!   barrier traffic.
//!
//! The user thread performs blocking protocol work (it may wait for replies);
//! the service thread never blocks on a remote reply, so the two-thread
//! structure cannot deadlock. Requests that cannot be served because the
//! targeted directory entry is mid-transition (its *busy* bit is set — the
//! analogue of the paper's per-entry access-control semaphore) are deferred
//! and retried once the transition completes.

mod barrier_tree;
mod fault;
mod flush;
mod health;
mod outbox;
mod reliable;
mod server;
mod sync_ops;
mod vmseg;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use munin_sim::{CostModel, Envelope, NodeClock, NodeId, Sender, TimeKind, VirtTime};

use crate::config::{AccessMode, MuninConfig};
use crate::diff::DiffScratch;
use crate::directory::{AccessRights, DirEntry, Directory};
use crate::duq::DelayedUpdateQueue;
use crate::error::{MuninError, Result, StallReport};
use crate::msg::DsmMsg;
use crate::object::ObjectId;
use crate::segment::SharedDataTable;
use crate::stats::MuninStats;
use crate::sync::SyncDirectory;

/// Granularity of the watchdog's blocking waits: the user thread blocks in
/// slices of this length so it can notice watchdog expiry without a
/// dedicated thread.
const WATCHDOG_SLICE: Duration = Duration::from_millis(50);

/// Whether protocol-trace notes are enabled (the flight recorder's
/// human-readable dump mode; `MUNIN_PROTO_TRACE=1` is the long-standing
/// alias for `MUNIN_OBS_DUMP=1`). Logs go to stderr with node ids and
/// virtual times, and the notes also enter the flight-recorder ring.
pub(crate) fn proto_trace_enabled() -> bool {
    crate::obs::dump_enabled()
}

macro_rules! proto_trace {
    ($self:expr, $($arg:tt)*) => {
        if $self.obs.notes_enabled() {
            $self
                .obs
                .note($self.clock.now().as_nanos(), format!($($arg)*));
        }
    };
}
pub(crate) use proto_trace;

/// Pre-flight check for `AccessMode::VmTraps`: fails with a typed
/// [`MuninError::VmUnavailable`] when the platform lacks the substrate or
/// the trap machinery cannot be set up in this process (handler
/// installation, mapping), so callers can reject a run *before* spawning
/// node threads. Per-node region setup failures after a passing pre-flight
/// (e.g. registry exhaustion) still panic the node loudly.
pub(crate) fn vm_traps_preflight() -> Result<()> {
    vmseg::VmSegment::preflight()
}

/// What a blocked user thread is waiting for. Carried into [`wait_reply`]
/// (`NodeRuntime::wait_reply`) so a watchdog expiry can say precisely which
/// operation stalled, on which object or synchronization id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WaitOp {
    /// Waiting for `ObjectData` after an `ObjectFetch`.
    Fetch(ObjectId),
    /// Waiting for `InvalidateAck`s after invalidating remote copies.
    InvalidateAcks(ObjectId),
    /// Waiting for `UpdateAck`s after a DUQ flush transmission round.
    UpdateAcks,
    /// Waiting for `UpdateAck`s while closing the cross-release coalescing
    /// window at an acquire.
    WindowAcks,
    /// Waiting for `CopysetReply`s in a broadcast determination round.
    CopysetReplies,
    /// Waiting for `OwnerCopysetReply`s in an owner-collected round.
    OwnerCopysetReplies,
    /// Waiting for `ReduceReply` from a reduction object's fixed owner.
    Reduce(ObjectId),
    /// Waiting for `LockGrant`.
    LockGrant(u32),
    /// Waiting for `BarrierRelease`.
    BarrierRelease(u32),
    /// Waiting for `Shutdown` (worker nodes at the end of a run).
    Shutdown,
    /// Waiting for a `WorkerDone` notification (root only).
    WorkerDone,
}

impl WaitOp {
    /// Short name of the blocked operation for stall reports.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            WaitOp::Fetch(_) => "fetch",
            WaitOp::InvalidateAcks(_) => "invalidate_acks",
            WaitOp::UpdateAcks => "update_acks",
            WaitOp::WindowAcks => "window_acks",
            WaitOp::CopysetReplies => "copyset_replies",
            WaitOp::OwnerCopysetReplies => "owner_copyset_replies",
            WaitOp::Reduce(_) => "reduce",
            WaitOp::LockGrant(_) => "lock_acquire",
            WaitOp::BarrierRelease(_) => "barrier",
            WaitOp::Shutdown => "shutdown_wait",
            WaitOp::WorkerDone => "worker_done",
        }
    }

    /// The object the operation concerns, when there is one.
    fn object(&self) -> Option<ObjectId> {
        match self {
            WaitOp::Fetch(o) | WaitOp::InvalidateAcks(o) | WaitOp::Reduce(o) => Some(*o),
            _ => None,
        }
    }

    /// The lock or barrier id the operation concerns, when there is one.
    fn sync_id(&self) -> Option<u32> {
        match self {
            WaitOp::LockGrant(id) | WaitOp::BarrierRelease(id) => Some(*id),
            _ => None,
        }
    }
}

/// Verdict of [`NodeRuntime::check_update_seq`] on an inbound update
/// transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SeqCheck {
    /// In sequence: the number was consumed, apply the items now.
    Apply,
    /// Ahead of the stream: defer until the missing transmissions arrive.
    Early,
    /// Already consumed (duplicate delivery): drop the items.
    Stale,
}

/// The per-node runtime state shared by the user thread and the service
/// thread.
pub struct NodeRuntime {
    node: NodeId,
    nodes: usize,
    cfg: Arc<MuninConfig>,
    table: Arc<SharedDataTable>,
    clock: NodeClock,
    cost: Arc<CostModel>,
    sender: Sender<DsmMsg>,
    /// The node's copy of the shared data segment (explicit access mode).
    /// Only ranges whose directory entry grants access rights hold
    /// meaningful data. Unused (empty) in VM-trap mode, where the segment
    /// lives in `vm` instead.
    memory: Mutex<Vec<u8>>,
    /// The VM-trap segment backend (`AccessMode::VmTraps` only): the shared
    /// segment lives in an `mprotect`-managed region whose page protections
    /// mirror the directory rights.
    vm: Option<vmseg::VmSegment>,
    /// Error produced by the fault protocol while resolving a hardware trap
    /// (VM-trap mode): the signal handler cannot return an error to the
    /// faulting access, so it parks it here and loosens the page so the
    /// access completes; the touch wrapper picks it up and unwinds. The
    /// flag is the touch wrapper's fast path: it is written by the handler
    /// on the *same* thread that checks it, so a relaxed load suffices and
    /// the no-fault hot path pays one atomic load instead of a mutex
    /// round-trip.
    vm_fault_errored: std::sync::atomic::AtomicBool,
    vm_fault_error: Mutex<Option<MuninError>>,
    /// The thread the user (worker) closure runs on — the only thread whose
    /// faults the VM-trap callback resolves. A fault on any other thread is
    /// a runtime bug (a privileged path missed an escalation) and is left to
    /// crash loudly.
    user_thread: std::thread::ThreadId,
    /// The data object directory.
    dir: Mutex<Directory>,
    /// The delayed update queue (owns the twins of pending objects).
    duq: Mutex<DelayedUpdateQueue>,
    /// Reusable diff-encoding buffer: flushes encode into this scratch so
    /// the write-shared hot path performs no per-run allocations.
    diff_scratch: Mutex<DiffScratch>,
    /// The synchronization object directory.
    sync: Mutex<SyncDirectory>,
    /// The per-destination carrier/outbox layer: coalesced cross-release
    /// updates awaiting transmission, and (at a barrier owner) relayed
    /// bundles awaiting redistribution on the release. Leaf lock — never
    /// held while the directory, DUQ, or sync locks are taken.
    outbox: Mutex<outbox::Outbox>,
    /// Next outbound update-stream sequence number per destination (see
    /// `DsmMsg::Update::seq`). Leaf lock.
    update_seq_out: Mutex<Vec<u64>>,
    /// Next expected inbound update-stream sequence number per source.
    /// Leaf lock.
    update_seq_in: Mutex<Vec<u64>>,
    /// The reliability layer's link state (leaf lock except for raw engine
    /// sends; see `runtime/reliable.rs`).
    reliable: Mutex<reliable::ReliableState>,
    /// The failure detector: per-peer last-heard tracking and liveness
    /// verdicts (leaf lock; see `runtime/health.rs`).
    health: health::Health,
    /// Home node of each lock, by lock index. The sync directory keeps only
    /// probable-owner hints; crash recovery needs the fixed home (token
    /// regeneration site, fallback for hints pointing at a corpse).
    lock_homes: Vec<NodeId>,
    /// Requests deferred because their directory entry was busy.
    deferred: Mutex<Vec<(Envelope, DsmMsg)>>,
    /// Bumped whenever a blocking condition clears (busy bit or pin
    /// released). `process_deferred` re-loops when it observes a bump, so a
    /// request re-deferred concurrently with the condition clearing cannot be
    /// stranded with no remaining retry trigger.
    deferred_gen: std::sync::atomic::AtomicU64,
    /// Statistics.
    stats: Arc<MuninStats>,
    /// The flight recorder and latency histograms. A pure leaf lock that
    /// never calls back into the runtime, the clock, or the engine, so
    /// recording cannot perturb protocol behaviour (see `crate::obs`).
    obs: crate::obs::Recorder,
    reply_tx: channel::Sender<(Envelope, DsmMsg)>,
    reply_rx: channel::Receiver<(Envelope, DsmMsg)>,
    /// Worker-completion notifications (root only), kept separate from the
    /// reply mailbox so they cannot interleave with an in-flight protocol
    /// operation of the root's user thread. Carries the worker's id so the
    /// completion wait can reconcile notifications against confirmed deaths.
    done_tx: channel::Sender<NodeId>,
    done_rx: channel::Receiver<NodeId>,
    /// The lock id (+1) the user thread is blocked acquiring, or 0. The
    /// service loop consumes it (compare-and-swap to 0) when routing a
    /// `LockGrant`; a grant nobody is waiting for — possible only after a
    /// crash-recovery re-acquire raced the original grant — is absorbed
    /// into the sync state instead of poisoning the reply mailbox.
    waiting_grant: std::sync::atomic::AtomicU32,
}

impl NodeRuntime {
    /// Creates the runtime for one node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        nodes: usize,
        cfg: Arc<MuninConfig>,
        table: Arc<SharedDataTable>,
        lock_homes: Vec<NodeId>,
        barriers: Vec<(NodeId, usize)>,
        clock: NodeClock,
        cost: Arc<CostModel>,
        sender: Sender<DsmMsg>,
    ) -> Arc<Self> {
        let (reply_tx, reply_rx) = channel::unbounded();
        let (done_tx, done_rx) = channel::unbounded();
        let home = NodeId::new(0);
        let dir = Directory::from_table(&table, home, cfg.annotation_override);
        let sync = SyncDirectory::new(node, &lock_homes, &barriers);
        // Built cyclically: the VM-trap fault callback needs a handle back to
        // this runtime to route traps into the fault protocol. No faults can
        // occur before the `Arc` is complete (nothing has touched the
        // protected region yet), so the weak handle always upgrades when it
        // matters.
        Arc::new_cyclic(|weak| {
            let (vm, memory) = match cfg.access_mode {
                AccessMode::VmTraps => {
                    let seg = vmseg::VmSegment::for_runtime(&table, weak.clone())
                        .expect("VM-trap segment setup failed");
                    (Some(seg), Vec::new())
                }
                AccessMode::Explicit => (None, vec![0u8; table.segment_len()]),
            };
            NodeRuntime {
                node,
                nodes,
                memory: Mutex::new(memory),
                vm,
                vm_fault_errored: std::sync::atomic::AtomicBool::new(false),
                vm_fault_error: Mutex::new(None),
                user_thread: std::thread::current().id(),
                dir: Mutex::new(dir),
                duq: Mutex::new(DelayedUpdateQueue::new()),
                diff_scratch: Mutex::new(DiffScratch::new()),
                sync: Mutex::new(sync),
                outbox: Mutex::new(outbox::Outbox::new()),
                update_seq_out: Mutex::new(vec![0; nodes]),
                update_seq_in: Mutex::new(vec![0; nodes]),
                reliable: Mutex::new(reliable::ReliableState::new(&cfg, nodes)),
                health: health::Health::new(&cfg, nodes),
                lock_homes,
                deferred: Mutex::new(Vec::new()),
                deferred_gen: std::sync::atomic::AtomicU64::new(0),
                stats: MuninStats::new(),
                obs: crate::obs::Recorder::new(
                    node,
                    cfg.effective_flight_events(),
                    crate::obs::dump_enabled(),
                ),
                reply_tx,
                reply_rx,
                done_tx,
                done_rx,
                waiting_grant: std::sync::atomic::AtomicU32::new(0),
                cfg,
                table,
                clock,
                cost,
                sender,
            }
        })
    }

    /// The node this runtime belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the system.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether this node is the root (node 0).
    pub fn is_root(&self) -> bool {
        self.node.as_usize() == 0
    }

    /// The shared data description table.
    pub fn table(&self) -> &SharedDataTable {
        &self.table
    }

    /// The runtime configuration.
    pub fn config(&self) -> &MuninConfig {
        &self.cfg
    }

    /// The node's statistics.
    pub fn stats(&self) -> &Arc<MuninStats> {
        &self.stats
    }

    /// The node's flight recorder and latency histograms.
    pub fn obs(&self) -> &crate::obs::Recorder {
        &self.obs
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &NodeClock {
        &self.clock
    }

    /// Charges runtime (Munin) overhead to the node clock.
    pub(crate) fn charge_sys(&self, t: VirtTime) {
        self.clock.advance(TimeKind::System, t);
    }

    /// Charges application computation to the node clock.
    pub fn charge_user(&self, t: VirtTime) {
        self.clock.advance(TimeKind::User, t);
    }

    /// Charges `ops` abstract application operations as user time.
    pub fn compute(&self, ops: u64) {
        self.charge_user(self.cost.compute(ops));
    }

    /// Takes the next outbound update-stream sequence number for `dest`.
    /// Every update-bearing transmission (standalone `Update`, carrier
    /// bundle, relayed bundle) to a destination consumes exactly one, in
    /// the order the transmissions are issued.
    pub(crate) fn next_update_seq(&self, dest: NodeId) -> u64 {
        let seq = {
            let mut seqs = self.update_seq_out.lock();
            let slot = &mut seqs[dest.as_usize()];
            let seq = *slot;
            *slot += 1;
            seq
        };
        // Every update-bearing transmission allocates exactly one number
        // here, making this the single flow-arrow source ("s") point for the
        // trace exporter.
        self.obs.record(
            self.clock.now().as_nanos(),
            crate::obs::EventKind::UpdateSend,
            |ev| {
                ev.peer = Some(dest);
                ev.seq = Some(seq);
            },
        );
        seq
    }

    /// Checks an inbound update transmission against the source's sequence
    /// stream. `Apply` consumes the number; the caller must then apply the
    /// items. `Early` means a lower-numbered transmission is still in
    /// flight (the caller defers and retries); `Stale` means the number was
    /// already consumed (an engine-injected duplicate — drop the items).
    pub(crate) fn check_update_seq(&self, src: NodeId, seq: u64) -> SeqCheck {
        let mut seqs = self.update_seq_in.lock();
        let expected = &mut seqs[src.as_usize()];
        match seq.cmp(expected) {
            std::cmp::Ordering::Equal => {
                *expected += 1;
                SeqCheck::Apply
            }
            std::cmp::Ordering::Greater => SeqCheck::Early,
            std::cmp::Ordering::Less => SeqCheck::Stale,
        }
    }

    /// Counts one update transmission (standalone, piggybacked, or relayed)
    /// in the runtime statistics — the single accounting point for
    /// `updates_sent`/`update_bytes_sent`.
    pub(crate) fn note_update_sent(&self, items: &[crate::msg::UpdateItem]) {
        crate::stats::add(&self.stats.updates_sent, 1);
        crate::stats::add(
            &self.stats.update_bytes_sent,
            items.iter().map(|i| i.payload.model_bytes()).sum::<u64>(),
        );
    }

    /// Sends a protocol message, charging the fixed message cost. The
    /// message is wrapped by the reliability layer when that is enabled.
    pub(crate) fn send(&self, dst: NodeId, msg: DsmMsg) -> Result<()> {
        let msg = self.wrap_outgoing(dst, msg);
        self.sender
            .send(dst, msg.class(), msg.model_bytes(), msg)
            .map(|_| ())
            .map_err(MuninError::from)
    }

    /// Sends a protocol message on behalf of the runtime service thread,
    /// timestamped `logical_time` (normally the arrival time of the request
    /// being answered, plus its service cost). This models the service
    /// running concurrently with the user thread's computation, as the
    /// paper's Munin worker threads do.
    pub(crate) fn send_service(
        &self,
        dst: NodeId,
        msg: DsmMsg,
        logical_time: VirtTime,
    ) -> Result<()> {
        let msg = self.wrap_outgoing(dst, msg);
        self.sender
            .send_at(dst, msg.class(), msg.model_bytes(), msg, logical_time)
            .map(|_| ())
            .map_err(MuninError::from)
    }

    /// Blocks the user thread until the service thread routes it a reply.
    /// `op` names what the thread is blocked on; if no reply arrives within
    /// the watchdog window the wait fails with a structured
    /// [`StallReport`](crate::StallReport) instead of hanging.
    pub(crate) fn wait_reply(&self, op: WaitOp) -> Result<(Envelope, DsmMsg)> {
        let start = Instant::now();
        let entered_virt = self.clock.now().as_nanos();
        loop {
            match self.reply_rx.recv_timeout(WATCHDOG_SLICE) {
                Ok(reply) => {
                    // The virtual wait is measured to the reply's scheduled
                    // arrival (not the shared clock, which the service thread
                    // may have advanced past it), so histogram samples are
                    // deterministic under a fixed engine seed.
                    self.obs.record_wait(
                        op.kind(),
                        reply.0.arrival.as_nanos().saturating_sub(entered_virt),
                    );
                    return Ok(reply);
                }
                Err(_) => {
                    let waited = start.elapsed();
                    if waited >= self.cfg.watchdog {
                        return Err(self.raise_stall(op, waited));
                    }
                }
            }
        }
    }

    /// Blocks until one worker-completion notification arrives (root only),
    /// under the same watchdog as [`Self::wait_reply`], returning which
    /// worker finished — or `None` when the failure detector confirmed a
    /// new death instead (the timeout slices age the detector, so a root
    /// blocked on a crashed worker confirms the death itself). The caller
    /// reconciles notifications against the dead set and re-blocks.
    pub(crate) fn wait_worker_done_notification(self: &Arc<Self>) -> Result<Option<NodeId>> {
        let start = Instant::now();
        let entered_virt = self.clock.now().as_nanos();
        let dead_at_entry = self.dead_set();
        loop {
            match self.done_rx.recv_timeout(WATCHDOG_SLICE) {
                Ok(from) => {
                    self.obs.record_wait(
                        WaitOp::WorkerDone.kind(),
                        self.clock.now().as_nanos().saturating_sub(entered_virt),
                    );
                    return Ok(Some(from));
                }
                Err(_) => {
                    self.health_check();
                    if self.dead_set() != dead_at_entry {
                        return Ok(None);
                    }
                    let waited = start.elapsed();
                    if waited >= self.cfg.watchdog {
                        return Err(self.raise_stall(WaitOp::WorkerDone, waited));
                    }
                }
            }
        }
    }

    /// Builds the structured stall diagnosis, records it in the statistics,
    /// prints it to stderr (the run is about to die; make the post-mortem
    /// immediate), and returns it as an error.
    fn raise_stall(&self, op: WaitOp, waited: Duration) -> MuninError {
        self.obs.record(
            self.clock.now().as_nanos(),
            crate::obs::EventKind::Stall,
            |ev| {
                ev.object = op.object();
                ev.sync_id = op.sync_id();
            },
        );
        let report = StallReport {
            node: self.node,
            op: op.kind(),
            object: op.object(),
            sync_id: op.sync_id(),
            waited,
            unacked: self.unacked_snapshot(),
            deferred: self.deferred.lock().len(),
            suspected: self.suspected_snapshot(),
            frontiers: (0..self.nodes)
                .map(|i| (i, self.sender.delivery_frontier(NodeId::new(i))))
                .collect(),
            // Only this node's forensics are in hand here; the run driver
            // (`api::MuninProgram::run`) patches in every node's tail once
            // all runtimes have stopped.
            last_events: vec![(
                self.node.as_usize(),
                self.obs.tail(crate::obs::STALL_TAIL_EVENTS),
            )],
        };
        crate::stats::bump(&self.stats.runtime_errors);
        crate::stats::bump(&self.stats.watchdog_stalls);
        eprintln!("munin: {report}");
        MuninError::Stalled(Box::new(report))
    }

    /// Aborts the service thread: closes this node's inbox so its receive
    /// loop observes disconnection and exits even if the `Shutdown` message
    /// was lost or never sent. Called on error paths before joining the
    /// service thread; without it the `Arc` cycle between the service thread
    /// and the runtime would keep the channel alive forever.
    pub(crate) fn abort_service(&self) {
        self.sender.close_inbox();
    }

    /// Hands a reply to the blocked user thread (called by the service loop).
    pub(crate) fn route_to_user(self: &Arc<Self>, env: Envelope, msg: DsmMsg) {
        // Under crash recovery an acquire may be re-issued towards the
        // lock's home while the original request is still making progress;
        // if both produce grants, the second arrives when nobody is
        // waiting. Routing it would poison the next wait, so it is absorbed
        // into the sync state instead: the token parks here (a consistent
        // outcome — the granter recorded this node as the new owner) and is
        // handed straight on if waiters rode in with it. The waiting flag
        // is consumed by compare-and-swap, so of two racing grants exactly
        // one reaches the user thread.
        if self.health_enabled() {
            if let DsmMsg::LockGrant { lock, queue } = msg {
                use std::sync::atomic::Ordering;
                let expected = self
                    .waiting_grant
                    .compare_exchange(lock.0 + 1, 0, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                if !expected {
                    proto_trace!(self, "absorb stray grant for lock {}", lock.0);
                    let handoff = {
                        let mut sync = self.sync.lock();
                        let l = sync.lock_mut(lock);
                        l.receive_grant(queue, self.node);
                        l.release()
                    };
                    if let Some((next, rest)) = handoff {
                        self.send_lock_grant(lock, next, rest, Vec::new());
                    }
                    return;
                }
                let _ = self.reply_tx.send((env, DsmMsg::LockGrant { lock, queue }));
                return;
            }
        }
        // The user thread may already have exited (e.g. after a runtime
        // error); dropping the message is then harmless.
        let _ = self.reply_tx.send((env, msg));
    }

    /// Byte range of an object within the shared segment.
    pub(crate) fn object_range(&self, object: ObjectId) -> std::ops::Range<usize> {
        let desc = self.table.object(object);
        desc.segment_offset..desc.segment_offset + desc.size
    }

    /// Runs `f` over the current bytes of an object (runtime-internal read:
    /// diff encoding, fetch serves, snapshots). In VM-trap mode this is a
    /// privileged access that may temporarily escalate page protections.
    pub(crate) fn with_object_mem<R>(&self, object: ObjectId, f: impl FnOnce(&[u8]) -> R) -> R {
        match &self.vm {
            Some(vm) => vm.with_object(object, f),
            None => {
                let range = self.object_range(object);
                let mem = self.memory.lock();
                f(&mem[range])
            }
        }
    }

    /// Runs `f` over the mutable bytes of an object (runtime-internal write:
    /// installing fetched data, applying diffs, reductions). In VM-trap mode
    /// this is a privileged access that escalates page protections for the
    /// duration and restores them afterwards.
    pub(crate) fn with_object_mem_mut<R>(
        &self,
        object: ObjectId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        match &self.vm {
            Some(vm) => vm.with_object_mut(object, f),
            None => {
                let range = self.object_range(object);
                let mut mem = self.memory.lock();
                f(&mut mem[range])
            }
        }
    }

    /// Copies the current contents of an object out of local memory.
    pub(crate) fn object_bytes(&self, object: ObjectId) -> Vec<u8> {
        self.with_object_mem(object, |bytes| bytes.to_vec())
    }

    /// Copies the current contents of an object into `buf` (cleared first),
    /// reusing `buf`'s existing allocation. Used by the twin pool so
    /// first-write faults do not allocate once the pool is warm.
    pub(crate) fn read_object_into(&self, object: ObjectId, buf: &mut Vec<u8>) {
        buf.clear();
        self.with_object_mem(object, |bytes| buf.extend_from_slice(bytes));
    }

    /// Overwrites the local contents of an object.
    pub(crate) fn install_object_bytes(&self, object: ObjectId, data: &[u8]) {
        self.with_object_mem_mut(object, |bytes| {
            debug_assert_eq!(bytes.len(), data.len());
            if bytes.len() == data.len() {
                bytes.copy_from_slice(data);
            }
        });
    }

    /// Updates a directory entry's access rights, mirroring the change into
    /// the page protections when the VM-trap backend is active. Every
    /// protocol-side rights transition goes through here; the call sites all
    /// hold the directory lock, so protections never lag rights as far as
    /// any directory-lock holder can observe.
    pub(crate) fn set_entry_rights(&self, entry: &mut DirEntry, rights: AccessRights) {
        entry.state.rights = rights;
        if let Some(vm) = &self.vm {
            vm.sync_rights(entry.object, rights);
        }
    }

    /// Routes a hardware protection fault (VM-trap mode) to the fault
    /// protocol. Runs on the faulting thread, called by the region's SIGSEGV
    /// callback. Returns whether the fault was resolved (the faulting
    /// instruction is then restarted).
    pub(crate) fn vm_fault(self: &Arc<Self>, region_offset: usize, is_write: bool) -> bool {
        // Only the user thread's touches are legitimate fault sources; a
        // trap on any other thread is a privileged path that missed an
        // escalation — let it crash loudly rather than deadlock the service
        // loop on its own reply channel.
        if std::thread::current().id() != self.user_thread {
            return false;
        }
        let Some(vm) = &self.vm else { return false };
        let Some(object) = vm.object_at(region_offset) else {
            return false;
        };
        let result = if is_write {
            crate::stats::bump(&self.stats.vm_write_traps);
            self.write_fault(object)
        } else {
            crate::stats::bump(&self.stats.vm_read_traps);
            self.read_fault(object)
        };
        if let Err(e) = result {
            // The handler cannot make the faulting access fail; it loosens
            // the page so the touch completes (touches never carry
            // application data) and parks the error for the touch wrapper,
            // which restores protection and unwinds.
            vm.force_writable(object);
            *self.vm_fault_error.lock() = Some(e);
            self.vm_fault_errored
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        true
    }

    /// Takes a parked trap-resolution error, if any (touch-wrapper side).
    /// The flag and the cell are written by the fault handler on this same
    /// thread, so relaxed ordering is sufficient.
    pub(crate) fn take_vm_fault_error(&self) -> Option<MuninError> {
        if !self
            .vm_fault_errored
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return None;
        }
        self.vm_fault_errored
            .store(false, std::sync::atomic::Ordering::Relaxed);
        self.vm_fault_error.lock().take()
    }

    /// Initializes directory state on the root node after `user_init` has
    /// run. `touched` is the set of objects the initialization actually
    /// wrote.
    ///
    /// The root is the home of every statically allocated object, so it is
    /// the initial owner of all of them. Objects the initialization wrote are
    /// valid at the root; objects it never touched remain invalid (so that a
    /// later first-touch fetch is served zero-filled and ownership moves to
    /// the toucher). Objects with a fixed owner (`reduction`, `result`) are
    /// always materialized at the root because flushes and `Fetch_and_Φ`
    /// operations are directed there.
    pub(crate) fn finish_root_init(&self, touched: &HashSet<ObjectId>) {
        let mut dir = self.dir.lock();
        for idx in 0..dir.len() {
            let entry = dir.entry_mut(ObjectId::new(idx as u32));
            entry.state.owned = true;
            entry.probable_owner = self.node;
            let materialize = touched.contains(&entry.object) || entry.params.has_fixed_owner();
            let rights = if !materialize {
                AccessRights::Invalid
            } else if !entry.params.is_writable() || entry.params.allows_delay() {
                // Read-only data and delayed-update (write-shared family)
                // objects start write-protected so the first write makes a
                // twin and enters the DUQ.
                AccessRights::Read
            } else {
                AccessRights::ReadWrite
            };
            self.set_entry_rights(entry, rights);
        }
    }

    /// Retries requests that were deferred because their directory entry was
    /// busy. Safe to call from either thread: the handlers it invokes never
    /// block on remote replies.
    pub(crate) fn process_deferred(self: &Arc<Self>) {
        use std::sync::atomic::Ordering;
        loop {
            let gen = self.deferred_gen.load(Ordering::SeqCst);
            let pending = {
                let mut deferred = self.deferred.lock();
                if deferred.is_empty() {
                    return;
                }
                std::mem::take(&mut *deferred)
            };
            let before = pending.len();
            for (env, msg) in pending {
                self.handle_request(env, msg);
            }
            // If nothing was consumed (everything re-deferred), stop retrying
            // until the next message or transition completion — unless a
            // blocking condition cleared while we were re-handling (the
            // releasing thread's own `process_deferred` may have run against
            // a momentarily empty queue), in which case retry now.
            if self.deferred.lock().len() >= before
                && self.deferred_gen.load(Ordering::SeqCst) == gen
            {
                return;
            }
        }
    }

    /// Records that a blocking condition (busy bit or pin) has been cleared,
    /// then retries deferred requests. Must be called *after* the directory
    /// update that cleared the condition.
    pub(crate) fn note_unblocked_and_process_deferred(self: &Arc<Self>) {
        self.deferred_gen
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.process_deferred();
    }

    /// Snapshot of this node's entire shared-segment memory in the packed
    /// layout (used by the root at the end of a run so results can be
    /// inspected).
    pub(crate) fn memory_snapshot(&self) -> Vec<u8> {
        match &self.vm {
            Some(vm) => vm.snapshot_packed(&self.table),
            None => self.memory.lock().clone(),
        }
    }

    /// Raw initialization write used by `user_init` on the root: bypasses the
    /// consistency machinery because no other copies exist yet.
    /// `segment_offset` is a packed-layout offset; in VM-trap mode the range
    /// is decomposed into the objects it covers.
    pub(crate) fn init_write(&self, segment_offset: usize, bytes: &[u8]) {
        if self.vm.is_none() {
            let mut mem = self.memory.lock();
            mem[segment_offset..segment_offset + bytes.len()].copy_from_slice(bytes);
            return;
        }
        let end = segment_offset + bytes.len();
        for obj in self.table.objects() {
            let obj_end = obj.segment_offset + obj.size;
            if obj.segment_offset >= end || obj_end <= segment_offset {
                continue;
            }
            let lo = obj.segment_offset.max(segment_offset);
            let hi = obj_end.min(end);
            self.with_object_mem_mut(obj.id, |mem| {
                mem[lo - obj.segment_offset..hi - obj.segment_offset]
                    .copy_from_slice(&bytes[lo - segment_offset..hi - segment_offset]);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::SharingAnnotation;
    use munin_sim::Network;

    /// Builds a single-node runtime for white-box tests of local paths.
    fn single_node_runtime() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ro", SharingAnnotation::ReadOnly, 4, 8, false);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 32, false);
        table.declare("res", SharingAnnotation::Result, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(1));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(1, cfg.cost.clone());
        let (sender, _receiver) = net.endpoint(0, clock.clone()).unwrap();
        NodeRuntime::new(
            NodeId::new(0),
            1,
            cfg.clone(),
            table,
            vec![],
            vec![],
            clock,
            Arc::new(cfg.cost.clone()),
            sender,
        )
    }

    #[test]
    fn root_init_marks_touched_objects_valid() {
        let rt = single_node_runtime();
        let ws_obj = rt.table().var_by_name("ws").unwrap().objects[0];
        let ro_obj = rt.table().var_by_name("ro").unwrap().objects[0];
        let res_obj = rt.table().var_by_name("res").unwrap().objects[0];
        let mut touched = HashSet::new();
        touched.insert(ro_obj);
        rt.finish_root_init(&touched);
        let dir = rt.dir.lock();
        assert_eq!(dir.entry(ro_obj).state.rights, AccessRights::Read);
        // Untouched write-shared object stays invalid (first-touch fetch will
        // be zero-filled).
        assert_eq!(dir.entry(ws_obj).state.rights, AccessRights::Invalid);
        // Result objects are always materialized at their fixed owner.
        assert_eq!(dir.entry(res_obj).state.rights, AccessRights::Read);
        assert!(dir.entry(ws_obj).state.owned);
    }

    #[test]
    fn object_bytes_round_trip() {
        let rt = single_node_runtime();
        let obj = rt.table().var_by_name("ro").unwrap().objects[0];
        let data: Vec<u8> = (0..32).collect();
        rt.install_object_bytes(obj, &data);
        assert_eq!(rt.object_bytes(obj), data);
    }

    #[test]
    fn charges_split_user_and_system() {
        let rt = single_node_runtime();
        rt.compute(10);
        rt.charge_sys(VirtTime::from_nanos(50));
        assert_eq!(
            rt.clock().user_time().as_nanos(),
            10 * rt.cost.compute_op_ns
        );
        assert_eq!(rt.clock().system_time().as_nanos(), 50);
    }
}
