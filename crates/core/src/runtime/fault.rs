//! Access checking and fault handling on the user-thread side.
//!
//! Every shared access consults the local directory entry's access rights —
//! the simulated analogue of the virtual-memory protection check the
//! prototype gets for free from the MMU. Insufficient rights invoke the fault
//! handlers below, which implement the per-annotation consistency protocols
//! of Sections 3.1–3.3:
//!
//! * read faults fetch a replica from the owner (found via the
//!   probable-owner chain);
//! * write faults on *delayed* (write-shared / producer-consumer / result)
//!   objects make a twin, enqueue the object on the DUQ, and enable writes;
//! * write faults on *ownership* (conventional / migratory) objects acquire
//!   ownership and invalidate the remaining replicas;
//! * writes to `read_only` objects are runtime errors.

use std::sync::Arc;

use munin_sim::NodeId;

use crate::annotation::SharingAnnotation;
use crate::copyset::CopySet;
use crate::directory::AccessRights;
use crate::error::{MuninError, Result};
use crate::msg::{DsmMsg, FetchKind};
use crate::object::ObjectId;
use crate::stats::{add, bump};

use super::NodeRuntime;

impl NodeRuntime {
    /// Ensures the local copy of `object` is readable, faulting if necessary.
    pub(crate) fn ensure_read(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        {
            let dir = self.dir.lock();
            if dir.entry(object).state.rights.allows_read() {
                return Ok(());
            }
        }
        self.read_fault(object)
    }

    /// Ensures the local copy of `object` is writable, faulting if necessary.
    pub(crate) fn ensure_write(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.rights.allows_write() {
                entry.state.dirty = true;
                return Ok(());
            }
        }
        self.write_fault(object)
    }

    /// Ensures an upcoming access of `object` has been *detected* by the
    /// runtime — the access-mode dispatch point.
    ///
    /// * `Explicit`: a software check of the directory entry's rights,
    ///   invoking the fault protocol when they are insufficient.
    /// * `VmTraps`: a hardware *touch* — one volatile load of the object's
    ///   first data byte (read) or one volatile store to its guard byte
    ///   (write). Insufficient rights make the touch trap; the SIGSEGV
    ///   handler routes the fault to the same protocol logic on this thread.
    ///   No directory access happens on the no-fault path.
    ///
    /// Either way the subsequent verify-and-pin step under the directory
    /// lock remains the source of truth for the access itself.
    fn ensure_access(self: &Arc<Self>, object: ObjectId, write: bool) -> Result<()> {
        if self.vm.is_some() {
            return self.vm_touch(object, write);
        }
        if write {
            self.ensure_write(object)
        } else {
            self.ensure_read(object)
        }
    }

    /// Performs a hardware touch of `object` (VM-trap mode) and surfaces any
    /// error the in-handler fault protocol parked.
    fn vm_touch(self: &Arc<Self>, object: ObjectId, write: bool) -> Result<()> {
        let vm = self.vm.as_ref().expect("vm_touch requires VM-trap mode");
        if write {
            vm.touch_write(object);
        } else {
            vm.touch_read(object);
        }
        if let Some(e) = self.take_vm_fault_error() {
            // The handler loosened the page so the failed touch could
            // complete; restore the protection the directory mandates.
            let rights = self.dir.lock().entry(object).state.rights;
            vm.sync_rights(object, rights);
            return Err(e);
        }
        Ok(())
    }

    /// Copies `out.len()` bytes at `byte_offset` of `var` out of segment
    /// memory. Caller holds the pins covering the range.
    fn copy_var_bytes_out(&self, var: crate::object::VarId, byte_offset: usize, out: &mut [u8]) {
        match &self.vm {
            None => {
                let base = self.table.var(var).segment_offset;
                let mem = self.memory.lock();
                out.copy_from_slice(&mem[base + byte_offset..base + byte_offset + out.len()]);
            }
            Some(vm) => {
                // Objects are contiguous within themselves but not across
                // object boundaries in the protected region: copy per object.
                let end = byte_offset + out.len();
                for oid in self.table.objects_in_range(var, byte_offset, end) {
                    let o = self.table.object(oid);
                    let lo = o.var_offset.max(byte_offset);
                    let hi = (o.var_offset + o.size).min(end);
                    vm.user_copy_out(
                        oid,
                        lo - o.var_offset,
                        &mut out[lo - byte_offset..hi - byte_offset],
                    );
                }
            }
        }
    }

    /// Copies `data` into segment memory at `byte_offset` of `var`. Caller
    /// holds the pins covering the range with write rights.
    fn copy_var_bytes_in(&self, var: crate::object::VarId, byte_offset: usize, data: &[u8]) {
        match &self.vm {
            None => {
                let base = self.table.var(var).segment_offset;
                let mut mem = self.memory.lock();
                mem[base + byte_offset..base + byte_offset + data.len()].copy_from_slice(data);
            }
            Some(vm) => {
                let end = byte_offset + data.len();
                for oid in self.table.objects_in_range(var, byte_offset, end) {
                    let o = self.table.object(oid);
                    let lo = o.var_offset.max(byte_offset);
                    let hi = (o.var_offset + o.size).min(end);
                    vm.user_copy_in(
                        oid,
                        lo - o.var_offset,
                        &data[lo - byte_offset..hi - byte_offset],
                    );
                }
            }
        }
    }

    /// Reads `out.len()` bytes starting at `byte_offset` of variable `var`'s
    /// storage, faulting in each covered object as needed.
    ///
    /// The covered entries are *pinned* (their rights held) from the final
    /// rights check until the bytes have been copied out, so an
    /// ownership-transferring fetch cannot invalidate the local copy inside
    /// the check-then-act window.
    pub(crate) fn read_var_bytes(
        self: &Arc<Self>,
        var: crate::object::VarId,
        byte_offset: usize,
        out: &mut [u8],
    ) -> Result<()> {
        let objects = self
            .table
            .objects_in_range(var, byte_offset, byte_offset + out.len());
        self.pin_for_access(&objects, false)?;
        self.copy_var_bytes_out(var, byte_offset, out);
        self.unpin(&objects);
        Ok(())
    }

    /// Writes `data` starting at `byte_offset` of variable `var`'s storage,
    /// faulting each covered object for write access as needed.
    ///
    /// The covered entries are pinned from the final rights check until the
    /// bytes are in segment memory: a concurrently arriving
    /// ownership-transferring fetch is deferred by the service thread until
    /// the write has landed, so the served copy always contains it (the
    /// ROADMAP lost-update race).
    pub(crate) fn write_var_bytes(
        self: &Arc<Self>,
        var: crate::object::VarId,
        byte_offset: usize,
        data: &[u8],
    ) -> Result<()> {
        let objects = self
            .table
            .objects_in_range(var, byte_offset, byte_offset + data.len());
        self.pin_for_access(&objects, true)?;
        self.copy_var_bytes_in(var, byte_offset, data);
        self.unpin(&objects);
        Ok(())
    }

    /// Acquires the rights needed for a memory access of `objects` and pins
    /// every covered entry under a single directory lock.
    ///
    /// Faulting (which may block on remote replies) happens *without* any pin
    /// held, so two nodes faulting each other's objects cannot deadlock; the
    /// verify-and-pin step then re-checks all rights atomically and retries
    /// the faults if a racing ownership transfer revoked them in between.
    /// In VM-trap mode the verify step also turns a *missed* trap — a touch
    /// that landed while a privileged access had transiently loosened the
    /// pages — into a retry: the rights check fails, and once the privileged
    /// window closes the retried touch traps. A missed trap therefore costs
    /// retries, never a missed fault.
    fn pin_for_access(self: &Arc<Self>, objects: &[ObjectId], write: bool) -> Result<()> {
        loop {
            for obj in objects {
                self.ensure_access(*obj, write)?;
            }
            let mut dir = self.dir.lock();
            let all_valid = objects.iter().all(|o| {
                let rights = dir.entry(*o).state.rights;
                if write {
                    rights.allows_write()
                } else {
                    rights.allows_read()
                }
            });
            if all_valid {
                for obj in objects {
                    let entry = dir.entry_mut(*obj);
                    entry.state.pinned = true;
                    if write {
                        entry.state.dirty = true;
                    }
                }
                return Ok(());
            }
            // Lost a race with a remote ownership transfer between the fault
            // and the pin: drop the lock and fault again.
        }
    }

    /// Releases the pins taken by [`Self::pin_for_access`] and retries any
    /// requests the service thread deferred while the access was in flight.
    fn unpin(self: &Arc<Self>, objects: &[ObjectId]) {
        {
            let mut dir = self.dir.lock();
            for obj in objects {
                dir.entry_mut(*obj).state.pinned = false;
            }
        }
        self.note_unblocked_and_process_deferred();
    }

    /// Handles a read access fault.
    pub(crate) fn read_fault(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        use crate::obs::EventKind;
        let t0 = self.clock.now().as_nanos();
        self.obs
            .record(t0, EventKind::ReadFaultBegin, |ev| ev.object = Some(object));
        let result = self.read_fault_inner(object);
        let t1 = self.clock.now().as_nanos();
        let dur = t1.saturating_sub(t0);
        self.obs.record(t1, EventKind::ReadFaultEnd, |ev| {
            ev.object = Some(object);
            ev.dur_ns = dur;
        });
        self.obs
            .record_fault_service(self.annotation_class(object), dur);
        result
    }

    fn read_fault_inner(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        bump(&self.stats.read_faults);
        self.charge_sys(self.cost.fault());
        let owner_hint = {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.rights.allows_read() {
                return Ok(());
            }
            if entry.state.owned {
                // The owner itself touches an object it never materialized:
                // zero-fill locally, no messages needed.
                self.set_entry_rights(entry, AccessRights::Read);
                return Ok(());
            }
            entry.state.busy = true;
            entry.probable_owner
        };
        let result = self.fetch_object(object, FetchKind::Read, owner_hint);
        self.clear_busy(object);
        result
    }

    /// Handles a write access fault, dispatching on the object's protocol
    /// parameters.
    pub(crate) fn write_fault(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        use crate::obs::EventKind;
        let t0 = self.clock.now().as_nanos();
        self.obs.record(t0, EventKind::WriteFaultBegin, |ev| {
            ev.object = Some(object)
        });
        let result = self.write_fault_inner(object);
        let t1 = self.clock.now().as_nanos();
        let dur = t1.saturating_sub(t0);
        self.obs.record(t1, EventKind::WriteFaultEnd, |ev| {
            ev.object = Some(object);
            ev.dur_ns = dur;
        });
        self.obs
            .record_fault_service(self.annotation_class(object), dur);
        result
    }

    /// The annotation-class keyword of `object` (fault service-time
    /// histogram key).
    fn annotation_class(&self, object: ObjectId) -> &'static str {
        self.dir.lock().entry(object).annotation.keyword()
    }

    fn write_fault_inner(self: &Arc<Self>, object: ObjectId) -> Result<()> {
        bump(&self.stats.write_faults);
        self.charge_sys(self.cost.fault());
        enum Plan {
            Done,
            Error(MuninError),
            Delayed { need_copy: bool, owner_hint: NodeId },
            UpgradeInPlace { copyset: CopySet },
            AcquireOwnership { owner_hint: NodeId },
        }
        let plan = {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            if entry.state.owned && !entry.state.rights.allows_read() {
                // The owner writes an object it never materialized: zero-fill
                // locally and continue with the normal write-fault handling.
                self.set_entry_rights(entry, AccessRights::Read);
            }
            if entry.state.rights.allows_write() {
                entry.state.dirty = true;
                Plan::Done
            } else if !entry.params.is_writable() {
                bump(&self.stats.runtime_errors);
                Plan::Error(MuninError::ReadOnlyWrite(object))
            } else if entry.annotation == SharingAnnotation::Reduction {
                bump(&self.stats.runtime_errors);
                Plan::Error(MuninError::NotAReductionObject(object))
            } else if entry.params.allows_delay() {
                entry.state.busy = true;
                Plan::Delayed {
                    need_copy: !entry.state.rights.allows_read(),
                    owner_hint: entry.probable_owner,
                }
            } else if entry.state.owned && entry.state.rights.allows_read() {
                // Already the owner with a (read-protected) copy: invalidate
                // the remaining replicas and upgrade in place.
                entry.state.busy = true;
                Plan::UpgradeInPlace {
                    copyset: entry.copyset.clone(),
                }
            } else {
                entry.state.busy = true;
                Plan::AcquireOwnership {
                    owner_hint: entry.probable_owner,
                }
            }
        };
        let result = match plan {
            Plan::Done => Ok(()),
            Plan::Error(e) => Err(e),
            Plan::Delayed {
                need_copy,
                owner_hint,
            } => self.delayed_write_fault(object, need_copy, owner_hint),
            Plan::UpgradeInPlace { copyset } => {
                let r = self.invalidate_copies(object, copyset);
                if r.is_ok() {
                    let mut dir = self.dir.lock();
                    let entry = dir.entry_mut(object);
                    self.set_entry_rights(entry, AccessRights::ReadWrite);
                    entry.state.dirty = true;
                    entry.copyset = CopySet::EMPTY;
                }
                r
            }
            Plan::AcquireOwnership { owner_hint } => {
                self.fetch_object(object, FetchKind::Write, owner_hint)
            }
        };
        // Every plan that set the busy bit clears it here; clearing an entry
        // that was never marked busy is harmless.
        self.clear_busy(object);
        result
    }

    /// Write fault on an object whose protocol allows delayed updates
    /// (write-shared, producer-consumer, result): fetch a copy if none is
    /// present, make a twin when multiple writers are possible, enqueue the
    /// object on the DUQ, and enable writes.
    fn delayed_write_fault(
        self: &Arc<Self>,
        object: ObjectId,
        need_copy: bool,
        owner_hint: NodeId,
    ) -> Result<()> {
        if need_copy {
            self.fetch_object(object, FetchKind::Read, owner_hint)?;
        }
        let (make_twin, size) = {
            let dir = self.dir.lock();
            let entry = dir.entry(object);
            let private = entry.state.copyset_fixed && entry.copyset.is_empty();
            (
                entry.params.allows_multiple_writers() && !private,
                entry.size,
            )
        };
        let twin = if make_twin {
            bump(&self.stats.twins_created);
            self.charge_sys(self.cost.copy(size as u64));
            // Reuse a pooled twin buffer instead of allocating a fresh copy:
            // flushes return their twins to the pool after encoding.
            let mut buf = self.duq.lock().acquire_twin_buffer(size);
            self.read_object_into(object, &mut buf);
            Some(buf)
        } else {
            None
        };
        {
            let mut duq = self.duq.lock();
            duq.enqueue(object, twin);
        }
        let mut dir = self.dir.lock();
        let entry = dir.entry_mut(object);
        self.set_entry_rights(entry, AccessRights::ReadWrite);
        entry.state.dirty = true;
        Ok(())
    }

    /// Sends an object fetch to `owner_hint` (the request is forwarded along
    /// the probable-owner chain) and installs the reply.
    pub(crate) fn fetch_object(
        self: &Arc<Self>,
        object: ObjectId,
        access: FetchKind,
        owner_hint: NodeId,
    ) -> Result<()> {
        self.obs.record(
            self.clock.now().as_nanos(),
            crate::obs::EventKind::FetchSend,
            |ev| {
                ev.object = Some(object);
                ev.peer = Some(owner_hint);
            },
        );
        self.send(
            owner_hint,
            DsmMsg::ObjectFetch {
                object,
                access,
                requester: self.node,
            },
        )?;
        // Deaths interrupt the wait: the fetch (or its forward, or the
        // reply) may be sitting in a corpse, so any confirmed death — of
        // any peer, since the probable-owner chain is unknowable from here
        // — triggers a recovery round that re-establishes a live owner or
        // proves the object lost. Already-dead peers are signalled on the
        // first wait, covering a fetch sent straight to a corpse.
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        let (env, reply) = loop {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::Fetch(object), &mut handled) {
                Ok(reply) => break reply,
                Err(MuninError::PeerDied(dead)) => {
                    if let Some(reply) = self.refetch_orphan(object, access, dead)? {
                        break reply;
                    }
                }
                Err(e) => return Err(e),
            }
        };
        let DsmMsg::ObjectData {
            object: got,
            data,
            ownership,
            copyset,
            writable,
        } = reply
        else {
            return Err(MuninError::ProtocolViolation(
                "expected ObjectData in reply to ObjectFetch",
            ));
        };
        if got != object {
            return Err(MuninError::ProtocolViolation("ObjectData for wrong object"));
        }
        bump(&self.stats.objects_fetched);
        add(&self.stats.fetch_bytes, data.len() as u64);
        crate::runtime::proto_trace!(
            self,
            "installed {object:?} from {:?} (ownership={ownership} writable={writable} arrival={}ns)",
            env.src,
            env.arrival.as_nanos()
        );
        self.charge_sys(self.cost.dir_op());
        self.install_object_bytes(object, &data);
        let pending_invalidate = {
            let mut dir = self.dir.lock();
            let entry = dir.entry_mut(object);
            let rights = if writable {
                AccessRights::ReadWrite
            } else {
                AccessRights::Read
            };
            self.set_entry_rights(entry, rights);
            entry.state.owned = ownership;
            if ownership {
                entry.copyset = copyset.clone();
                entry.probable_owner = self.node;
            } else {
                entry.probable_owner = env.src;
            }
            if ownership && matches!(access, FetchKind::Write) && !copyset.is_empty() {
                Some(copyset)
            } else {
                None
            }
        };
        if let Some(copyset) = pending_invalidate {
            // Single-writer protocols: "upon a write miss an invalidation
            // message is transmitted to all other replicas. The thread that
            // generated the miss blocks until it has the only copy."
            self.invalidate_copies(object, copyset)?;
            let mut dir = self.dir.lock();
            dir.entry_mut(object).copyset = CopySet::EMPTY;
        }
        Ok(())
    }

    /// Runs one orphan-recovery round for a fetch interrupted by the death
    /// of `dead`: broadcasts a `CopysetQuery` for the object to every
    /// surviving peer, and — if the original `ObjectData` did not surface
    /// meanwhile — directs an [`DsmMsg::Adopt`] at the lowest-id surviving
    /// holder, or raises [`MuninError::NodeDown`] when no copy survived.
    ///
    /// The reply round always completes (a peer dying mid-round counts as
    /// an empty reply), so no stray `CopysetReply` can pollute a later
    /// wait. Returns the stashed `ObjectData` reply if one arrived.
    fn refetch_orphan(
        self: &Arc<Self>,
        object: ObjectId,
        access: FetchKind,
        dead: NodeId,
    ) -> Result<Option<(munin_sim::Envelope, DsmMsg)>> {
        crate::runtime::proto_trace!(
            self,
            "orphan recovery for {object:?} after death of {dead:?}"
        );
        let mut pending: Vec<NodeId> = self.live_peers().iter().collect();
        let shared: std::sync::Arc<[ObjectId]> = std::sync::Arc::from(vec![object]);
        for peer in &pending {
            add(&self.stats.copyset_query_msgs, 1);
            self.send(
                *peer,
                DsmMsg::CopysetQuery {
                    objects: std::sync::Arc::clone(&shared),
                    requester: self.node,
                },
            )?;
        }
        let mut holders: Vec<NodeId> = Vec::new();
        let mut data_reply = None;
        // Deaths already signalled to the caller must not end this round
        // early, but a peer dying *mid-round* counts as its (empty) reply.
        let mut handled = self.dead_set();
        while !pending.is_empty() {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::Fetch(object), &mut handled) {
                Ok((env, DsmMsg::CopysetReply { have })) => {
                    if have.contains(&object) {
                        holders.push(env.src);
                    }
                    pending.retain(|n| *n != env.src);
                }
                Ok(reply @ (_, DsmMsg::ObjectData { .. })) => {
                    // The fetch was alive after all; finish the round so the
                    // mailbox stays clean, then hand the data back.
                    data_reply = Some(reply);
                }
                Ok(_) => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply during orphan recovery",
                    ))
                }
                Err(MuninError::PeerDied(n)) => pending.retain(|p| *p != n),
                Err(e) => return Err(e),
            }
        }
        if data_reply.is_some() {
            return Ok(data_reply);
        }
        holders.sort();
        match holders.first() {
            Some(&adoptee) => {
                {
                    let mut dir = self.dir.lock();
                    dir.entry_mut(object).probable_owner = adoptee;
                }
                crate::runtime::proto_trace!(self, "asking {adoptee:?} to adopt orphan {object:?}");
                self.send(
                    adoptee,
                    DsmMsg::Adopt {
                        object,
                        access,
                        requester: self.node,
                    },
                )?;
                Ok(None)
            }
            None => {
                // No surviving copy anywhere: the paper's fail-fast case.
                bump(&self.stats.runtime_errors);
                Err(MuninError::NodeDown {
                    node: dead,
                    lost_objects: vec![object],
                })
            }
        }
    }

    /// Sends invalidations for `object` to every member of `copyset` (other
    /// than this node) and waits for the acknowledgements. A member
    /// confirmed dead counts as acknowledged: its copy is unreachable by
    /// definition, and recovery already pruned it from the copyset going
    /// forward.
    pub(crate) fn invalidate_copies(
        self: &Arc<Self>,
        object: ObjectId,
        copyset: CopySet,
    ) -> Result<()> {
        let members = copyset.members(self.nodes, Some(self.node));
        if members.is_empty() {
            return Ok(());
        }
        for m in &members {
            add(&self.stats.invalidations_sent, 1);
            self.send(
                *m,
                DsmMsg::Invalidate {
                    object,
                    requester: self.node,
                },
            )?;
        }
        let mut acked: Vec<NodeId> = Vec::new();
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        while acked.len() < members.len() {
            match self
                .wait_reply_or_dead(crate::runtime::WaitOp::InvalidateAcks(object), &mut handled)
            {
                Ok((env, DsmMsg::InvalidateAck { object: o })) if o == object => {
                    if !acked.contains(&env.src) {
                        acked.push(env.src);
                    }
                }
                Ok(_) => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while waiting for invalidation acks",
                    ))
                }
                Err(MuninError::PeerDied(n)) => {
                    if members.contains(&n) && !acked.contains(&n) {
                        acked.push(n);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Clears the busy bit set at the start of a fault and retries any
    /// requests that were deferred while the entry was in transition.
    fn clear_busy(self: &Arc<Self>, object: ObjectId) {
        {
            let mut dir = self.dir.lock();
            dir.entry_mut(object).state.busy = false;
        }
        self.note_unblocked_and_process_deferred();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MuninConfig;
    use crate::segment::SharedDataTable;
    use munin_sim::{CostModel, Network, NodeClock};
    use std::collections::HashSet;

    fn single_node() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ro", SharingAnnotation::ReadOnly, 4, 8, false);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        table.declare("conv", SharingAnnotation::Conventional, 4, 8, false);
        table.declare("red", SharingAnnotation::Reduction, 8, 1, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(1));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(1, CostModel::fast_test());
        let (sender, _rx) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            1,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            sender,
        );
        let mut touched = HashSet::new();
        for obj in rt.table().objects() {
            touched.insert(obj.id);
        }
        rt.finish_root_init(&touched);
        rt
    }

    fn obj(rt: &NodeRuntime, name: &str) -> ObjectId {
        rt.table().var_by_name(name).unwrap().objects[0]
    }

    #[test]
    fn write_to_read_only_object_is_a_runtime_error() {
        let rt = single_node();
        let ro = obj(&rt, "ro");
        let err = rt.write_fault(ro).unwrap_err();
        assert_eq!(err, MuninError::ReadOnlyWrite(ro));
        assert_eq!(rt.stats().snapshot().runtime_errors, 1);
    }

    #[test]
    fn plain_write_to_reduction_object_is_rejected() {
        let rt = single_node();
        let red = obj(&rt, "red");
        // Force a fault by write-protecting the entry.
        rt.dir.lock().entry_mut(red).state.rights = AccessRights::Read;
        assert!(matches!(
            rt.write_fault(red),
            Err(MuninError::NotAReductionObject(_))
        ));
    }

    #[test]
    fn delayed_write_fault_creates_twin_and_enqueues() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        assert_eq!(
            rt.dir.lock().entry(ws).state.rights,
            AccessRights::Read,
            "write-shared objects start write-protected"
        );
        rt.write_fault(ws).unwrap();
        assert!(rt.duq.lock().contains(ws));
        assert!(rt.duq.lock().twin_of(ws).is_some());
        assert_eq!(
            rt.dir.lock().entry(ws).state.rights,
            AccessRights::ReadWrite
        );
        assert_eq!(rt.stats().snapshot().twins_created, 1);
        assert_eq!(rt.stats().snapshot().write_faults, 1);
    }

    #[test]
    fn second_write_fault_does_not_duplicate_duq_entry() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.write_fault(ws).unwrap();
        // Simulate re-protection then another fault before a flush: the twin
        // from the first fault must be preserved.
        rt.install_object_bytes(ws, &[9u8; 32]);
        rt.dir.lock().entry_mut(ws).state.rights = AccessRights::Read;
        rt.write_fault(ws).unwrap();
        assert_eq!(rt.duq.lock().len(), 1);
        assert_eq!(rt.duq.lock().twin_of(ws).unwrap(), vec![0u8; 32].as_slice());
    }

    #[test]
    fn owner_upgrade_in_place_needs_no_messages_when_no_replicas() {
        let rt = single_node();
        let conv = obj(&rt, "conv");
        // Root owns the conventional object with ReadWrite rights already;
        // downgrade to Read to force the upgrade path.
        rt.dir.lock().entry_mut(conv).state.rights = AccessRights::Read;
        rt.write_fault(conv).unwrap();
        let dir = rt.dir.lock();
        assert_eq!(dir.entry(conv).state.rights, AccessRights::ReadWrite);
        assert!(dir.entry(conv).state.owned);
    }

    #[test]
    fn read_of_valid_object_does_not_fault() {
        let rt = single_node();
        let ro = obj(&rt, "ro");
        rt.ensure_read(ro).unwrap();
        assert_eq!(rt.stats().snapshot().read_faults, 0);
    }

    #[test]
    fn var_byte_access_round_trips_through_memory() {
        let rt = single_node();
        let ws = rt.table().var_by_name("ws").unwrap().id;
        rt.write_var_bytes(ws, 4, &42u32.to_le_bytes()).unwrap();
        let mut out = [0u8; 4];
        rt.read_var_bytes(ws, 4, &mut out).unwrap();
        assert_eq!(u32::from_le_bytes(out), 42);
    }
}
