//! Flushing the delayed update queue at a release.
//!
//! "When a thread releases a lock or reaches a barrier, the modifications to
//! the objects enqueued on the DUQ are propagated to their remote copies."
//! (Section 3.3.) The flush proceeds in three steps:
//!
//! 1. determine the copyset of every enqueued object (either the prototype's
//!    broadcast query or the improved owner-collected algorithm),
//! 2. encode the changes — a run-length encoded diff against the twin when
//!    one exists, the full object image otherwise — and
//! 3. send the updates (grouped into one message per destination node) and
//!    wait for acknowledgements, so that all writes performed before the
//!    release are performed with respect to every other processor before the
//!    release completes.
//!
//! `result` objects are not sent to their copyset: their changes are flushed
//! only to the owner and the local copy is invalidated (the `Fl` parameter).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use munin_sim::NodeId;

use crate::config::CopysetStrategy;
use crate::copyset::CopySet;
use crate::directory::AccessRights;
use crate::duq::DuqEntry;
use crate::error::{MuninError, Result};
use crate::msg::{DsmMsg, UpdateItem, UpdatePayload};
use crate::object::ObjectId;
use crate::stats::{add, bump};

use super::NodeRuntime;

/// Routing decision for one flushed object: the destinations its changes go
/// to, and whether they fan out to a copyset (`true`) or flush to the owner
/// (`false`, `result` objects). Produced by `NodeRuntime::flush_route`.
struct FlushRoute {
    fans_out: bool,
    destinations: Vec<NodeId>,
}

impl NodeRuntime {
    /// Flushes the delayed update queue. Called before every release (lock
    /// release or barrier arrival) and by the `Flush` hint.
    pub(crate) fn flush_duq(self: &Arc<Self>) -> Result<()> {
        let entries = {
            let mut duq = self.duq.lock();
            duq.flush()
        };
        bump(&self.stats.duq_flushes);
        if entries.is_empty() {
            return Ok(());
        }
        add(&self.stats.duq_objects_flushed, entries.len() as u64);

        // Step 1: determine copysets where needed. `result` objects go to
        // their owner and need none; stable objects whose copyset is already
        // fixed reuse it.
        let needs_determination: Vec<ObjectId> = {
            let dir = self.dir.lock();
            entries
                .iter()
                .map(|e| e.object)
                .filter(|o| {
                    let entry = dir.entry(*o);
                    !entry.params.flushes_to_owner() && !entry.state.copyset_fixed
                })
                .collect()
        };
        if !needs_determination.is_empty() {
            let determined = match self.cfg.copyset_strategy {
                CopysetStrategy::Broadcast => {
                    self.determine_copysets_broadcast(&needs_determination)?
                }
                CopysetStrategy::OwnerCollected => {
                    self.determine_copysets_owner(&needs_determination)?
                }
            };
            let mut dir = self.dir.lock();
            for (object, copyset) in determined {
                let entry = dir.entry_mut(object);
                // For objects this node owns, *merge* the determined set with
                // the replicas recorded while serving fetches: a fetch served
                // after the query replies were collected (its requester's
                // reply raced the in-flight object data) must not be
                // forgotten, or its holder would silently stop receiving
                // updates — the seed-level SOR divergence. The merge is a
                // deliberate over-approximation: a member that later dropped
                // its copy (e.g. the Invalidate hint) cannot be pruned here,
                // because "doesn't have a copy right now" is indistinguishable
                // from "fetch in flight". Stale members cost one discarded
                // update per flush and are reset by ownership transfers and
                // invalidations, which clear the copyset.
                if entry.state.owned {
                    entry.copyset = entry.copyset.union(&copyset);
                } else {
                    entry.copyset = copyset;
                }
                crate::runtime::proto_trace!(
                    self,
                    "copyset of {object:?} determined: {:?}",
                    entry.copyset.members(self.nodes, None)
                );
                if entry.params.is_stable() {
                    entry.state.copyset_fixed = true;
                }
            }
        }

        // Step 2+3 overlapped: encode changes and transmit as the
        // per-destination messages become complete, instead of materializing
        // the full destination map first. A read-only pre-pass mirrors
        // `encode_entry`'s routing to count how many entries can still
        // contribute to each destination; once a destination's count drains
        // to zero its `Update` goes on the wire while later entries are still
        // being encoded. Each entry is encoded exactly once; the flat diff
        // buffer is shared (via `Arc`) between the per-destination clones of
        // the payload.
        let routes: Vec<FlushRoute> = {
            let dir = self.dir.lock();
            entries
                .iter()
                .map(|e| self.flush_route(dir.entry(e.object)))
                .collect()
        };
        let mut remaining: BTreeMap<NodeId, usize> = BTreeMap::new();
        for route in &routes {
            for dest in &route.destinations {
                *remaining.entry(*dest).or_default() += 1;
            }
        }
        let mut pending: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        // Fan-out payloads are retained (cheap: the buffers are `Arc`-shared)
        // until the ack round completes, so updates can be re-sent to copyset
        // members the owner reports as missed.
        let mut fanout: HashMap<ObjectId, (UpdatePayload, Vec<NodeId>)> = HashMap::new();
        let mut expected_acks = 0usize;
        let send_update = |rt: &Arc<Self>,
                           dest: NodeId,
                           items: Vec<UpdateItem>,
                           expected_acks: &mut usize|
         -> Result<()> {
            crate::runtime::proto_trace!(
                rt,
                "flush -> {dest:?}: {:?}",
                items.iter().map(|i| i.object).collect::<Vec<_>>()
            );
            add(&rt.stats.updates_sent, 1);
            add(
                &rt.stats.update_bytes_sent,
                items.iter().map(|i| i.payload.model_bytes()).sum::<u64>(),
            );
            rt.send(
                dest,
                DsmMsg::Update {
                    items,
                    requester: rt.node,
                    needs_ack: true,
                },
            )?;
            *expected_acks += 1;
            Ok(())
        };
        for (entry, route) in entries.into_iter().zip(&routes) {
            let object = entry.object;
            let (payload, destinations) = self.encode_entry(entry)?;
            if let Some(payload) = &payload {
                for dest in &destinations {
                    pending.entry(*dest).or_default().push(UpdateItem {
                        object,
                        payload: payload.clone(),
                    });
                }
                if route.fans_out {
                    fanout.insert(object, (payload.clone(), destinations.clone()));
                }
            }
            for dest in &route.destinations {
                let rem = remaining
                    .get_mut(dest)
                    .expect("route destinations are all counted");
                *rem -= 1;
                if *rem == 0 {
                    if let Some(items) = pending.remove(dest) {
                        send_update(self, *dest, items, &mut expected_acks)?;
                    }
                }
            }
        }
        // Catch-all: a destination `encode_entry` routed to but the pre-pass
        // did not (the directory changed between the two reads — e.g. the
        // service thread recorded a new replica while we flushed) still gets
        // its update here.
        for (dest, items) in std::mem::take(&mut pending) {
            if !items.is_empty() {
                send_update(self, dest, items, &mut expected_acks)?;
            }
        }

        // Ack round (conservative release consistency: updates are performed
        // at the release). Owners piggyback their authoritative recorded
        // copysets on the ack; any member they know of that this flush did
        // not reach — a replica whose fetch was served *after* our copyset
        // query was answered — gets the update re-sent now, and the release
        // completes only once those re-sends are acknowledged too. Re-sends
        // travel on this node's own lanes, so they can never overtake (or be
        // overtaken by) this node's later flushes.
        let mut acks = 0usize;
        while acks < expected_acks {
            let (_env, reply) = self.wait_reply()?;
            match reply {
                DsmMsg::UpdateAck { owned_copysets, .. } => {
                    acks += 1;
                    // Batch the heals per missed member, preserving the
                    // normal flush path's one-Update-per-destination shape:
                    // an owner reporting k objects that all missed the same
                    // late-fetching member costs one message, not k.
                    let mut heal: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
                    for (object, owner_set) in owned_copysets {
                        let Some((payload, sent)) = fanout.get_mut(&object) else {
                            continue;
                        };
                        let missed: Vec<NodeId> = owner_set
                            .members(self.nodes, Some(self.node))
                            .into_iter()
                            .filter(|m| !sent.contains(m))
                            .collect();
                        if missed.is_empty() {
                            continue;
                        }
                        // Remember the healed members for future flushes of
                        // this object (mirrors the owner-side serve-record
                        // merge).
                        {
                            let mut dir = self.dir.lock();
                            let e = dir.entry_mut(object);
                            e.copyset = e.copyset.union(&owner_set);
                        }
                        for m in missed {
                            crate::runtime::proto_trace!(
                                self,
                                "heal {object:?} -> {m:?} (owner-reported member missed at determination)"
                            );
                            add(&self.stats.updates_healed, 1);
                            sent.push(m);
                            heal.entry(m).or_default().push(UpdateItem {
                                object,
                                payload: payload.clone(),
                            });
                        }
                    }
                    for (member, items) in heal {
                        send_update(self, member, items, &mut expected_acks)?;
                    }
                }
                other => {
                    return Err(MuninError::ProtocolViolation(match other {
                        DsmMsg::ObjectData { .. } => "unexpected ObjectData during flush",
                        _ => "unexpected reply while waiting for update acks",
                    }))
                }
            }
        }
        Ok(())
    }

    /// Computes where one flushed object's changes go. The single source of
    /// routing truth, shared by `flush_duq`'s send-scheduling pre-pass and
    /// `encode_entry`, so the two cannot drift.
    fn flush_route(&self, e: &crate::directory::DirEntry) -> FlushRoute {
        if e.params.flushes_to_owner() {
            // `result` objects go only to their owner; nothing to send when
            // this node *is* the owner.
            FlushRoute {
                fans_out: false,
                destinations: if e.home == self.node {
                    Vec::new()
                } else {
                    vec![e.home]
                },
            }
        } else {
            FlushRoute {
                fans_out: true,
                destinations: e.copyset.members(self.nodes, Some(self.node)),
            }
        }
    }

    /// Encodes one DUQ entry and decides where its changes go, applying the
    /// per-protocol state transitions (re-protection, invalidation of the
    /// local copy for `result` objects, private-page promotion for stable
    /// objects with an empty copyset).
    ///
    /// The entry is consumed: its twin buffer is returned to the DUQ's pool
    /// once the diff has been encoded. The diff is encoded exactly once into
    /// the node's reusable scratch buffer and shared via `Arc` when the
    /// caller fans it out to several destinations.
    pub(crate) fn encode_entry(
        self: &Arc<Self>,
        entry: DuqEntry,
    ) -> Result<(Option<UpdatePayload>, Vec<NodeId>)> {
        let object = entry.object;
        let range = self.object_range(object);
        let (route, home, stable) = {
            let dir = self.dir.lock();
            let e = dir.entry(object);
            (self.flush_route(e), e.home, e.params.is_stable())
        };

        // Encode: diff against the twin when there is one (straight out of
        // segment memory, no object copy), otherwise the full object image.
        let payload = match entry.twin {
            Some(twin) => {
                let d = self.with_object_mem(object, |cur| {
                    let mut scratch = self.diff_scratch.lock();
                    scratch.encode(cur, &twin)
                });
                self.charge_sys(
                    self.cost
                        .encode((range.len() / 4) as u64, d.run_count() as u64),
                );
                self.duq.lock().recycle_twin(twin);
                if d.is_empty() {
                    None
                } else {
                    Some(UpdatePayload::Diff(d))
                }
            }
            None => Some(UpdatePayload::Full(self.object_bytes(object))),
        };

        let mut dir = self.dir.lock();
        let e = dir.entry_mut(object);
        e.state.dirty = false;

        if !route.fans_out {
            // `result` objects: send only to the owner, then invalidate the
            // local copy ("Fl" and the description of Matrix Multiply).
            if home == self.node {
                // The owner's own changes are already in place.
                return Ok((None, Vec::new()));
            }
            self.set_entry_rights(e, AccessRights::Invalid);
            e.state.owned = false;
            e.probable_owner = home;
            return Ok((payload, route.destinations));
        }

        let members = route.destinations;
        if members.is_empty() && stable {
            // "Any pages that have an empty Copyset and are therefore private
            // are made locally writable, their twins are deleted, and they do
            // not generate further access faults."
            self.set_entry_rights(e, AccessRights::ReadWrite);
            return Ok((None, Vec::new()));
        }
        // Write-shared / producer-consumer: keep the copy, re-write-protect so
        // the next write makes a fresh twin.
        self.set_entry_rights(e, AccessRights::Read);
        if members.is_empty() {
            return Ok((None, Vec::new()));
        }
        Ok((payload, members))
    }

    /// The prototype's copyset determination: broadcast the list of modified
    /// objects to every other node and collect the subsets each holds.
    fn determine_copysets_broadcast(
        self: &Arc<Self>,
        objects: &[ObjectId],
    ) -> Result<HashMap<ObjectId, CopySet>> {
        let peers: Vec<NodeId> = (0..self.nodes)
            .map(NodeId::new)
            .filter(|n| *n != self.node)
            .collect();
        let mut result: HashMap<ObjectId, CopySet> =
            objects.iter().map(|o| (*o, CopySet::EMPTY)).collect();
        if peers.is_empty() {
            return Ok(result);
        }
        add(&self.stats.copyset_queries, 1);
        // One shared allocation for the whole broadcast: every peer's query
        // message clones the `Arc`, not the object list.
        let shared: Arc<[ObjectId]> = Arc::from(objects);
        for peer in &peers {
            add(&self.stats.copyset_query_msgs, 1);
            self.send(
                *peer,
                DsmMsg::CopysetQuery {
                    objects: Arc::clone(&shared),
                    requester: self.node,
                },
            )?;
        }
        let mut replies = 0;
        while replies < peers.len() {
            let (env, reply) = self.wait_reply()?;
            match reply {
                DsmMsg::CopysetReply { have } => {
                    for o in have {
                        if let Some(cs) = result.get_mut(&o) {
                            cs.insert(env.src);
                        }
                    }
                    replies += 1;
                }
                _ => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while determining copysets",
                    ))
                }
            }
        }
        self.charge_sys(self.cost.dir_op());
        Ok(result)
    }

    /// The improved algorithm the paper sketches: the owner of each object
    /// collects copyset information while serving fetches, so the flusher
    /// asks the owner instead of broadcasting. Objects owned locally need no
    /// messages at all.
    fn determine_copysets_owner(
        self: &Arc<Self>,
        objects: &[ObjectId],
    ) -> Result<HashMap<ObjectId, CopySet>> {
        let mut result: HashMap<ObjectId, CopySet> = HashMap::new();
        let mut remote: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        {
            let dir = self.dir.lock();
            for o in objects {
                let e = dir.entry(*o);
                if e.state.owned {
                    result.insert(*o, e.copyset);
                } else {
                    remote.entry(e.probable_owner).or_default().push(*o);
                }
            }
        }
        add(&self.stats.copyset_queries, 1);
        let expected = remote.len();
        for (owner, objs) in remote {
            add(&self.stats.copyset_query_msgs, 1);
            self.send(
                owner,
                DsmMsg::OwnerCopysetQuery {
                    objects: objs,
                    requester: self.node,
                },
            )?;
        }
        let mut replies = 0;
        while replies < expected {
            let (_env, reply) = self.wait_reply()?;
            match reply {
                DsmMsg::OwnerCopysetReply { copysets } => {
                    for (o, cs) in copysets {
                        result.insert(o, cs);
                    }
                    replies += 1;
                }
                _ => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while collecting owner copysets",
                    ))
                }
            }
        }
        self.charge_sys(self.cost.dir_op());
        Ok(result)
    }

    /// `Flush()` hint: "advises Munin to flush any buffered writes
    /// immediately rather than waiting for a release."
    pub(crate) fn flush_hint(self: &Arc<Self>) -> Result<()> {
        self.flush_duq()
    }

    /// `Invalidate()` hint: deletes the local copy of every object of a
    /// variable, propagating pending changes first.
    pub(crate) fn invalidate_hint(self: &Arc<Self>, objects: &[ObjectId]) -> Result<()> {
        // Flush any of the listed objects that are sitting in the DUQ so
        // their changes are not lost, then drop the local copies.
        let any_pending = {
            let duq = self.duq.lock();
            objects.iter().any(|o| duq.contains(*o))
        };
        if any_pending {
            self.flush_duq()?;
        }
        let mut dir = self.dir.lock();
        for o in objects {
            let e = dir.entry_mut(*o);
            if e.state.owned && e.home != self.node {
                // Give ownership back to the home node so later fetches can
                // still find the data there.
                e.state.owned = false;
                e.probable_owner = e.home;
            }
            self.set_entry_rights(e, AccessRights::Invalid);
            e.state.dirty = false;
        }
        Ok(())
    }

    /// `PhaseChange()` hint: "purges the accumulated sharing relationship
    /// information", so the next flush re-determines producer-consumer
    /// copysets.
    pub(crate) fn phase_change(self: &Arc<Self>) {
        // Lock order dir → duq, like every other path that holds both (the
        // invalidate handler encodes its flush under the directory lock).
        let mut dir = self.dir.lock();
        let duq = self.duq.lock();
        for idx in 0..dir.len() {
            let e = dir.entry_mut(ObjectId::new(idx as u32));
            if e.params.is_stable() {
                // Clear the "relationship is fixed" bit so the next flush
                // re-determines the copyset. The recorded copyset itself is
                // kept: at the owner it doubles as the record of served
                // fetches that the owner-collected determination relies on.
                e.state.copyset_fixed = false;
                // Pages promoted to locally-writable ("private") must be
                // write-protected again so that writes under the new sharing
                // relationships are detected and propagated.
                if e.state.rights == AccessRights::ReadWrite && !duq.contains(e.object) {
                    self.set_entry_rights(e, AccessRights::Read);
                }
            }
        }
    }

    /// `ChangeAnnotation()` hint: switches the protocol used for a variable's
    /// objects. Pending delayed updates are flushed first so the object is
    /// brought up to date under its old protocol.
    pub(crate) fn change_annotation(
        self: &Arc<Self>,
        objects: &[ObjectId],
        annotation: crate::annotation::SharingAnnotation,
    ) -> Result<()> {
        let any_pending = {
            let duq = self.duq.lock();
            objects.iter().any(|o| duq.contains(*o))
        };
        if any_pending {
            self.flush_duq()?;
        }
        let mut dir = self.dir.lock();
        for o in objects {
            let e = dir.entry_mut(*o);
            e.set_annotation(annotation);
            e.state.copyset_fixed = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::SharingAnnotation;
    use crate::config::MuninConfig;
    use crate::segment::SharedDataTable;
    use munin_sim::{CostModel, Network, NodeClock};
    use std::collections::HashSet;

    fn single_node() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        table.declare("pc", SharingAnnotation::ProducerConsumer, 4, 8, false);
        table.declare("res", SharingAnnotation::Result, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(1));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(1, CostModel::fast_test());
        let (sender, _rx) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            1,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            sender,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        rt
    }

    fn obj(rt: &NodeRuntime, name: &str) -> ObjectId {
        rt.table().var_by_name(name).unwrap().objects[0]
    }

    #[test]
    fn flush_on_single_node_clears_duq_and_reprotects() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        rt.flush_duq().unwrap();
        assert!(rt.duq.lock().is_empty());
        // Write-shared copies are re-write-protected after a flush.
        assert_eq!(rt.dir.lock().entry(ws).state.rights, AccessRights::Read);
        assert_eq!(rt.stats().snapshot().duq_flushes, 1);
        assert_eq!(rt.stats().snapshot().duq_objects_flushed, 1);
    }

    #[test]
    fn stable_object_with_empty_copyset_becomes_private() {
        let rt = single_node();
        let pc = obj(&rt, "pc");
        rt.write_fault(pc).unwrap();
        rt.flush_duq().unwrap();
        let dir = rt.dir.lock();
        let e = dir.entry(pc);
        assert!(e.state.copyset_fixed);
        assert_eq!(e.state.rights, AccessRights::ReadWrite);
        drop(dir);
        // A subsequent write does not fault, create a twin, or enqueue.
        let before = rt.stats().snapshot();
        rt.ensure_write(pc).unwrap();
        assert_eq!(rt.stats().snapshot().write_faults, before.write_faults);
        assert!(rt.duq.lock().is_empty());
    }

    #[test]
    fn result_object_at_owner_flushes_locally() {
        let rt = single_node();
        let res = obj(&rt, "res");
        rt.write_fault(res).unwrap();
        rt.install_object_bytes(res, &[1u8; 32]);
        rt.flush_duq().unwrap();
        // The owner keeps its (authoritative) copy.
        assert!(rt.dir.lock().entry(res).state.rights.allows_read());
        assert_eq!(rt.stats().snapshot().updates_sent, 0);
    }

    #[test]
    fn phase_change_clears_fixed_copysets() {
        let rt = single_node();
        let pc = obj(&rt, "pc");
        rt.write_fault(pc).unwrap();
        rt.flush_duq().unwrap();
        assert!(rt.dir.lock().entry(pc).state.copyset_fixed);
        rt.phase_change();
        assert!(!rt.dir.lock().entry(pc).state.copyset_fixed);
    }

    #[test]
    fn change_annotation_switches_protocol() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.change_annotation(&[ws], SharingAnnotation::Conventional)
            .unwrap();
        let dir = rt.dir.lock();
        assert_eq!(dir.entry(ws).annotation, SharingAnnotation::Conventional);
        assert!(dir.entry(ws).params.uses_invalidate());
    }

    #[test]
    fn invalidate_hint_drops_local_copy() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.write_fault(ws).unwrap();
        rt.invalidate_hint(&[ws]).unwrap();
        assert_eq!(rt.dir.lock().entry(ws).state.rights, AccessRights::Invalid);
        assert!(rt.duq.lock().is_empty());
    }

    #[test]
    fn empty_flush_is_cheap_and_counted() {
        let rt = single_node();
        rt.flush_duq().unwrap();
        let snap = rt.stats().snapshot();
        assert_eq!(snap.duq_flushes, 1);
        assert_eq!(snap.duq_objects_flushed, 0);
        assert_eq!(snap.updates_sent, 0);
    }

    /// Builds a runtime on node 0 of a three-node network (the peers are
    /// driven manually) so copysets with several members can be exercised.
    fn three_node_runtime() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (sender, _rx0) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            sender,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        rt
    }

    /// The flush fan-out guarantee: one DUQ entry is diff-encoded exactly
    /// once, and the per-destination payload clones share that single flat
    /// buffer via `Arc` instead of re-encoding or deep-copying.
    #[test]
    fn encode_entry_shares_one_encoding_across_destinations() {
        let rt = three_node_runtime();
        let ws = obj(&rt, "ws");
        // Take a write fault (creates the twin), modify the object, and give
        // the object a two-member copyset so the flush fans out.
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        {
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.copyset.insert(NodeId::new(2));
        }
        let entry = rt.duq.lock().flush().into_iter().next().unwrap();
        assert!(entry.twin.is_some());
        let (payload, destinations) = rt.encode_entry(entry).unwrap();
        assert_eq!(destinations, vec![NodeId::new(1), NodeId::new(2)]);
        let payload = payload.expect("modified object yields a payload");
        let UpdatePayload::Diff(ref d) = payload else {
            panic!("twin-backed entry must encode a diff, not a full image");
        };
        assert_eq!(d.changed_words(), 8);
        // Fan the payload out as flush_duq does and verify every clone
        // shares the same underlying buffer — i.e. exactly one encoding.
        let fanned: Vec<UpdatePayload> = destinations.iter().map(|_| payload.clone()).collect();
        for p in &fanned {
            let UpdatePayload::Diff(c) = p else {
                unreachable!()
            };
            assert!(
                c.shares_buffer(d),
                "per-destination clones must share one encoding"
            );
        }
        // The twin buffer went back to the pool for the next first-write.
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
    }

    /// End-to-end healing: the flusher's determination missed a member, the
    /// owner's ack reports it, and the flusher re-sends the update to the
    /// missed member before completing the release.
    #[test]
    fn flush_heals_members_reported_by_owner_ack() {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let (tx2, rx2) = net.endpoint(2, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        let ws = rt.table().var_by_name("ws").unwrap().objects[0];
        // Node 0 knows only of the replica at N1; N2's copy is "invisible"
        // to its determination (as if N2 fetched after the query round).
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        {
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.state.copyset_fixed = true; // skip the query round
        }
        // Service loop for node 0 (routes acks back to the flushing thread).
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let flusher_rt = Arc::clone(&rt);
        let flusher = std::thread::spawn(move || flusher_rt.flush_duq());
        // Peer 1 ("owner" in the reported sense) acks and reports that N2
        // also holds a copy.
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected update at N1, got {msg:?}");
        };
        assert_eq!(items.len(), 1);
        tx1.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![(ws, CopySet::from_nodes([NodeId::new(1), NodeId::new(2)]))],
            },
        )
        .unwrap();
        // The flusher must now heal N2 with the same payload.
        let (_env, msg) = rx2.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected healing update at N2, got {msg:?}");
        };
        assert_eq!(items[0].object, ws);
        tx2.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![],
            },
        )
        .unwrap();
        flusher.join().unwrap().unwrap();
        assert_eq!(rt.stats().snapshot().updates_healed, 1);
        assert_eq!(rt.stats().snapshot().updates_sent, 2);
        // N2 is remembered for future flushes.
        assert!(rt.dir.lock().entry(ws).copyset.contains(NodeId::new(2)));
        // Shut the service loop down.
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }

    /// Flushing reuses both the twin buffer (via the DUQ pool) and the diff
    /// scratch allocation across flush cycles.
    #[test]
    fn flush_cycle_reuses_twin_and_scratch_allocations() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        // First cycle warms the pool and the scratch.
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[1u8; 32]);
        rt.flush_duq().unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
        let scratch_cap = rt.diff_scratch.lock().capacity();
        assert!(scratch_cap > 0);
        // Second cycle must not grow either allocation.
        rt.dir.lock().entry_mut(ws).state.rights = AccessRights::Read;
        rt.write_fault(ws).unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 0, "twin taken from pool");
        rt.install_object_bytes(ws, &[2u8; 32]);
        rt.flush_duq().unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
        assert_eq!(rt.diff_scratch.lock().capacity(), scratch_cap);
    }
}
