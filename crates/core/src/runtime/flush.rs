//! Flushing the delayed update queue at a release.
//!
//! "When a thread releases a lock or reaches a barrier, the modifications to
//! the objects enqueued on the DUQ are propagated to their remote copies."
//! (Section 3.3.) The flush proceeds in three steps:
//!
//! 1. determine the copyset of every enqueued object (either the prototype's
//!    broadcast query or the improved owner-collected algorithm),
//! 2. encode the changes — a run-length encoded diff against the twin when
//!    one exists, the full object image otherwise — and
//! 3. send the updates (grouped into one message per destination node) and
//!    wait for acknowledgements, so that all writes performed before the
//!    release are performed with respect to every other processor before the
//!    release completes.
//!
//! `result` objects are not sent to their copyset: their changes are flushed
//! only to the owner and the local copy is invalidated (the `Fl` parameter).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use munin_sim::NodeId;

use crate::config::CopysetStrategy;
use crate::copyset::CopySet;
use crate::directory::AccessRights;
use crate::duq::DuqEntry;
use crate::error::{MuninError, Result};
use crate::msg::{DsmMsg, UpdateItem, UpdatePayload};
use crate::nodeset::NodeSet;
use crate::object::ObjectId;
use crate::stats::{add, bump};

use super::NodeRuntime;

/// Routing decision for one flushed object: the destinations its changes go
/// to, whether they fan out to a copyset (`true`) or flush to the owner
/// (`false`, `result` objects), and whether this node owns the object (which
/// is what makes deferred delivery through the carrier layer safe — the
/// owner serves every fetch from live memory itself). Produced by
/// `NodeRuntime::flush_route`.
pub(crate) struct FlushRoute {
    pub(crate) fans_out: bool,
    pub(crate) owned: bool,
    /// `Some(owner)` when the bundle takes the owner-cooperative path: the
    /// whole bundle ships to the object's (probable) owner as a
    /// `RelayFanout`, which installs it and re-fans to the members of its
    /// authoritative copyset. Set for non-owned fan-out entries under
    /// piggybacking whose copyset is not fixed; such entries skip copyset
    /// determination entirely and ignore `destinations`.
    pub(crate) coop_owner: Option<NodeId>,
    /// Fan-out destination set (already excludes this node). A bitmap, not a
    /// materialized list: flush paths iterate it in place.
    pub(crate) destinations: NodeSet,
}

/// How a flush dispatches its updates through the carrier/outbox layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FlushMode {
    /// Every update goes as its own acknowledged message — the legacy path,
    /// used at lock releases without a waiting grantee, for the
    /// `Invalidate`/`ChangeAnnotation` hints, and whenever `MUNIN_PIGGYBACK`
    /// is off.
    Immediate,
    /// `Flush()`-hint flush with piggybacking enabled: owner-flushed fan-out
    /// items are buffered in the outbox and merged into a later
    /// transmission; everything else is sent immediately.
    Coalesce,
    /// Release at an all-node barrier owned by `owner`: owner-flushed
    /// fan-out items (and `result` flushes homed at the owner) are returned
    /// to the caller to ride the `BarrierArrive` carrier, from which the
    /// owner re-attaches them to the matching releases.
    BarrierRelay {
        /// The barrier owner the arrive is headed to.
        owner: NodeId,
    },
    /// Lock release with a known next holder: owner-flushed fan-out items
    /// destined for the grantee ride the `LockGrant` carrier instead of a
    /// standalone update+ack round.
    LockRelay {
        /// The waiter the lock will be handed to.
        grantee: NodeId,
    },
}

/// Where one (entry destination) pair goes under a given flush mode.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    Immediate,
    Relay,
    Buffer,
}

/// Replaces a route's destinations (used by the encode paths that resolve to
/// "nothing to send" after applying their state transitions).
fn route_with(route: FlushRoute, destinations: NodeSet) -> FlushRoute {
    FlushRoute {
        destinations,
        ..route
    }
}

fn classify(mode: FlushMode, route: &FlushRoute, dest: NodeId) -> Dispatch {
    debug_assert!(
        route.coop_owner.is_none(),
        "owner-cooperative routes are dispatched whole, never per-destination"
    );
    if route.fans_out {
        if !route.owned {
            // Non-owned fan-out updates outside the cooperative path (fixed
            // copysets, piggybacking off) keep the acknowledged path: the
            // owner's ack carries its recorded copyset, which the heal
            // logic needs (see the ack round below).
            return Dispatch::Immediate;
        }
        match mode {
            FlushMode::Immediate => Dispatch::Immediate,
            FlushMode::Coalesce => Dispatch::Buffer,
            FlushMode::BarrierRelay { .. } => Dispatch::Relay,
            FlushMode::LockRelay { grantee } if dest == grantee => Dispatch::Relay,
            FlushMode::LockRelay { .. } => Dispatch::Immediate,
        }
    } else {
        // `result` flushes go to the fixed owner; they can ride a barrier
        // arrive that is already headed there (the owner installs the bundle
        // before counting the arrival, which is at least as early as the
        // legacy apply-then-ack).
        match mode {
            FlushMode::BarrierRelay { owner } if dest == owner => Dispatch::Relay,
            _ => Dispatch::Immediate,
        }
    }
}

impl NodeRuntime {
    /// Flushes the delayed update queue with every update as its own
    /// acknowledged message. Called by the hints that must leave no pending
    /// traffic behind, and by releases without a carrier opportunity.
    pub(crate) fn flush_duq(self: &Arc<Self>) -> Result<()> {
        self.flush_duq_mode(FlushMode::Immediate).map(|_| ())
    }

    /// Flushes the delayed update queue, dispatching updates per `mode`.
    /// Returns the per-destination bundles the caller must attach to its
    /// carrier (barrier arrive or lock grant); empty except in the relay
    /// modes.
    pub(crate) fn flush_duq_mode(
        self: &Arc<Self>,
        mode: FlushMode,
    ) -> Result<BTreeMap<NodeId, Vec<UpdateItem>>> {
        let entries = {
            let mut duq = self.duq.lock();
            duq.flush()
        };
        // Coalesced items from earlier hint flushes join this transmission
        // (they stay buffered when this flush coalesces too).
        let coalesced: BTreeMap<NodeId, Vec<UpdateItem>> = if mode == FlushMode::Coalesce {
            BTreeMap::new()
        } else {
            self.outbox.lock().drain_pending()
        };
        bump(&self.stats.duq_flushes);
        if entries.is_empty() && coalesced.is_empty() {
            return Ok(BTreeMap::new());
        }
        add(&self.stats.duq_objects_flushed, entries.len() as u64);

        // Step 1: determine copysets where needed. `result` objects go to
        // their owner and need none; stable objects whose copyset is already
        // fixed reuse it.
        let needs_determination: Vec<ObjectId> = {
            let mut dir = self.dir.lock();
            entries
                .iter()
                .map(|e| e.object)
                .filter(|o| {
                    let entry = dir.entry_mut(*o);
                    if entry.params.flushes_to_owner() || entry.state.copyset_fixed {
                        return false;
                    }
                    if !self.cfg.piggyback {
                        return true;
                    }
                    // Owner-cooperative entries (non-owned fan-out under
                    // piggybacking; see `FlushRoute::coop_owner`) skip
                    // determination: the owner re-fans from its
                    // authoritative copyset, so asking first would be a
                    // wasted round.
                    if !entry.state.owned {
                        return false;
                    }
                    // Owner-authoritative elision, the flusher-side twin of
                    // the cooperative path: when the flusher itself owns an
                    // update-based object, the replicas recorded while
                    // serving fetches *are* the copyset — every remote copy
                    // of such an object originates from a fetch this node
                    // served, and update-based annotations never drop copies
                    // silently (no invalidations). The broadcast round could
                    // only re-discover that same set (its result is merged
                    // with the recorded replicas anyway), so under
                    // piggybacking it is elided. A fetch racing this flush
                    // stays safe for the same reason as in the merge path:
                    // the owner serves fetches from its own live copy, which
                    // already contains the changes being flushed.
                    // Invalidate-based annotations keep the query round —
                    // invalidations and ownership transfers clear recorded
                    // copysets, so "recorded" is not authoritative for them.
                    if !entry.params.uses_invalidate() {
                        crate::runtime::proto_trace!(
                            self,
                            "elide determination of {o:?}: owner copyset is authoritative"
                        );
                        if entry.params.is_stable() {
                            entry.state.copyset_fixed = true;
                        }
                        return false;
                    }
                    true
                })
                .collect()
        };
        if !needs_determination.is_empty() {
            let determined = match self.cfg.copyset_strategy {
                CopysetStrategy::Broadcast => {
                    self.determine_copysets_broadcast(&needs_determination)?
                }
                CopysetStrategy::OwnerCollected => {
                    self.determine_copysets_owner(&needs_determination)?
                }
            };
            let mut dir = self.dir.lock();
            for (object, copyset) in determined {
                let entry = dir.entry_mut(object);
                // For objects this node owns, *merge* the determined set with
                // the replicas recorded while serving fetches: a fetch served
                // after the query replies were collected (its requester's
                // reply raced the in-flight object data) must not be
                // forgotten, or its holder would silently stop receiving
                // updates — the seed-level SOR divergence. The merge is a
                // deliberate over-approximation: a member that later dropped
                // its copy (e.g. the Invalidate hint) cannot be pruned here,
                // because "doesn't have a copy right now" is indistinguishable
                // from "fetch in flight". Stale members cost one discarded
                // update per flush and are reset by ownership transfers and
                // invalidations, which clear the copyset.
                if entry.state.owned {
                    entry.copyset = entry.copyset.union(&copyset);
                } else {
                    entry.copyset = copyset;
                }
                crate::runtime::proto_trace!(
                    self,
                    "copyset of {object:?} determined: {:?}",
                    entry.copyset.members(self.nodes, None)
                );
                if entry.params.is_stable() {
                    entry.state.copyset_fixed = true;
                }
            }
        }

        // Step 2+3 overlapped: encode changes and transmit as the
        // per-destination messages become complete, instead of materializing
        // the full destination map first. A read-only pre-pass mirrors
        // `encode_entry`'s routing to count how many entries can still
        // contribute to each destination; once a destination's count drains
        // to zero its `Update` goes on the wire while later entries are still
        // being encoded. Each entry is encoded exactly once; the flat diff
        // buffer is shared (via `Arc`) between the per-destination clones of
        // the payload.
        let routes: Vec<FlushRoute> = {
            let dir = self.dir.lock();
            entries
                .iter()
                .map(|e| self.flush_route(dir.entry(e.object)))
                .collect()
        };
        let mut remaining: BTreeMap<NodeId, usize> = BTreeMap::new();
        for route in &routes {
            if route.coop_owner.is_some() {
                continue;
            }
            for dest in route.destinations.iter() {
                if classify(mode, route, dest) == Dispatch::Immediate {
                    *remaining.entry(dest).or_default() += 1;
                }
            }
        }
        // Immediate per-destination messages start with the coalesced items
        // of earlier hint flushes (older changes first); in the relay modes
        // the coalesced items ride the carrier like everything else
        // owner-flushed.
        let mut pending: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        let mut relay: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        let mut buffered: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        // Owner-cooperative bundles, keyed by the owner they ship to.
        let mut coop: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        // Adaptive relay: a barrier-relayed payload bound for anyone but the
        // barrier owner transits the wire twice (flusher → owner →
        // destination). At or above the configured size threshold the byte
        // doubling outweighs the saved message, so the payload goes direct
        // as an ordinary sequenced update instead. Owner-bound bundles and
        // lock-relay bundles ride single-transit and are never bypassed.
        // Charges the bypass stats as a side effect, so call it only at a
        // real dispatch decision.
        let bypass = |rt: &Arc<Self>, dest: NodeId, bytes: u64| -> bool {
            let FlushMode::BarrierRelay { owner } = mode else {
                return false;
            };
            if dest == owner || bytes < rt.cfg.relay_max_bytes {
                return false;
            }
            add(&rt.stats.relay_bypassed_bytes, bytes);
            rt.obs.record(
                rt.clock.now().as_nanos(),
                crate::obs::EventKind::RelayBypass,
                |ev| {
                    ev.peer = Some(dest);
                    ev.seq = Some(bytes);
                },
            );
            true
        };
        for (dest, items) in coalesced {
            for item in items {
                let relayed = match mode {
                    FlushMode::BarrierRelay { .. } => {
                        !bypass(self, dest, item.payload.model_bytes())
                    }
                    FlushMode::LockRelay { grantee } => dest == grantee,
                    _ => false,
                };
                if relayed {
                    relay.entry(dest).or_default().push(item);
                } else {
                    pending.entry(dest).or_default().push(item);
                }
            }
        }
        // Fan-out payloads are retained (cheap: the buffers are `Arc`-shared)
        // until the ack round completes, so updates can be re-sent to copyset
        // members the owner reports as missed.
        let mut fanout: HashMap<ObjectId, (UpdatePayload, NodeSet)> = HashMap::new();
        let mut expected_acks = 0usize;
        // Outstanding acks per destination: when a destination is confirmed
        // dead mid-round, its share of `expected_acks` is written off.
        let mut outstanding: BTreeMap<NodeId, usize> = BTreeMap::new();
        // Outstanding owner-cooperative fan-out acks, with the bundle
        // retained so a bounced item or a dead owner can fall back to the
        // degraded broadcast. The ack loop must not exit while any entry
        // remains: the fan-out ack names the re-fan destinations whose own
        // acks this release still has to count.
        let mut coop_pending: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        let send_update = |rt: &Arc<Self>,
                           dest: NodeId,
                           items: Vec<UpdateItem>,
                           expected_acks: &mut usize,
                           outstanding: &mut BTreeMap<NodeId, usize>|
         -> Result<()> {
            if dest != rt.node && rt.is_peer_dead(dest) {
                // Confirmed dead after the route was computed: recovery has
                // already pruned it from the copysets; nothing to send.
                return Ok(());
            }
            crate::runtime::proto_trace!(
                rt,
                "flush -> {dest:?}: {:?}",
                items.iter().map(|i| i.object).collect::<Vec<_>>()
            );
            rt.note_update_sent(&items);
            let seq = rt.next_update_seq(dest);
            rt.send(
                dest,
                DsmMsg::Update {
                    items,
                    requester: rt.node,
                    seq,
                    needs_ack: true,
                },
            )?;
            *expected_acks += 1;
            *outstanding.entry(dest).or_default() += 1;
            Ok(())
        };
        // Degraded fallback when a cooperative owner is dead or bounced the
        // bundle: every live peer gets it as an ordinary acknowledged update.
        // Peers without a copy discard it on apply — the cost of not running
        // a determination round inside the ack loop, whose wait may only
        // observe update acks.
        let broadcast_degraded = |rt: &Arc<Self>,
                                  items: Vec<UpdateItem>,
                                  expected_acks: &mut usize,
                                  outstanding: &mut BTreeMap<NodeId, usize>|
         -> Result<()> {
            for peer in rt.live_peers().iter() {
                send_update(rt, peer, items.clone(), expected_acks, outstanding)?;
            }
            Ok(())
        };
        for (entry, pre_route) in entries.into_iter().zip(&routes) {
            let object = entry.object;
            let (payload, route) = self.encode_entry(entry)?;
            if let Some(payload) = &payload {
                if let Some(owner) = route.coop_owner {
                    coop.entry(owner).or_default().push(UpdateItem {
                        object,
                        payload: payload.clone(),
                    });
                } else {
                    let mut any_immediate = false;
                    for dest in route.destinations.iter() {
                        let item = UpdateItem {
                            object,
                            payload: payload.clone(),
                        };
                        match classify(mode, &route, dest) {
                            Dispatch::Immediate => {
                                any_immediate = true;
                                pending.entry(dest).or_default().push(item);
                            }
                            Dispatch::Relay => {
                                if bypass(self, dest, item.payload.model_bytes()) {
                                    // Too big to pay the double transit:
                                    // sent directly (via the catch-all
                                    // below), acknowledged like any other
                                    // sequenced update.
                                    any_immediate = true;
                                    pending.entry(dest).or_default().push(item);
                                } else {
                                    relay.entry(dest).or_default().push(item);
                                }
                            }
                            Dispatch::Buffer => buffered.entry(dest).or_default().push(item),
                        }
                    }
                    if route.fans_out && any_immediate {
                        fanout.insert(object, (payload.clone(), route.destinations.clone()));
                    }
                }
            }
            // Drain the pre-pass counts with the *pre-pass* route, so a
            // directory change between the two reads cannot strand a count.
            if pre_route.coop_owner.is_some() {
                continue;
            }
            for dest in pre_route.destinations.iter() {
                if classify(mode, pre_route, dest) != Dispatch::Immediate {
                    continue;
                }
                let rem = remaining
                    .get_mut(&dest)
                    .expect("route destinations are all counted");
                *rem -= 1;
                if *rem == 0 {
                    if let Some(items) = pending.remove(&dest) {
                        send_update(self, dest, items, &mut expected_acks, &mut outstanding)?;
                    }
                }
            }
        }
        // Catch-all: a destination `encode_entry` routed to but the pre-pass
        // did not (the directory changed between the two reads — e.g. the
        // service thread recorded a new replica while we flushed) still gets
        // its update here.
        for (dest, items) in std::mem::take(&mut pending) {
            if !items.is_empty() {
                send_update(self, dest, items, &mut expected_acks, &mut outstanding)?;
            }
        }
        // Owner-cooperative fan-out: each non-owned bundle ships whole to
        // its owner, which installs it and re-fans to the members of its
        // authoritative copyset — no determination round, no heal round.
        // The origin counts one `RelayFanoutAck` per bundle plus one
        // `UpdateAck` per re-fan destination the owner reports.
        for (owner, items) in coop {
            debug_assert_ne!(owner, self.node, "coop routes never point home");
            if self.is_peer_dead(owner) {
                broadcast_degraded(self, items, &mut expected_acks, &mut outstanding)?;
                continue;
            }
            crate::runtime::proto_trace!(
                self,
                "coop relay -> {owner:?}: {:?}",
                items.iter().map(|i| i.object).collect::<Vec<_>>()
            );
            self.note_update_sent(&items);
            let seq = self.next_update_seq(owner);
            self.send(
                owner,
                DsmMsg::RelayFanout {
                    items: items.clone(),
                    origin: self.node,
                    seq,
                },
            )?;
            expected_acks += 1;
            *outstanding.entry(owner).or_default() += 1;
            coop_pending.insert(owner, items);
        }
        // Coalesced items go back to the outbox; they are delivered by the
        // next transmission to their destination or at the window close.
        if !buffered.is_empty() {
            bump(&self.stats.flushes_coalesced);
            let mut outbox = self.outbox.lock();
            for (dest, items) in buffered {
                crate::runtime::proto_trace!(
                    self,
                    "coalesce -> {dest:?}: {:?}",
                    items.iter().map(|i| i.object).collect::<Vec<_>>()
                );
                outbox.buffer(dest, items);
            }
        }
        // Relayed bundles are returned to the caller, which counts,
        // sequences, and attaches them (the barrier arrive / lock grant
        // send sites).
        if crate::runtime::proto_trace_enabled() {
            for (dest, items) in &relay {
                crate::runtime::proto_trace!(
                    self,
                    "relay -> {dest:?}: {:?}",
                    items.iter().map(|i| i.object).collect::<Vec<_>>()
                );
            }
        }

        // Ack round (conservative release consistency: updates are performed
        // at the release). Owners piggyback their authoritative recorded
        // copysets on the ack; any member they know of that this flush did
        // not reach — a replica whose fetch was served *after* our copyset
        // query was answered — gets the update re-sent now, and the release
        // completes only once those re-sends are acknowledged too. Re-sends
        // travel on this node's own lanes, so they can never overtake (or be
        // overtaken by) this node's later flushes.
        let mut acks = 0usize;
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        while acks < expected_acks || !coop_pending.is_empty() {
            let (env, reply) =
                match self.wait_reply_or_dead(crate::runtime::WaitOp::UpdateAcks, &mut handled) {
                    Ok(reply) => reply,
                    Err(MuninError::PeerDied(n)) => {
                        // A dead destination's acks will never arrive: write
                        // off everything still outstanding towards it. Its
                        // copies are unreachable, which is the post-crash
                        // equivalent of "update performed".
                        let lost = outstanding.remove(&n).unwrap_or(0);
                        expected_acks -= lost;
                        if let Some(items) = coop_pending.remove(&n) {
                            // A cooperative owner died before acking. It may
                            // or may not have re-fanned already; the degraded
                            // broadcast re-sends on this node's own lanes, so
                            // every receiver's stream check drops whichever
                            // copy arrives second. (Re-fan acks already in
                            // flight from before the crash are absorbed by
                            // this loop's count — death confirmation takes a
                            // full detection window, far longer than any
                            // delivery.)
                            broadcast_degraded(self, items, &mut expected_acks, &mut outstanding)?;
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                };
            match reply {
                DsmMsg::RelayFanoutAck { refanned, rejected } => {
                    acks += 1;
                    if let Some(o) = outstanding.get_mut(&env.src) {
                        *o = o.saturating_sub(1);
                    }
                    let Some(items) = coop_pending.remove(&env.src) else {
                        // Duplicate ack for an already-settled bundle (the
                        // stale-sequence path at the owner); counted like a
                        // duplicate update ack.
                        continue;
                    };
                    // Each re-fan destination acknowledges this node
                    // directly; their acks join this release's count.
                    expected_acks += refanned.len();
                    for dest in &refanned {
                        *outstanding.entry(*dest).or_default() += 1;
                    }
                    if !rejected.is_empty() {
                        // The ownership hint was stale: point it back at the
                        // home node (first link of the probable-owner chain)
                        // and fall back to the degraded broadcast for the
                        // bounced objects.
                        let rejected: BTreeSet<ObjectId> = rejected.into_iter().collect();
                        {
                            let mut dir = self.dir.lock();
                            for o in &rejected {
                                let e = dir.entry_mut(*o);
                                if !e.state.owned {
                                    e.probable_owner = e.home;
                                }
                            }
                        }
                        let bounced: Vec<UpdateItem> = items
                            .into_iter()
                            .filter(|i| rejected.contains(&i.object))
                            .collect();
                        if !bounced.is_empty() {
                            broadcast_degraded(
                                self,
                                bounced,
                                &mut expected_acks,
                                &mut outstanding,
                            )?;
                        }
                    }
                }
                DsmMsg::UpdateAck { owned_copysets, .. } => {
                    acks += 1;
                    if let Some(o) = outstanding.get_mut(&env.src) {
                        *o = o.saturating_sub(1);
                    }
                    // Batch the heals per missed member, preserving the
                    // normal flush path's one-Update-per-destination shape:
                    // an owner reporting k objects that all missed the same
                    // late-fetching member costs one message, not k.
                    let mut heal: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
                    for (object, owner_set) in owned_copysets {
                        let Some((payload, sent)) = fanout.get_mut(&object) else {
                            continue;
                        };
                        let missed: Vec<NodeId> = owner_set
                            .iter(self.nodes, Some(self.node))
                            .filter(|m| !sent.contains(*m))
                            .collect();
                        if missed.is_empty() {
                            continue;
                        }
                        // Remember the healed members for future flushes of
                        // this object (mirrors the owner-side serve-record
                        // merge).
                        {
                            let mut dir = self.dir.lock();
                            let e = dir.entry_mut(object);
                            e.copyset = e.copyset.union(&owner_set);
                        }
                        for m in missed {
                            crate::runtime::proto_trace!(
                                self,
                                "heal {object:?} -> {m:?} (owner-reported member missed at determination)"
                            );
                            add(&self.stats.updates_healed, 1);
                            sent.insert(m);
                            heal.entry(m).or_default().push(UpdateItem {
                                object,
                                payload: payload.clone(),
                            });
                        }
                    }
                    for (member, items) in heal {
                        send_update(self, member, items, &mut expected_acks, &mut outstanding)?;
                    }
                }
                other => {
                    return Err(MuninError::ProtocolViolation(match other {
                        DsmMsg::ObjectData { .. } => "unexpected ObjectData during flush",
                        _ => "unexpected reply while waiting for update acks",
                    }))
                }
            }
        }
        Ok(relay)
    }

    /// Transmits any coalesced outbox items as acknowledged updates. Called
    /// when the coalescing window closes: at an acquire (the issue's
    /// "no acquire intervened" rule) and when a worker finishes, so no
    /// buffered change can outlive the run. Runs on the user thread (it
    /// blocks for the acks).
    pub(crate) fn close_coalescing_window(self: &Arc<Self>) -> Result<()> {
        let pending = self.outbox.lock().drain_pending();
        if pending.is_empty() {
            return Ok(());
        }
        let mut expected_acks = 0usize;
        let mut outstanding: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (dest, items) in pending {
            if dest != self.node && self.is_peer_dead(dest) {
                continue;
            }
            crate::runtime::proto_trace!(
                self,
                "window close -> {dest:?}: {:?}",
                items.iter().map(|i| i.object).collect::<Vec<_>>()
            );
            self.note_update_sent(&items);
            let seq = self.next_update_seq(dest);
            self.send(
                dest,
                DsmMsg::Update {
                    items,
                    requester: self.node,
                    seq,
                    needs_ack: true,
                },
            )?;
            expected_acks += 1;
            *outstanding.entry(dest).or_default() += 1;
        }
        let mut acks = 0usize;
        let mut handled = crate::nodeset::NodeSet::EMPTY;
        while acks < expected_acks {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::WindowAcks, &mut handled) {
                // Only owner-flushed items are ever coalesced, so the acks
                // carry no copysets this node would need to heal against.
                Ok((env, DsmMsg::UpdateAck { .. })) => {
                    acks += 1;
                    if let Some(o) = outstanding.get_mut(&env.src) {
                        *o = o.saturating_sub(1);
                    }
                }
                Ok(_) => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while closing the coalescing window",
                    ))
                }
                Err(MuninError::PeerDied(n)) => {
                    let lost = outstanding.remove(&n).unwrap_or(0);
                    expected_acks -= lost;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Computes where one flushed object's changes go. The single source of
    /// routing truth, shared by `flush_duq`'s send-scheduling pre-pass and
    /// `encode_entry`, so the two cannot drift.
    fn flush_route(&self, e: &crate::directory::DirEntry) -> FlushRoute {
        if e.params.flushes_to_owner() {
            // `result` objects go only to their owner; nothing to send when
            // this node *is* the owner.
            FlushRoute {
                fans_out: false,
                owned: e.state.owned,
                coop_owner: None,
                destinations: if e.home == self.node {
                    NodeSet::EMPTY
                } else {
                    NodeSet::from_nodes([e.home])
                },
            }
        } else {
            let owned = e.state.owned;
            // Owner-cooperative relay: non-owned fan-out bundles ship whole
            // to the owner, which re-fans from its authoritative copyset. A
            // hint that degenerates to ourselves is repaired toward home;
            // liveness is checked at send time, not here — the failure
            // detector takes its own lock and this runs under the directory
            // lock.
            let coop_owner = if self.cfg.piggyback && !owned && !e.state.copyset_fixed {
                let hint = if e.probable_owner == self.node {
                    e.home
                } else {
                    e.probable_owner
                };
                (hint != self.node).then_some(hint)
            } else {
                None
            };
            FlushRoute {
                fans_out: true,
                owned,
                coop_owner,
                destinations: e.copyset.to_set(self.nodes, Some(self.node)),
            }
        }
    }

    /// Encodes one DUQ entry and decides where its changes go, applying the
    /// per-protocol state transitions (re-protection, invalidation of the
    /// local copy for `result` objects, private-page promotion for stable
    /// objects with an empty copyset).
    ///
    /// The entry is consumed: its twin buffer is returned to the DUQ's pool
    /// once the diff has been encoded. The diff is encoded exactly once into
    /// the node's reusable scratch buffer and shared via `Arc` when the
    /// caller fans it out to several destinations.
    pub(crate) fn encode_entry(
        self: &Arc<Self>,
        entry: DuqEntry,
    ) -> Result<(Option<UpdatePayload>, FlushRoute)> {
        let object = entry.object;
        let range = self.object_range(object);
        let (route, home, stable) = {
            let dir = self.dir.lock();
            let e = dir.entry(object);
            (self.flush_route(e), e.home, e.params.is_stable())
        };

        // Encode: diff against the twin when there is one (straight out of
        // segment memory, no object copy), otherwise the full object image.
        let payload = match entry.twin {
            Some(twin) => {
                let d = self.with_object_mem(object, |cur| {
                    let mut scratch = self.diff_scratch.lock();
                    scratch.encode(cur, &twin)
                });
                self.charge_sys(
                    self.cost
                        .encode((range.len() / 4) as u64, d.run_count() as u64),
                );
                self.duq.lock().recycle_twin(twin);
                if d.is_empty() {
                    None
                } else {
                    Some(UpdatePayload::Diff(d))
                }
            }
            None => Some(UpdatePayload::Full(self.object_bytes(object))),
        };

        let mut dir = self.dir.lock();
        let e = dir.entry_mut(object);
        e.state.dirty = false;

        if !route.fans_out {
            // `result` objects: send only to the owner, then invalidate the
            // local copy ("Fl" and the description of Matrix Multiply).
            if home == self.node {
                // The owner's own changes are already in place.
                return Ok((None, route_with(route, NodeSet::EMPTY)));
            }
            self.set_entry_rights(e, AccessRights::Invalid);
            e.state.owned = false;
            e.probable_owner = home;
            return Ok((payload, route));
        }

        if route.coop_owner.is_none() && route.destinations.is_empty() && stable {
            // "Any pages that have an empty Copyset and are therefore private
            // are made locally writable, their twins are deleted, and they do
            // not generate further access faults."
            self.set_entry_rights(e, AccessRights::ReadWrite);
            return Ok((None, route_with(route, NodeSet::EMPTY)));
        }
        // Write-shared / producer-consumer: keep the copy, re-write-protect so
        // the next write makes a fresh twin.
        self.set_entry_rights(e, AccessRights::Read);
        if route.coop_owner.is_some() {
            // Owner-cooperative entries ignore the (stale, never-determined)
            // local copyset — the owner decides the fan-out — so neither
            // empty-destination shortcut applies: an empty local copyset
            // proves nothing about remote copies.
            return Ok((payload, route));
        }
        if route.destinations.is_empty() {
            return Ok((None, route));
        }
        Ok((payload, route))
    }

    /// The prototype's copyset determination: broadcast the list of modified
    /// objects to every other node and collect the subsets each holds.
    fn determine_copysets_broadcast(
        self: &Arc<Self>,
        objects: &[ObjectId],
    ) -> Result<HashMap<ObjectId, CopySet>> {
        let dead = self.dead_set();
        let mut pending: Vec<NodeId> = self.live_peers().iter().collect();
        let mut result: HashMap<ObjectId, CopySet> =
            objects.iter().map(|o| (*o, CopySet::EMPTY)).collect();
        if pending.is_empty() {
            return Ok(result);
        }
        add(&self.stats.copyset_queries, 1);
        // One shared allocation for the whole broadcast: every peer's query
        // message clones the `Arc`, not the object list.
        let shared: Arc<[ObjectId]> = Arc::from(objects);
        for peer in &pending {
            add(&self.stats.copyset_query_msgs, 1);
            self.send(
                *peer,
                DsmMsg::CopysetQuery {
                    objects: Arc::clone(&shared),
                    requester: self.node,
                },
            )?;
        }
        // A peer dying mid-round counts as an empty reply: whatever copies
        // it held are unreachable and have been pruned by recovery.
        let mut handled = dead;
        while !pending.is_empty() {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::CopysetReplies, &mut handled) {
                Ok((env, DsmMsg::CopysetReply { have })) => {
                    for o in have {
                        if let Some(cs) = result.get_mut(&o) {
                            cs.insert(env.src);
                        }
                    }
                    pending.retain(|n| *n != env.src);
                }
                Ok(_) => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while determining copysets",
                    ))
                }
                Err(MuninError::PeerDied(n)) => pending.retain(|p| *p != n),
                Err(e) => return Err(e),
            }
        }
        self.charge_sys(self.cost.dir_op());
        Ok(result)
    }

    /// The improved algorithm the paper sketches: the owner of each object
    /// collects copyset information while serving fetches, so the flusher
    /// asks the owner instead of broadcasting. Objects owned locally need no
    /// messages at all.
    fn determine_copysets_owner(
        self: &Arc<Self>,
        objects: &[ObjectId],
    ) -> Result<HashMap<ObjectId, CopySet>> {
        let mut result: HashMap<ObjectId, CopySet> = HashMap::new();
        let mut remote: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        {
            let dir = self.dir.lock();
            for o in objects {
                let e = dir.entry(*o);
                if e.state.owned {
                    result.insert(*o, e.copyset.clone());
                } else {
                    remote.entry(e.probable_owner).or_default().push(*o);
                }
            }
        }
        add(&self.stats.copyset_queries, 1);
        let mut pending: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        for (owner, objs) in remote {
            if owner != self.node && self.is_peer_dead(owner) {
                // The recorded owner is a corpse: no replicas reachable
                // through it. Flush nowhere; the objects are re-homed (or
                // declared lost) by the fetch-side orphan recovery.
                for o in objs {
                    result.insert(o, CopySet::EMPTY);
                }
                continue;
            }
            add(&self.stats.copyset_query_msgs, 1);
            self.send(
                owner,
                DsmMsg::OwnerCopysetQuery {
                    objects: objs.clone(),
                    requester: self.node,
                },
            )?;
            pending.insert(owner, objs);
        }
        let mut handled = self.dead_set();
        while !pending.is_empty() {
            match self.wait_reply_or_dead(crate::runtime::WaitOp::OwnerCopysetReplies, &mut handled)
            {
                Ok((env, DsmMsg::OwnerCopysetReply { copysets })) => {
                    for (o, cs) in copysets {
                        result.insert(o, cs);
                    }
                    pending.remove(&env.src);
                }
                Ok(_) => {
                    return Err(MuninError::ProtocolViolation(
                        "unexpected reply while collecting owner copysets",
                    ))
                }
                Err(MuninError::PeerDied(n)) => {
                    if let Some(objs) = pending.remove(&n) {
                        for o in objs {
                            result.insert(o, CopySet::EMPTY);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.charge_sys(self.cost.dir_op());
        Ok(result)
    }

    /// `Flush()` hint: "advises Munin to flush any buffered writes
    /// immediately rather than waiting for a release." With piggybacking
    /// enabled the owner-flushed updates are coalesced into the outbox
    /// instead: consecutive hint flushes to the same destination merge into
    /// one message, and release consistency still guarantees delivery no
    /// later than the next release.
    pub(crate) fn flush_hint(self: &Arc<Self>) -> Result<()> {
        let mode = if self.cfg.piggyback {
            FlushMode::Coalesce
        } else {
            FlushMode::Immediate
        };
        self.flush_duq_mode(mode).map(|_| ())
    }

    /// `Invalidate()` hint: deletes the local copy of every object of a
    /// variable, propagating pending changes first.
    pub(crate) fn invalidate_hint(self: &Arc<Self>, objects: &[ObjectId]) -> Result<()> {
        // Flush any of the listed objects that are sitting in the DUQ (or
        // coalesced in the outbox) so their changes are not lost, then drop
        // the local copies.
        let any_pending = {
            let duq = self.duq.lock();
            objects.iter().any(|o| duq.contains(*o))
        } || self.outbox.lock().has_pending_object(objects);
        if any_pending {
            self.flush_duq()?;
        }
        let mut dir = self.dir.lock();
        for o in objects {
            let e = dir.entry_mut(*o);
            if e.state.owned && e.home != self.node {
                // Give ownership back to the home node so later fetches can
                // still find the data there.
                e.state.owned = false;
                e.probable_owner = e.home;
            }
            self.set_entry_rights(e, AccessRights::Invalid);
            e.state.dirty = false;
        }
        Ok(())
    }

    /// `PhaseChange()` hint: "purges the accumulated sharing relationship
    /// information", so the next flush re-determines producer-consumer
    /// copysets.
    pub(crate) fn phase_change(self: &Arc<Self>) {
        // Lock order dir → duq, like every other path that holds both (the
        // invalidate handler encodes its flush under the directory lock).
        let mut dir = self.dir.lock();
        let duq = self.duq.lock();
        for idx in 0..dir.len() {
            let e = dir.entry_mut(ObjectId::new(idx as u32));
            if e.params.is_stable() {
                // Clear the "relationship is fixed" bit so the next flush
                // re-determines the copyset. The recorded copyset itself is
                // kept: at the owner it doubles as the record of served
                // fetches that the owner-collected determination relies on.
                e.state.copyset_fixed = false;
                // Pages promoted to locally-writable ("private") must be
                // write-protected again so that writes under the new sharing
                // relationships are detected and propagated.
                if e.state.rights == AccessRights::ReadWrite && !duq.contains(e.object) {
                    self.set_entry_rights(e, AccessRights::Read);
                }
            }
        }
    }

    /// `ChangeAnnotation()` hint: switches the protocol used for a variable's
    /// objects. Pending delayed updates are flushed first so the object is
    /// brought up to date under its old protocol.
    pub(crate) fn change_annotation(
        self: &Arc<Self>,
        objects: &[ObjectId],
        annotation: crate::annotation::SharingAnnotation,
    ) -> Result<()> {
        let any_pending = {
            let duq = self.duq.lock();
            objects.iter().any(|o| duq.contains(*o))
        } || self.outbox.lock().has_pending_object(objects);
        if any_pending {
            self.flush_duq()?;
        }
        let mut dir = self.dir.lock();
        for o in objects {
            let e = dir.entry_mut(*o);
            e.set_annotation(annotation);
            e.state.copyset_fixed = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::SharingAnnotation;
    use crate::config::MuninConfig;
    use crate::segment::SharedDataTable;
    use munin_sim::{CostModel, Network, NodeClock};
    use std::collections::HashSet;

    fn single_node() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        table.declare("pc", SharingAnnotation::ProducerConsumer, 4, 8, false);
        table.declare("res", SharingAnnotation::Result, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(1));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(1, CostModel::fast_test());
        let (sender, _rx) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            1,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            sender,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        rt
    }

    fn obj(rt: &NodeRuntime, name: &str) -> ObjectId {
        rt.table().var_by_name(name).unwrap().objects[0]
    }

    #[test]
    fn flush_on_single_node_clears_duq_and_reprotects() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        rt.flush_duq().unwrap();
        assert!(rt.duq.lock().is_empty());
        // Write-shared copies are re-write-protected after a flush.
        assert_eq!(rt.dir.lock().entry(ws).state.rights, AccessRights::Read);
        assert_eq!(rt.stats().snapshot().duq_flushes, 1);
        assert_eq!(rt.stats().snapshot().duq_objects_flushed, 1);
    }

    #[test]
    fn stable_object_with_empty_copyset_becomes_private() {
        let rt = single_node();
        let pc = obj(&rt, "pc");
        rt.write_fault(pc).unwrap();
        rt.flush_duq().unwrap();
        let dir = rt.dir.lock();
        let e = dir.entry(pc);
        assert!(e.state.copyset_fixed);
        assert_eq!(e.state.rights, AccessRights::ReadWrite);
        drop(dir);
        // A subsequent write does not fault, create a twin, or enqueue.
        let before = rt.stats().snapshot();
        rt.ensure_write(pc).unwrap();
        assert_eq!(rt.stats().snapshot().write_faults, before.write_faults);
        assert!(rt.duq.lock().is_empty());
    }

    #[test]
    fn result_object_at_owner_flushes_locally() {
        let rt = single_node();
        let res = obj(&rt, "res");
        rt.write_fault(res).unwrap();
        rt.install_object_bytes(res, &[1u8; 32]);
        rt.flush_duq().unwrap();
        // The owner keeps its (authoritative) copy.
        assert!(rt.dir.lock().entry(res).state.rights.allows_read());
        assert_eq!(rt.stats().snapshot().updates_sent, 0);
    }

    #[test]
    fn phase_change_clears_fixed_copysets() {
        let rt = single_node();
        let pc = obj(&rt, "pc");
        rt.write_fault(pc).unwrap();
        rt.flush_duq().unwrap();
        assert!(rt.dir.lock().entry(pc).state.copyset_fixed);
        rt.phase_change();
        assert!(!rt.dir.lock().entry(pc).state.copyset_fixed);
    }

    #[test]
    fn change_annotation_switches_protocol() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.change_annotation(&[ws], SharingAnnotation::Conventional)
            .unwrap();
        let dir = rt.dir.lock();
        assert_eq!(dir.entry(ws).annotation, SharingAnnotation::Conventional);
        assert!(dir.entry(ws).params.uses_invalidate());
    }

    #[test]
    fn invalidate_hint_drops_local_copy() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        rt.write_fault(ws).unwrap();
        rt.invalidate_hint(&[ws]).unwrap();
        assert_eq!(rt.dir.lock().entry(ws).state.rights, AccessRights::Invalid);
        assert!(rt.duq.lock().is_empty());
    }

    #[test]
    fn empty_flush_is_cheap_and_counted() {
        let rt = single_node();
        rt.flush_duq().unwrap();
        let snap = rt.stats().snapshot();
        assert_eq!(snap.duq_flushes, 1);
        assert_eq!(snap.duq_objects_flushed, 0);
        assert_eq!(snap.updates_sent, 0);
    }

    /// Builds a runtime on node 0 of a three-node network (the peers are
    /// driven manually) so copysets with several members can be exercised.
    fn three_node_runtime() -> Arc<NodeRuntime> {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (sender, _rx0) = net.endpoint(0, clock.clone()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            sender,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        rt
    }

    /// The flush fan-out guarantee: one DUQ entry is diff-encoded exactly
    /// once, and the per-destination payload clones share that single flat
    /// buffer via `Arc` instead of re-encoding or deep-copying.
    #[test]
    fn encode_entry_shares_one_encoding_across_destinations() {
        let rt = three_node_runtime();
        let ws = obj(&rt, "ws");
        // Take a write fault (creates the twin), modify the object, and give
        // the object a two-member copyset so the flush fans out.
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        {
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.copyset.insert(NodeId::new(2));
        }
        let entry = rt.duq.lock().flush().into_iter().next().unwrap();
        assert!(entry.twin.is_some());
        let (payload, route) = rt.encode_entry(entry).unwrap();
        let destinations = route.destinations;
        assert!(route.fans_out && route.owned);
        assert_eq!(
            destinations,
            NodeSet::from_nodes([NodeId::new(1), NodeId::new(2)])
        );
        let payload = payload.expect("modified object yields a payload");
        let UpdatePayload::Diff(ref d) = payload else {
            panic!("twin-backed entry must encode a diff, not a full image");
        };
        assert_eq!(d.changed_words(), 8);
        // Fan the payload out as flush_duq does and verify every clone
        // shares the same underlying buffer — i.e. exactly one encoding.
        let fanned: Vec<UpdatePayload> = destinations.iter().map(|_| payload.clone()).collect();
        for p in &fanned {
            let UpdatePayload::Diff(c) = p else {
                unreachable!()
            };
            assert!(
                c.shares_buffer(d),
                "per-destination clones must share one encoding"
            );
        }
        // The twin buffer went back to the pool for the next first-write.
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
    }

    /// End-to-end healing: the flusher's determination missed a member, the
    /// owner's ack reports it, and the flusher re-sends the update to the
    /// missed member before completing the release.
    #[test]
    fn flush_heals_members_reported_by_owner_ack() {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let (tx2, rx2) = net.endpoint(2, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        let ws = rt.table().var_by_name("ws").unwrap().objects[0];
        // Node 0 knows only of the replica at N1; N2's copy is "invisible"
        // to its determination (as if N2 fetched after the query round).
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        {
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.state.copyset_fixed = true; // skip the query round
        }
        // Service loop for node 0 (routes acks back to the flushing thread).
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let flusher_rt = Arc::clone(&rt);
        let flusher = std::thread::spawn(move || flusher_rt.flush_duq());
        // Peer 1 ("owner" in the reported sense) acks and reports that N2
        // also holds a copy.
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected update at N1, got {msg:?}");
        };
        assert_eq!(items.len(), 1);
        tx1.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![(ws, CopySet::from_nodes([NodeId::new(1), NodeId::new(2)]))],
            },
        )
        .unwrap();
        // The flusher must now heal N2 with the same payload.
        let (_env, msg) = rx2.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected healing update at N2, got {msg:?}");
        };
        assert_eq!(items[0].object, ws);
        tx2.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![],
            },
        )
        .unwrap();
        flusher.join().unwrap().unwrap();
        assert_eq!(rt.stats().snapshot().updates_healed, 1);
        assert_eq!(rt.stats().snapshot().updates_sent, 2);
        // N2 is remembered for future flushes.
        assert!(rt.dir.lock().entry(ws).copyset.contains(NodeId::new(2)));
        // Shut the service loop down.
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }

    /// Cross-release coalescing: consecutive `Flush()` hints buffer their
    /// owner-flushed updates in the outbox and merge per destination; an
    /// intervening acquire closes the window and transmits the buffered
    /// items (with the normal ack round) before the acquire proceeds.
    #[test]
    fn hint_flushes_coalesce_until_an_acquire_closes_the_window() {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(2).with_piggyback(true));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(2, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            2,
            cfg,
            table,
            vec![NodeId::new(0)], // lock 0 homed here: acquires are local
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        let ws = rt.table().var_by_name("ws").unwrap().objects[0];
        {
            // Pin the copyset so the flush skips the broadcast determination
            // round (no peer runtime is serving queries in this harness).
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.state.copyset_fixed = true;
        }

        // Two hint flushes: both buffer, nothing goes on the wire.
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[1u8; 32]);
        rt.flush_hint().unwrap();
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[2u8; 32]);
        rt.flush_hint().unwrap();
        {
            let snap = rt.stats().snapshot();
            assert_eq!(snap.flushes_coalesced, 2);
            assert_eq!(snap.updates_sent, 0, "coalesced hints send nothing");
        }
        assert!(rt.outbox.lock().has_pending());

        // An acquire invalidates the window: the buffered items are
        // transmitted (one merged message) and acknowledged before the
        // acquire completes.
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let acq_rt = Arc::clone(&rt);
        let acq = std::thread::spawn(move || acq_rt.acquire_lock(crate::sync::LockId(0)));
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected the window-close update, got {msg:?}");
        };
        assert_eq!(items.len(), 2, "both hint flushes merged into one message");
        assert_eq!(items[0].object, ws);
        tx1.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 2,
                owned_copysets: vec![],
            },
        )
        .unwrap();
        acq.join().unwrap().unwrap();
        assert!(rt.sync.lock().lock(crate::sync::LockId(0)).held);
        assert!(!rt.outbox.lock().has_pending());
        assert_eq!(rt.stats().snapshot().updates_sent, 1);
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }

    /// A release flush drains the coalescing buffer too: the buffered hint
    /// items are prepended to the flush's own updates for the same
    /// destination, so nothing is delivered out of write order.
    #[test]
    fn release_flush_carries_coalesced_items_first() {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(2).with_piggyback(true));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(2, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            2,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        let ws = rt.table().var_by_name("ws").unwrap().objects[0];
        {
            // Pin the copyset so the flush skips the broadcast determination
            // round (no peer runtime is serving queries in this harness).
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.copyset.insert(NodeId::new(1));
            e.state.copyset_fixed = true;
        }
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[1u8; 32]);
        rt.flush_hint().unwrap();
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[2u8; 32]);
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let flusher_rt = Arc::clone(&rt);
        let flusher = std::thread::spawn(move || flusher_rt.flush_duq());
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::Update { items, .. } = msg else {
            panic!("expected one merged update, got {msg:?}");
        };
        // Coalesced hint item first, this release's item second.
        assert_eq!(items.len(), 2);
        tx1.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 2,
                owned_copysets: vec![],
            },
        )
        .unwrap();
        flusher.join().unwrap().unwrap();
        assert!(!rt.outbox.lock().has_pending());
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }

    /// Flushing reuses both the twin buffer (via the DUQ pool) and the diff
    /// scratch allocation across flush cycles.
    #[test]
    fn flush_cycle_reuses_twin_and_scratch_allocations() {
        let rt = single_node();
        let ws = obj(&rt, "ws");
        // First cycle warms the pool and the scratch.
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[1u8; 32]);
        rt.flush_duq().unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
        let scratch_cap = rt.diff_scratch.lock().capacity();
        assert!(scratch_cap > 0);
        // Second cycle must not grow either allocation.
        rt.dir.lock().entry_mut(ws).state.rights = AccessRights::Read;
        rt.write_fault(ws).unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 0, "twin taken from pool");
        rt.install_object_bytes(ws, &[2u8; 32]);
        rt.flush_duq().unwrap();
        assert_eq!(rt.duq.lock().pooled_twins(), 1);
        assert_eq!(rt.diff_scratch.lock().capacity(), scratch_cap);
    }

    /// Builds the three-node manual harness used by the owner-cooperative
    /// flush tests: node 0 runs a real runtime (with piggybacking on and a
    /// non-owned `ws` whose owner hint points at N1), nodes 1 and 2 are
    /// driven by hand.
    #[allow(clippy::type_complexity)]
    fn coop_harness() -> (
        Arc<NodeRuntime>,
        Network<DsmMsg>,
        munin_sim::net::Sender<DsmMsg>,
        munin_sim::net::Receiver<DsmMsg>,
        munin_sim::net::Sender<DsmMsg>,
        munin_sim::net::Receiver<DsmMsg>,
        munin_sim::net::Receiver<DsmMsg>,
        ObjectId,
    ) {
        let mut table = SharedDataTable::new(64);
        table.declare("ws", SharingAnnotation::WriteShared, 4, 8, false);
        let table = Arc::new(table);
        let cfg = Arc::new(MuninConfig::fast_test(3).with_piggyback(true));
        let clock = NodeClock::new();
        let mut net: Network<DsmMsg> = Network::new(3, CostModel::fast_test());
        let (tx0, rx0) = net.endpoint(0, clock.clone()).unwrap();
        let (tx1, rx1) = net.endpoint(1, NodeClock::new()).unwrap();
        let (tx2, rx2) = net.endpoint(2, NodeClock::new()).unwrap();
        let rt = NodeRuntime::new(
            NodeId::new(0),
            3,
            cfg,
            table,
            vec![],
            vec![],
            clock,
            Arc::new(CostModel::fast_test()),
            tx0,
        );
        let touched: HashSet<_> = rt.table().objects().iter().map(|o| o.id).collect();
        rt.finish_root_init(&touched);
        let ws = rt.table().var_by_name("ws").unwrap().objects[0];
        rt.write_fault(ws).unwrap();
        rt.install_object_bytes(ws, &[7u8; 32]);
        {
            // Not owned here, owner hint at N1, copyset never determined:
            // exactly the shape that takes the cooperative route.
            let mut dir = rt.dir.lock();
            let e = dir.entry_mut(ws);
            e.state.owned = false;
            e.probable_owner = NodeId::new(1);
            assert!(!e.state.copyset_fixed);
        }
        // rx0 is consumed by the caller's server loop; return it alongside.
        (rt, net, tx1, rx1, tx2, rx2, rx0, ws)
    }

    /// The owner-cooperative path end-to-end from the flusher's side: a
    /// non-owned fan-out bundle ships whole to the owner hint as a
    /// `RelayFanout` (no copyset-determination round), and the release
    /// completes once the owner's fan-out ack plus one `UpdateAck` per
    /// reported re-fan destination have arrived.
    #[test]
    fn flush_ships_non_owned_bundle_to_cooperative_owner() {
        let (rt, net, tx1, rx1, tx2, _rx2, rx0, ws) = coop_harness();
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let flusher_rt = Arc::clone(&rt);
        let flusher = std::thread::spawn(move || flusher_rt.flush_duq());
        // The whole bundle arrives at the owner hint, not at copyset members.
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::RelayFanout { items, origin, seq } = msg else {
            panic!("expected a cooperative fan-out at N1, got {msg:?}");
        };
        assert_eq!(origin, NodeId::new(0));
        assert_eq!(seq, 0, "first slot of the 0->1 update stream");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].object, ws);
        // The owner re-fanned to N2; N2's ack goes straight to the origin.
        tx1.send(
            NodeId::new(0),
            "relay_fanout_ack",
            24,
            DsmMsg::RelayFanoutAck {
                refanned: vec![NodeId::new(2)],
                rejected: vec![],
            },
        )
        .unwrap();
        tx2.send(
            NodeId::new(0),
            "update_ack",
            40,
            DsmMsg::UpdateAck {
                count: 1,
                owned_copysets: vec![],
            },
        )
        .unwrap();
        flusher.join().unwrap().unwrap();
        let snap = rt.stats().snapshot();
        assert_eq!(snap.copyset_queries, 0, "coop entries skip determination");
        assert_eq!(snap.updates_sent, 1, "one bundle, shipped once");
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }

    /// A stale owner hint: the cooperative owner bounces the bundle, the
    /// flusher repairs the hint back to the home node and falls back to the
    /// degraded acknowledged broadcast, so the release still completes with
    /// every live peer having seen the update.
    #[test]
    fn flush_repairs_hint_and_broadcasts_bundle_bounced_by_coop_owner() {
        let (rt, net, tx1, rx1, tx2, rx2, rx0, ws) = coop_harness();
        let server_rt = Arc::clone(&rt);
        let server = std::thread::spawn(move || server_rt.server_loop(rx0));
        let flusher_rt = Arc::clone(&rt);
        let flusher = std::thread::spawn(move || flusher_rt.flush_duq());
        let (_env, msg) = rx1.recv().unwrap();
        let DsmMsg::RelayFanout { .. } = msg else {
            panic!("expected a cooperative fan-out at N1, got {msg:?}");
        };
        // N1 does not own `ws` after all: bounce the whole bundle.
        tx1.send(
            NodeId::new(0),
            "relay_fanout_ack",
            24,
            DsmMsg::RelayFanoutAck {
                refanned: vec![],
                rejected: vec![ws],
            },
        )
        .unwrap();
        // Degraded fallback: both peers get an ordinary acknowledged update.
        for (tx, rx) in [(&tx1, &rx1), (&tx2, &rx2)] {
            let (_env, msg) = rx.recv().unwrap();
            let DsmMsg::Update {
                items, needs_ack, ..
            } = msg
            else {
                panic!("expected a degraded broadcast update, got {msg:?}");
            };
            assert!(needs_ack);
            assert_eq!(items[0].object, ws);
            tx.send(
                NodeId::new(0),
                "update_ack",
                40,
                DsmMsg::UpdateAck {
                    count: 1,
                    owned_copysets: vec![],
                },
            )
            .unwrap();
        }
        flusher.join().unwrap().unwrap();
        // The stale hint now points back at the home node, the first link of
        // the probable-owner chain.
        {
            let dir = rt.dir.lock();
            let e = dir.entry(ws);
            assert_eq!(e.probable_owner, e.home);
        }
        tx1.send(NodeId::new(0), "shutdown", 8, DsmMsg::Shutdown)
            .unwrap();
        server.join().unwrap();
        drop(net);
    }
}
