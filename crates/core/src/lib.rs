//! Munin: a multi-protocol, release-consistent software distributed shared
//! memory system.
//!
//! This crate reproduces the system described in *"Implementation and
//! Performance of Munin"* (Carter, Bennett, Zwaenepoel — SOSP 1991). Munin
//! lets shared-memory parallel programs run on a distributed-memory machine
//! with two distinguishing features:
//!
//! * **Multiple consistency protocols** ([`annotation`]): every shared
//!   variable is annotated with its expected access pattern (`read_only`,
//!   `migratory`, `write_shared`, `producer_consumer`, `reduction`, `result`,
//!   `conventional`); the runtime derives a per-object protocol from the
//!   eight parameter bits of the paper's Table 1.
//! * **Software release consistency** ([`duq`], [`diff`]): writes to objects
//!   whose protocol allows delayed operations are buffered in a delayed
//!   update queue and propagated — as run-length encoded diffs against a
//!   *twin* made at the first write — when the writer releases a lock or
//!   arrives at a barrier.
//!
//! The supporting machinery mirrors the prototype: a per-node data object
//! [`directory`], distributed queue-based locks and owner-collected barriers
//! ([`sync`]), and a per-node runtime ([`runtime`]) split into a user-thread
//! side (fault handling, flushes, synchronization) and a service thread that
//! answers remote requests.
//!
//! Programs are written against [`api::MuninProgram`] / [`api::WorkerCtx`];
//! see the crate examples and the `munin-apps` crate for the paper's Matrix
//! Multiply and SOR programs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotation;
pub mod api;
pub mod config;
pub mod copyset;
pub mod diff;
pub mod directory;
pub mod duq;
pub mod error;
pub mod msg;
pub mod nodeset;
pub mod object;
pub mod obs;
pub mod runtime;
pub mod segment;
pub mod stats;
pub mod sync;

pub use annotation::{render_table1, Param, ProtocolParams, SharingAnnotation};
pub use api::{InitCtx, MuninProgram, MuninReport, Shareable, SharedVar, WorkerCtx};
pub use config::{
    flight_events_from_env, piggyback_from_env, reliability_from_env, trace_out_from_env,
    watchdog_from_env, AccessMode, CopysetStrategy, MuninConfig,
};
pub use error::{MuninError, Result, StallReport};
pub use nodeset::NodeSet;
pub use object::{ObjectId, VarId, DEFAULT_PAGE_SIZE};
pub use obs::{EventKind, LatencyHist, ObsEvent, ObsSnapshot};
pub use stats::MuninStatsSnapshot;
pub use sync::{BarrierId, LockId};
