//! Runtime configuration.

use std::time::Duration;

use munin_sim::{CostModel, EngineConfig};

use crate::annotation::SharingAnnotation;
use crate::object::DEFAULT_PAGE_SIZE;

/// How the copyset of modified objects is determined at a DUQ flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CopysetStrategy {
    /// The prototype's algorithm: "a message indicating which objects have
    /// been modified locally is sent to all other nodes; each node replies
    /// with ... the subset of these objects for which it has a copy."
    /// The paper calls this "somewhat inefficient".
    #[default]
    Broadcast,
    /// The improved algorithm the paper sketches but had not implemented:
    /// "uses the owner node to collect Copyset information" — one query to
    /// each home node instead of a broadcast.
    OwnerCollected,
}

/// How shared accesses with insufficient rights are detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// Explicit software checks against the directory entry's access rights
    /// on every access — the portable default, available on every platform.
    #[default]
    Explicit,
    /// Real virtual-memory protection hardware: each node's shared segment
    /// lives in an `mprotect`-managed region, directory rights are mirrored
    /// into page protections, and insufficient-rights accesses take a
    /// `SIGSEGV` that is routed to the owning node's fault protocol — the
    /// paper's actual mechanism. Requires 64-bit Linux on x86_64 (see
    /// `munin_vm::traps_supported`); behaviourally identical to `Explicit`
    /// (the differential tests in `tests/access_modes.rs` pin this down).
    VmTraps,
}

impl AccessMode {
    /// Whether `VmTraps` is available on this target.
    pub const fn vm_supported() -> bool {
        munin_vm::traps_supported()
    }

    /// Reads `MUNIN_ACCESS_MODE` from the environment: `vm` (or `traps`)
    /// selects [`AccessMode::VmTraps`] where supported, `explicit` (or the
    /// variable being unset) selects [`AccessMode::Explicit`]. An unsupported
    /// platform downgrades `vm` to `Explicit`, so a suite run with
    /// `MUNIN_ACCESS_MODE=vm` still skips cleanly off Linux/x86_64.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to anything other than
    /// `vm`/`traps`/`explicit` — a typo like `vmm` silently running the
    /// explicit checks would defeat a differential VM-mode run.
    pub fn from_env() -> Self {
        Self::parse(
            std::env::var("MUNIN_ACCESS_MODE").ok().as_deref(),
            Self::vm_supported(),
        )
    }

    /// Pure parsing core of [`Self::from_env`], split out so malformed-value
    /// behaviour is unit-testable without mutating the process environment
    /// (tests run in parallel threads that also read these variables).
    fn parse(v: Option<&str>, vm_supported: bool) -> Self {
        match v {
            Some("vm") | Some("traps") => {
                if vm_supported {
                    AccessMode::VmTraps
                } else {
                    AccessMode::Explicit
                }
            }
            Some("explicit") | None => AccessMode::Explicit,
            Some(v) => panic!(
                "invalid MUNIN_ACCESS_MODE={v:?}: expected \"vm\", \"traps\", or \"explicit\""
            ),
        }
    }
}

/// Configuration of a Munin run.
#[derive(Clone, Debug)]
pub struct MuninConfig {
    /// Number of nodes (processors). Each node runs one user (worker)
    /// thread; node 0 is the root.
    pub nodes: usize,
    /// Consistency-unit size in bytes (the prototype uses 8 KB pages).
    pub page_size: usize,
    /// Cost model of the simulated machine.
    pub cost: CostModel,
    /// When set, forces every shared variable to this annotation regardless
    /// of its declaration — used to reproduce the single-protocol comparison
    /// of Table 6.
    pub annotation_override: Option<SharingAnnotation>,
    /// Copyset determination algorithm used at DUQ flushes.
    pub copyset_strategy: CopysetStrategy,
    /// Event-engine configuration (schedule seed, delivery mode, fault
    /// injection). A failing run can be replayed by re-running with the same
    /// seed.
    pub engine: EngineConfig,
    /// How insufficient-rights accesses are detected (explicit software
    /// checks or real VM write traps). Defaults to `MUNIN_ACCESS_MODE` from
    /// the environment.
    pub access_mode: AccessMode,
    /// Whether the carrier/outbox layer may coalesce consecutive flushes and
    /// piggyback queued updates on other protocol traffic (lock grants,
    /// barrier releases, copyset replies, update acks). Defaults to
    /// `MUNIN_PIGGYBACK` from the environment (`on` unless set to `off`/`0`);
    /// `off` preserves the legacy one-message-per-update behaviour exactly.
    pub piggyback: bool,
    /// Whether the reliability layer (per-link message ids, cumulative acks,
    /// retransmission, duplicate suppression) wraps protocol traffic. `None`
    /// (the default) auto-enables it exactly when the engine injects message
    /// loss in virtual-time mode; `Some(_)` forces it either way. Defaults to
    /// `MUNIN_RELIABILITY` from the environment (`on`/`off`; unset = auto).
    pub reliability: Option<bool>,
    /// Stall-watchdog window: when a blocked protocol operation (fetch, lock
    /// acquire, barrier, shutdown wait) sees no reply for this long, the
    /// runtime raises a structured [`StallReport`](crate::StallReport)
    /// instead of hanging. Defaults to `MUNIN_WATCHDOG` seconds from the
    /// environment, else 60 s.
    pub watchdog: Duration,
    /// Base wall-clock pacing of the reliability layer's retransmit timer;
    /// an unacked message is retransmitted after `pacing << attempts`
    /// (exponential backoff, capped). Tests drop this to ~1 ms so loss runs
    /// converge quickly.
    pub retransmit_pacing: Duration,
    /// Per-node flight-recorder capacity in events (the newest are kept;
    /// `0` disables event capture — the wait histograms stay on either
    /// way). Defaults to `MUNIN_FLIGHT_EVENTS` from the environment, else
    /// 256. Raised to at least [`TRACE_FLIGHT_EVENTS`] when `trace_out` is
    /// set so exported traces cover whole runs.
    pub flight_events: usize,
    /// When set, the run writes a Chrome-trace-event/Perfetto JSON file of
    /// every node's flight recorder to this path. Defaults to
    /// `MUNIN_TRACE_OUT` from the environment.
    pub trace_out: Option<String>,
    /// Failure-detection window (wall clock): a peer quiet for more than
    /// half of it is marked suspect, quiet for the whole of it is confirmed
    /// dead and degraded-mode recovery runs. `None` (the default) enables
    /// detection with [`DEFAULT_DETECT`] exactly when the engine's fault
    /// plan injects a crash, and disables it otherwise — so crash-free runs
    /// send no heartbeats and their delivery schedules stay byte-identical.
    /// Defaults to `MUNIN_DETECT` seconds (decimal) from the environment.
    pub detect: Option<Duration>,
    /// Largest update payload (modelled bytes) that may ride a barrier-relay
    /// carrier through the barrier owner. Relayed payloads transit the wire
    /// twice (flusher → owner → destination), so big payloads above this
    /// threshold are dispatched direct-to-destination as ordinary sequenced
    /// updates instead. Defaults to `MUNIN_RELAY_MAX_BYTES` from the
    /// environment, else [`DEFAULT_RELAY_MAX_BYTES`]; `0` sends every
    /// payload direct, `u64::MAX` restores the unconditional relay.
    pub relay_max_bytes: u64,
    /// Fan-in of the hierarchical combining-tree barrier used at all-node
    /// barriers. `Some(k)` arranges the nodes in a k-ary tree rooted at the
    /// barrier owner: arrivals combine up the tree (the owner receives at
    /// most `k` messages per episode instead of one per node) and releases
    /// fan back down the same edges. `Some(usize::MAX)` forces the flat
    /// owner-collected barrier. `None` (the default) resolves automatically:
    /// flat below [`TREE_BARRIER_AUTO_NODES`] nodes — so small-cluster
    /// delivery schedules stay byte-identical to earlier releases — and
    /// [`DEFAULT_BARRIER_FANOUT`] at or above it. Defaults to
    /// `MUNIN_BARRIER_FANOUT` from the environment.
    pub barrier_fanout: Option<usize>,
}

/// Reads `MUNIN_PIGGYBACK` from the environment: `on`/`1` (or the variable
/// being unset) enables the carrier layer, `off`/`0` disables it.
///
/// # Panics
///
/// Panics on any other value. The historical parser treated everything but
/// `off`/`0` as on, so `MUNIN_PIGGYBACK=offf` silently enabled the layer a
/// differential run meant to disable.
pub fn piggyback_from_env() -> bool {
    parse_piggyback(std::env::var("MUNIN_PIGGYBACK").ok().as_deref())
}

/// Pure parsing core of [`piggyback_from_env`] (unit-testable without
/// mutating the shared process environment).
fn parse_piggyback(v: Option<&str>) -> bool {
    match v {
        Some("on") | Some("1") | None => true,
        Some("off") | Some("0") => false,
        Some(v) => panic!("invalid MUNIN_PIGGYBACK={v:?}: expected \"on\"/\"1\" or \"off\"/\"0\""),
    }
}

/// Reads `MUNIN_RELIABILITY` from the environment: `on`/`1` forces the
/// reliability layer, `off`/`0` disables it, unset leaves the auto policy
/// (enabled exactly when the engine injects loss).
///
/// # Panics
///
/// Panics on any other value — a misspelt `off` would silently re-enter the
/// auto policy instead of disabling the transport.
pub fn reliability_from_env() -> Option<bool> {
    parse_reliability(std::env::var("MUNIN_RELIABILITY").ok().as_deref())
}

/// Pure parsing core of [`reliability_from_env`].
fn parse_reliability(v: Option<&str>) -> Option<bool> {
    match v {
        Some("on") | Some("1") => Some(true),
        Some("off") | Some("0") => Some(false),
        None => None,
        Some(v) => {
            panic!("invalid MUNIN_RELIABILITY={v:?}: expected \"on\"/\"1\" or \"off\"/\"0\"")
        }
    }
}

/// Reads `MUNIN_RELAY_MAX_BYTES` (largest update payload, in modelled bytes,
/// that may ride a barrier-relay carrier through the owner) from the
/// environment; unset yields [`DEFAULT_RELAY_MAX_BYTES`]. Payloads above the
/// threshold are sent direct-to-destination as ordinary sequenced updates, so
/// they transit the wire once instead of twice.
///
/// # Panics
///
/// Panics when the variable is set but is not a non-negative byte count.
pub fn relay_max_bytes_from_env() -> u64 {
    parse_relay_max_bytes(std::env::var("MUNIN_RELAY_MAX_BYTES").ok().as_deref())
}

/// Pure parsing core of [`relay_max_bytes_from_env`].
fn parse_relay_max_bytes(v: Option<&str>) -> u64 {
    match v {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => panic!(
                "invalid MUNIN_RELAY_MAX_BYTES={v:?}: expected a byte count \
                 (e.g. MUNIN_RELAY_MAX_BYTES=128, 0 to send every payload direct)"
            ),
        },
        None => DEFAULT_RELAY_MAX_BYTES,
    }
}

/// Reads `MUNIN_BARRIER_FANOUT` (combining-tree fan-in for all-node
/// barriers) from the environment: an integer `k >= 2` selects a k-ary tree,
/// `flat` forces the flat owner-collected barrier, unset leaves the auto
/// policy (flat below [`TREE_BARRIER_AUTO_NODES`] nodes, else
/// [`DEFAULT_BARRIER_FANOUT`]).
///
/// # Panics
///
/// Panics on any other value — `k = 0` or `1` does not describe a tree, and
/// a typo silently falling back to the auto policy would invalidate a
/// barrier-topology sweep without a trace.
pub fn barrier_fanout_from_env() -> Option<usize> {
    parse_barrier_fanout(std::env::var("MUNIN_BARRIER_FANOUT").ok().as_deref())
}

/// Pure parsing core of [`barrier_fanout_from_env`].
fn parse_barrier_fanout(v: Option<&str>) -> Option<usize> {
    match v {
        None => None,
        Some("flat") => Some(usize::MAX),
        Some(v) => match v.parse::<usize>() {
            Ok(k) if k >= 2 => Some(k),
            _ => panic!(
                "invalid MUNIN_BARRIER_FANOUT={v:?}: expected an integer fan-in >= 2 \
                 (e.g. MUNIN_BARRIER_FANOUT=8) or \"flat\" to force the flat barrier"
            ),
        },
    }
}

/// Reads `MUNIN_WATCHDOG` (whole seconds) from the environment; unset yields
/// the 60 s default. A malformed value is a configuration error, not a
/// silent fallback: a run that asked for a watchdog and got the default would
/// hang 60 s before reporting a stall the operator expected in 2.
///
/// # Panics
///
/// Panics when the variable is set but is not a whole number of seconds > 0.
pub fn watchdog_from_env() -> Duration {
    match std::env::var("MUNIN_WATCHDOG") {
        Ok(v) => match v.parse::<u64>() {
            Ok(secs) if secs > 0 => Duration::from_secs(secs),
            _ => panic!(
                "invalid MUNIN_WATCHDOG={v:?}: expected whole seconds > 0 (e.g. MUNIN_WATCHDOG=30)"
            ),
        },
        Err(_) => DEFAULT_WATCHDOG,
    }
}

/// Reads `MUNIN_FLIGHT_EVENTS` (per-node flight-recorder capacity) from the
/// environment; unset yields the 256-event default. `0` disables event
/// capture.
///
/// # Panics
///
/// Panics when the variable is set but is not a non-negative event count —
/// a typo silently shrinking forensics capture defeats the point of asking.
pub fn flight_events_from_env() -> usize {
    match std::env::var("MUNIN_FLIGHT_EVENTS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => panic!(
                "invalid MUNIN_FLIGHT_EVENTS={v:?}: expected an event count \
                 (e.g. MUNIN_FLIGHT_EVENTS=4096, 0 to disable)"
            ),
        },
        Err(_) => DEFAULT_FLIGHT_EVENTS,
    }
}

/// Reads `MUNIN_DETECT` (failure-detection window in decimal seconds) from
/// the environment; unset yields `None` (the auto policy: detection runs
/// with [`DEFAULT_DETECT`] exactly when the fault plan injects a crash).
///
/// # Panics
///
/// Panics when the variable is set but is not a positive decimal number of
/// seconds.
pub fn detect_from_env() -> Option<Duration> {
    match std::env::var("MUNIN_DETECT") {
        Ok(v) => match v.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
            _ => panic!(
                "invalid MUNIN_DETECT={v:?}: expected a positive decimal number of seconds \
                 (e.g. MUNIN_DETECT=0.5)"
            ),
        },
        Err(_) => None,
    }
}

/// Reads `MUNIN_TRACE_OUT` (Perfetto trace output path) from the
/// environment; unset or empty yields `None`.
pub fn trace_out_from_env() -> Option<String> {
    std::env::var("MUNIN_TRACE_OUT")
        .ok()
        .filter(|v| !v.is_empty())
}

/// Default stall-watchdog window.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(60);

/// Default per-node flight-recorder capacity (events).
pub const DEFAULT_FLIGHT_EVENTS: usize = 256;

/// Minimum per-node flight-recorder capacity when a trace export is
/// requested: a 256-event ring would wrap long before a run ends, leaving
/// the exported trace a keyhole view with dangling flow arrows.
pub const TRACE_FLIGHT_EVENTS: usize = 65_536;

/// Default wall-clock base pacing for reliability-layer retransmissions.
pub const DEFAULT_RETRANSMIT_PACING: Duration = Duration::from_millis(20);

/// Default failure-detection window, used when the fault plan injects a
/// crash but no explicit `MUNIN_DETECT`/`with_detect` window was given.
pub const DEFAULT_DETECT: Duration = Duration::from_secs(2);

/// Default relay size threshold (modelled payload bytes). Tuned from the
/// `micro_flush`/16-node SOR threshold sweep (`BENCH_msg.json`): at 512
/// bytes the 16-node page-aligned SOR sheds 44% of its messages while
/// total bytes stay within 1.1× of piggyback-off (1.03×) — sub-page diffs
/// ride the relay carriers, page-scale payloads go direct and transit the
/// wire once. Raising the threshold past the page size trades bytes for
/// messages (~62% fewer at 1.44× bytes); lowering it toward 0 keeps bytes
/// at 0.90× but forfeits the relay's share of the message savings.
pub const DEFAULT_RELAY_MAX_BYTES: u64 = 512;

/// Default combining-tree fan-in when the auto policy selects the tree
/// barrier. Eight keeps the owner's per-episode ingress at 8 messages while
/// holding the tree to ⌈log₈ N⌉ hops (2 at 64 nodes, 3 at 256).
pub const DEFAULT_BARRIER_FANOUT: usize = 8;

/// Cluster size at which the auto policy switches all-node barriers from the
/// flat owner-collected protocol to the combining tree. Below this the flat
/// barrier's O(N) owner ingress is cheap and the delivery schedule stays
/// byte-identical to earlier releases (the committed golden digests).
pub const TREE_BARRIER_AUTO_NODES: usize = 32;

impl MuninConfig {
    /// Configuration matching the paper's prototype: 8 KB objects, the
    /// SUN/Ethernet cost model, broadcast copyset determination.
    pub fn paper(nodes: usize) -> Self {
        MuninConfig {
            nodes,
            page_size: DEFAULT_PAGE_SIZE,
            cost: CostModel::sun_ethernet_1991(),
            annotation_override: None,
            copyset_strategy: CopysetStrategy::Broadcast,
            engine: EngineConfig::from_env(),
            access_mode: AccessMode::from_env(),
            piggyback: piggyback_from_env(),
            reliability: reliability_from_env(),
            watchdog: watchdog_from_env(),
            retransmit_pacing: DEFAULT_RETRANSMIT_PACING,
            flight_events: flight_events_from_env(),
            trace_out: trace_out_from_env(),
            detect: detect_from_env(),
            relay_max_bytes: relay_max_bytes_from_env(),
            barrier_fanout: barrier_fanout_from_env(),
        }
    }

    /// Small, fast configuration for tests: tiny pages and a cheap cost
    /// model so protocol behaviour (not simulated waiting) dominates.
    pub fn fast_test(nodes: usize) -> Self {
        MuninConfig {
            nodes,
            page_size: 64,
            cost: CostModel::fast_test(),
            annotation_override: None,
            copyset_strategy: CopysetStrategy::Broadcast,
            engine: EngineConfig::from_env(),
            access_mode: AccessMode::from_env(),
            piggyback: piggyback_from_env(),
            reliability: reliability_from_env(),
            watchdog: watchdog_from_env(),
            retransmit_pacing: DEFAULT_RETRANSMIT_PACING,
            flight_events: flight_events_from_env(),
            trace_out: trace_out_from_env(),
            detect: detect_from_env(),
            relay_max_bytes: relay_max_bytes_from_env(),
            barrier_fanout: barrier_fanout_from_env(),
        }
    }

    /// Sets the consistency-unit size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Forces every shared variable to one annotation (Table 6).
    pub fn with_annotation_override(mut self, annotation: SharingAnnotation) -> Self {
        self.annotation_override = Some(annotation);
        self
    }

    /// Selects the copyset determination algorithm.
    pub fn with_copyset_strategy(mut self, strategy: CopysetStrategy) -> Self {
        self.copyset_strategy = strategy;
        self
    }

    /// Sets the event-engine configuration (schedule seed, fault plan).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the access-detection mode.
    pub fn with_access_mode(mut self, access_mode: AccessMode) -> Self {
        self.access_mode = access_mode;
        self
    }

    /// Enables or disables the carrier/outbox piggyback layer.
    pub fn with_piggyback(mut self, piggyback: bool) -> Self {
        self.piggyback = piggyback;
        self
    }

    /// Forces the reliability layer on or off, overriding the auto policy
    /// (which enables it exactly when the engine injects message loss).
    pub fn with_reliability(mut self, reliability: bool) -> Self {
        self.reliability = Some(reliability);
        self
    }

    /// Sets the stall-watchdog window.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the base wall-clock pacing of the retransmit timer.
    pub fn with_retransmit_pacing(mut self, pacing: Duration) -> Self {
        self.retransmit_pacing = pacing;
        self
    }

    /// Sets the per-node flight-recorder capacity (0 disables events).
    pub fn with_flight_events(mut self, events: usize) -> Self {
        self.flight_events = events;
        self
    }

    /// Requests a Perfetto trace export to `path` at the end of the run.
    pub fn with_trace_out(mut self, path: impl Into<String>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Sets the failure-detection window explicitly (detection then runs
    /// whether or not the fault plan injects a crash).
    pub fn with_detect(mut self, detect: Duration) -> Self {
        self.detect = Some(detect);
        self
    }

    /// Sets the relay size threshold (`0` sends every payload direct,
    /// `u64::MAX` restores the unconditional relay).
    pub fn with_relay_max_bytes(mut self, relay_max_bytes: u64) -> Self {
        self.relay_max_bytes = relay_max_bytes;
        self
    }

    /// Sets the combining-tree barrier fan-in (`usize::MAX` forces the flat
    /// barrier regardless of cluster size).
    pub fn with_barrier_fanout(mut self, fanout: usize) -> Self {
        self.barrier_fanout = Some(fanout);
        self
    }

    /// Effective combining-tree fan-in for all-node barriers: `Some(k)` runs
    /// the k-ary tree, `None` the flat owner-collected barrier. The explicit
    /// setting wins when one was given (`usize::MAX` meaning flat); the auto
    /// policy keeps clusters below [`TREE_BARRIER_AUTO_NODES`] flat — their
    /// delivery schedules stay byte-identical to earlier releases — and runs
    /// [`DEFAULT_BARRIER_FANOUT`] at or above it.
    pub fn effective_barrier_fanout(&self) -> Option<usize> {
        match self.barrier_fanout {
            Some(usize::MAX) => None,
            Some(k) => Some(k),
            None if self.nodes >= TREE_BARRIER_AUTO_NODES => Some(DEFAULT_BARRIER_FANOUT),
            None => None,
        }
    }

    /// Effective failure-detection window: the explicit window when one was
    /// set, else [`DEFAULT_DETECT`] when the engine's fault plan injects a
    /// crash, else `None` (detection off — no heartbeats, no timers, so
    /// crash-free schedules stay byte-identical to earlier releases).
    pub fn detection(&self) -> Option<Duration> {
        match self.detect {
            Some(d) => Some(d),
            None if !self.engine.faults.crash.is_none() => Some(DEFAULT_DETECT),
            None => None,
        }
    }

    /// Effective flight-recorder capacity: the configured capacity, raised
    /// to [`TRACE_FLIGHT_EVENTS`] when a trace export is requested.
    pub fn effective_flight_events(&self) -> usize {
        if self.trace_out.is_some() {
            self.flight_events.max(TRACE_FLIGHT_EVENTS)
        } else {
            self.flight_events
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_8k_pages() {
        let cfg = MuninConfig::paper(16);
        assert_eq!(cfg.page_size, 8192);
        assert_eq!(cfg.nodes, 16);
        assert!(cfg.annotation_override.is_none());
        assert_eq!(cfg.copyset_strategy, CopysetStrategy::Broadcast);
    }

    #[test]
    fn builders_compose() {
        let cfg = MuninConfig::fast_test(4)
            .with_page_size(128)
            .with_annotation_override(SharingAnnotation::Conventional)
            .with_copyset_strategy(CopysetStrategy::OwnerCollected);
        assert_eq!(cfg.page_size, 128);
        assert_eq!(
            cfg.annotation_override,
            Some(SharingAnnotation::Conventional)
        );
        assert_eq!(cfg.copyset_strategy, CopysetStrategy::OwnerCollected);
    }

    #[test]
    fn detection_follows_the_crash_plan_unless_explicit() {
        use munin_sim::{CrashSpec, CrashTrigger};

        let cfg = MuninConfig::fast_test(4);
        assert_eq!(cfg.detection(), None, "no crash plan, no detection");

        let crashy = MuninConfig::fast_test(4).with_engine(EngineConfig {
            faults: munin_sim::FaultPlan::none().with_crash(CrashSpec {
                node: 2,
                trigger: CrashTrigger::VirtTime(1_000),
                until_ns: 0,
            }),
            ..EngineConfig::default()
        });
        assert_eq!(crashy.detection(), Some(DEFAULT_DETECT));

        let explicit = MuninConfig::fast_test(4).with_detect(Duration::from_millis(300));
        assert_eq!(explicit.detection(), Some(Duration::from_millis(300)));
    }

    #[test]
    fn piggyback_parses_strictly() {
        assert!(parse_piggyback(None));
        assert!(parse_piggyback(Some("on")));
        assert!(parse_piggyback(Some("1")));
        assert!(!parse_piggyback(Some("off")));
        assert!(!parse_piggyback(Some("0")));
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_PIGGYBACK=\"offf\"")]
    fn piggyback_rejects_typos_instead_of_enabling() {
        // The historical parser mapped every non-off value to on, so this
        // typo silently enabled the layer a differential run meant to kill.
        parse_piggyback(Some("offf"));
    }

    #[test]
    fn reliability_parses_strictly() {
        assert_eq!(parse_reliability(None), None);
        assert_eq!(parse_reliability(Some("on")), Some(true));
        assert_eq!(parse_reliability(Some("1")), Some(true));
        assert_eq!(parse_reliability(Some("off")), Some(false));
        assert_eq!(parse_reliability(Some("0")), Some(false));
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_RELIABILITY=\"auto\"")]
    fn reliability_rejects_unknown_values() {
        parse_reliability(Some("auto"));
    }

    #[test]
    fn access_mode_parses_strictly_and_downgrades_cleanly() {
        assert_eq!(AccessMode::parse(None, true), AccessMode::Explicit);
        assert_eq!(
            AccessMode::parse(Some("explicit"), true),
            AccessMode::Explicit
        );
        assert_eq!(AccessMode::parse(Some("vm"), true), AccessMode::VmTraps);
        assert_eq!(AccessMode::parse(Some("traps"), true), AccessMode::VmTraps);
        // `vm` on an unsupported platform still skips cleanly to the
        // explicit checks rather than erroring the whole suite.
        assert_eq!(AccessMode::parse(Some("vm"), false), AccessMode::Explicit);
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_ACCESS_MODE=\"hardware\"")]
    fn access_mode_rejects_unknown_values() {
        AccessMode::parse(Some("hardware"), true);
    }

    #[test]
    fn relay_max_bytes_parses_strictly() {
        assert_eq!(parse_relay_max_bytes(None), DEFAULT_RELAY_MAX_BYTES);
        assert_eq!(parse_relay_max_bytes(Some("0")), 0);
        assert_eq!(parse_relay_max_bytes(Some("4096")), 4096);
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_RELAY_MAX_BYTES=\"4k\"")]
    fn relay_max_bytes_rejects_non_numeric_values() {
        parse_relay_max_bytes(Some("4k"));
    }

    #[test]
    fn barrier_fanout_parses_strictly() {
        assert_eq!(parse_barrier_fanout(None), None);
        assert_eq!(parse_barrier_fanout(Some("flat")), Some(usize::MAX));
        assert_eq!(parse_barrier_fanout(Some("2")), Some(2));
        assert_eq!(parse_barrier_fanout(Some("8")), Some(8));
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_BARRIER_FANOUT=\"1\"")]
    fn barrier_fanout_rejects_degenerate_trees() {
        // A fan-in of 1 is a linked list, not a tree; reject it loudly
        // rather than running a barrier that serialises every arrival.
        parse_barrier_fanout(Some("1"));
    }

    #[test]
    #[should_panic(expected = "invalid MUNIN_BARRIER_FANOUT=\"eight\"")]
    fn barrier_fanout_rejects_non_numeric_values() {
        parse_barrier_fanout(Some("eight"));
    }

    #[test]
    fn barrier_fanout_auto_policy_keeps_small_clusters_flat() {
        let mut small = MuninConfig::fast_test(16);
        small.barrier_fanout = None;
        assert_eq!(small.effective_barrier_fanout(), None);

        let mut wide = MuninConfig::fast_test(64);
        wide.barrier_fanout = None;
        assert_eq!(
            wide.effective_barrier_fanout(),
            Some(DEFAULT_BARRIER_FANOUT)
        );

        let forced_flat = MuninConfig::fast_test(64).with_barrier_fanout(usize::MAX);
        assert_eq!(forced_flat.effective_barrier_fanout(), None);

        let forced_tree = MuninConfig::fast_test(8).with_barrier_fanout(4);
        assert_eq!(forced_tree.effective_barrier_fanout(), Some(4));
    }

    #[test]
    fn trace_out_raises_flight_capacity() {
        let cfg = MuninConfig::fast_test(2).with_flight_events(8);
        assert_eq!(cfg.effective_flight_events(), 8);
        let cfg = cfg.with_trace_out("/tmp/trace.json");
        assert_eq!(cfg.effective_flight_events(), TRACE_FLIGHT_EVENTS);
    }
}
