//! Multi-word node bitmaps.
//!
//! The original prototype (and the first nine PRs of this reproduction) used
//! a bare `u64` wherever a set of nodes was needed — copysets, dead-peer
//! bitmaps, barrier exclusions, handled-death cursors. That representation
//! caps the cluster at 64 nodes and, worse, fails *silently* above it
//! (`1u64 << (node % 64)` aliases node 64 onto node 0). [`NodeSet`] removes
//! the ceiling: four inline words cover 256 nodes with no heap traffic, and
//! larger clusters spill to a heap vector transparently.
//!
//! The set is a plain bitmap, so all operations the hot paths need — insert,
//! contains, union, ascending iteration over set bits — stay word-at-a-time
//! and branch-light. Unlike the old `u64` it is not `Copy`; callers that
//! previously copied bitmaps by value now `clone()` explicitly, which keeps
//! accidental O(words) copies visible in the source.

use munin_sim::NodeId;

/// Number of inline words (256 node ids) before the set spills to the heap.
const INLINE_WORDS: usize = 4;

/// A set of node ids, represented as a multi-word bitmap.
///
/// Node ids 0..256 live in four inline words; inserting a larger id
/// transparently moves the set to a heap-allocated vector. Equality ignores
/// representation: an inline set and a heap set with the same members are
/// equal.
#[derive(Clone, Debug)]
pub struct NodeSet {
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    /// Fast path: up to 256 nodes, no allocation.
    Inline([u64; INLINE_WORDS]),
    /// Spill path for clusters above 256 nodes. The vector is never shrunk;
    /// trailing zero words are permitted and ignored by comparisons.
    Heap(Vec<u64>),
}

impl NodeSet {
    /// The empty set (const-constructible, usable in `const` contexts).
    pub const EMPTY: NodeSet = NodeSet {
        repr: Repr::Inline([0; INLINE_WORDS]),
    };

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates the set {0, 1, .., n-1}: every node of an n-node cluster.
    pub fn full(n: usize) -> Self {
        let mut set = Self::EMPTY;
        let words = n / 64;
        for w in 0..words {
            *set.word_mut(w) = u64::MAX;
        }
        let rem = n % 64;
        if rem > 0 {
            *set.word_mut(words) = (1u64 << rem) - 1;
        }
        set
    }

    /// Creates a set containing exactly the given nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut set = Self::EMPTY;
        for n in nodes {
            set.insert(n);
        }
        set
    }

    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(w) => w,
        }
    }

    /// Mutable access to word `w`, growing the representation as needed.
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w >= INLINE_WORDS {
            if let Repr::Inline(inline) = &self.repr {
                let mut v = inline.to_vec();
                v.resize(w + 1, 0);
                self.repr = Repr::Heap(v);
            }
        }
        match &mut self.repr {
            Repr::Inline(words) => &mut words[w],
            Repr::Heap(words) => {
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                &mut words[w]
            }
        }
    }

    /// Adds a node to the set.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.as_usize();
        *self.word_mut(i / 64) |= 1u64 << (i % 64);
    }

    /// Removes a node from the set.
    pub fn remove(&mut self, node: NodeId) {
        let i = node.as_usize();
        let (w, b) = (i / 64, i % 64);
        if w < self.words().len() {
            *self.word_mut(w) &= !(1u64 << b);
        }
    }

    /// Whether the node is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.as_usize();
        let (w, b) = (i / 64, i % 64);
        self.words()
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|w| *w == 0)
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(words) => *words = [0; INLINE_WORDS],
            Repr::Heap(words) => words.iter_mut().for_each(|w| *w = 0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        for (w, word) in self.words().iter().enumerate() {
            if *word != 0 {
                return Some(NodeId::new(w * 64 + word.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Adds every member of `other` to this set.
    pub fn union_with(&mut self, other: &NodeSet) {
        for (w, word) in other.words().iter().enumerate() {
            if *word != 0 {
                *self.word_mut(w) |= word;
            }
        }
    }

    /// Removes every member of `other` from this set.
    pub fn difference_with(&mut self, other: &NodeSet) {
        let len = self.words().len();
        for (w, word) in other.words().iter().enumerate().take(len) {
            if *word != 0 {
                *self.word_mut(w) &= !word;
            }
        }
    }

    /// The smallest member not in `exclude`, if any (word-at-a-time, used by
    /// the death-handling wait loops to find a freshly dead peer).
    pub fn first_not_in(&self, exclude: &NodeSet) -> Option<NodeId> {
        let mask = exclude.words();
        for (w, word) in self.words().iter().enumerate() {
            let fresh = word & !mask.get(w).copied().unwrap_or(0);
            if fresh != 0 {
                return Some(NodeId::new(w * 64 + fresh.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Whether every member of `other` is also a member of this set.
    pub fn is_superset_of(&self, other: &NodeSet) -> bool {
        let mine = self.words();
        other
            .words()
            .iter()
            .enumerate()
            .all(|(w, word)| word & !mine.get(w).copied().unwrap_or(0) == 0)
    }

    /// Number of 64-bit words up to and including the highest set bit — the
    /// minimal bitmap length a wire encoding of the set would need (drives
    /// the modelled size of messages that carry a `NodeSet`).
    pub fn word_span(&self) -> usize {
        self.words()
            .iter()
            .rposition(|w| *w != 0)
            .map_or(0, |w| w + 1)
    }

    /// Iterates the members in ascending node-id order without allocating.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            words: self.words(),
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }
}

impl Default for NodeSet {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|w| *w == 0)
            && b[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for NodeSet {}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> NodeSetIter<'a> {
        self.iter()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self::from_nodes(iter)
    }
}

/// Ascending-order iterator over the members of a [`NodeSet`].
pub struct NodeSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::new(self.word_idx * 64 + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_remove_contains_across_word_boundaries() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        for i in [0, 63, 64, 127, 128, 255] {
            s.insert(n(i));
        }
        for i in [0, 63, 64, 127, 128, 255] {
            assert!(s.contains(n(i)), "missing {i}");
        }
        assert!(!s.contains(n(1)));
        assert!(!s.contains(n(65)));
        assert_eq!(s.count(), 6);
        s.remove(n(64));
        assert!(!s.contains(n(64)));
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn ids_above_256_spill_to_the_heap() {
        let mut s = NodeSet::new();
        s.insert(n(300));
        s.insert(n(1000));
        assert!(s.contains(n(300)));
        assert!(s.contains(n(1000)));
        assert!(!s.contains(n(299)));
        assert_eq!(s.count(), 2);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![n(300), n(1000)],
            "iteration stays ascending after the spill"
        );
        // contains() beyond the stored words is false, not a panic.
        assert!(!s.contains(n(100_000)));
    }

    #[test]
    fn equality_ignores_representation() {
        let mut heap = NodeSet::new();
        heap.insert(n(500));
        heap.remove(n(500));
        heap.insert(n(3));
        let mut inline = NodeSet::new();
        inline.insert(n(3));
        assert_eq!(heap, inline);
        assert_eq!(inline, heap);
        inline.insert(n(4));
        assert_ne!(heap, inline);
    }

    #[test]
    fn full_sets_exactly_the_first_n_bits() {
        for nodes in [1, 2, 63, 64, 65, 128, 256, 300] {
            let s = NodeSet::full(nodes);
            assert_eq!(s.count(), nodes, "full({nodes})");
            assert!(s.contains(n(nodes - 1)));
            assert!(!s.contains(n(nodes)));
            assert_eq!(s.first(), Some(n(0)));
        }
    }

    #[test]
    fn iter_walks_ascending_without_allocating() {
        let s = NodeSet::from_nodes([n(200), n(5), n(64), n(5)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![n(5), n(64), n(200)]);
        assert_eq!(NodeSet::EMPTY.iter().next(), None);
    }

    #[test]
    fn union_and_difference() {
        let mut a = NodeSet::from_nodes([n(1), n(100)]);
        let b = NodeSet::from_nodes([n(2), n(300)]);
        a.union_with(&b);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![n(1), n(2), n(100), n(300)]
        );
        a.difference_with(&NodeSet::from_nodes([n(2), n(100), n(7)]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![n(1), n(300)]);
    }

    #[test]
    fn first_not_in_skips_handled_members() {
        let dead = NodeSet::from_nodes([n(3), n(70), n(200)]);
        let mut handled = NodeSet::new();
        assert_eq!(dead.first_not_in(&handled), Some(n(3)));
        handled.insert(n(3));
        assert_eq!(dead.first_not_in(&handled), Some(n(70)));
        handled.insert(n(70));
        handled.insert(n(200));
        assert_eq!(dead.first_not_in(&handled), None);
    }

    #[test]
    fn superset_and_word_span() {
        let big = NodeSet::from_nodes([n(1), n(70), n(200)]);
        let small = NodeSet::from_nodes([n(1), n(200)]);
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&NodeSet::EMPTY));
        assert!(NodeSet::EMPTY.is_superset_of(&NodeSet::EMPTY));
        // A heap-spilled set with a high tail still compares correctly
        // against an inline one.
        let spilled = NodeSet::from_nodes([n(1), n(500)]);
        assert!(!small.is_superset_of(&spilled));
        assert_eq!(NodeSet::EMPTY.word_span(), 0);
        assert_eq!(NodeSet::from_nodes([n(63)]).word_span(), 1);
        assert_eq!(NodeSet::from_nodes([n(64)]).word_span(), 2);
        assert_eq!(spilled.word_span(), 8);
    }

    #[test]
    fn no_aliasing_at_multiples_of_64() {
        // The historical `1u64 << (node % 64)` wrapped node 64 onto node 0.
        let mut s = NodeSet::new();
        s.insert(n(64));
        assert!(!s.contains(n(0)), "node 64 must not alias node 0");
        s.remove(n(128));
        assert!(s.contains(n(64)), "removing 128 must not clear 64 or 0");
    }
}
