//! The Munin programming interface.
//!
//! "The Munin programming interface is the same as that of conventional
//! shared memory parallel programming systems, except that it requires (i)
//! all shared variable declarations to be annotated with their expected
//! access pattern, and (ii) all synchronization to be visible to the runtime
//! system."
//!
//! A program is described by a [`MuninProgram`]: shared variable declarations
//! (with their sharing annotations), locks, barriers, an optional sequential
//! `user_init` routine run on the root node, and an optional `user_done`
//! routine run on the root after every worker finishes. [`MuninProgram::run`]
//! then spawns one worker per node on the simulated cluster and hands each a
//! [`WorkerCtx`] with the shared-memory access, synchronization, and hint
//! operations of Sections 2.1 and 2.4.
//!
//! # Examples
//!
//! ```
//! use munin_core::{MuninConfig, MuninProgram, SharingAnnotation};
//!
//! let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
//! let counter = prog.declare::<i64>("counter", 1, SharingAnnotation::Migratory);
//! let lock = prog.create_lock("counter_lock");
//! let done = prog.create_barrier("done");
//! let report = prog
//!     .run(move |ctx| {
//!         for _ in 0..5 {
//!             ctx.acquire_lock(lock)?;
//!             let v: i64 = ctx.read(&counter, 0)?;
//!             ctx.write(&counter, 0, v + 1)?;
//!             ctx.release_lock(lock)?;
//!         }
//!         ctx.wait_at_barrier(done)?;
//!         ctx.read(&counter, 0)
//!     })
//!     .unwrap();
//! assert!(report.results.iter().any(|r| *r.as_ref().unwrap() == 10));
//! ```

use std::collections::HashSet;
use std::marker::PhantomData;
use std::sync::Arc;

use munin_sim::{Cluster, CostModel, NodeId, NodeTimes, VirtTime};

use crate::annotation::SharingAnnotation;
use crate::config::MuninConfig;
use crate::error::{MuninError, Result};
use crate::msg::{DsmMsg, ReduceOp};
use crate::object::{ObjectId, VarId};
use crate::obs::ObsSnapshot;
use crate::runtime::NodeRuntime;
use crate::segment::SharedDataTable;
use crate::stats::MuninStatsSnapshot;
use crate::sync::{BarrierId, LockId};

/// Element types that may live in Munin shared memory.
///
/// Elements are stored little-endian in the shared data segment so the
/// word-granularity flat diff of the delayed update queue (see
/// [`crate::diff`] and `DESIGN.md`) is well defined.
pub trait Shareable: Copy + Send + Sync + 'static {
    /// Size of one element in bytes.
    const ELEM_SIZE: usize;
    /// Serializes the element into `out` (exactly `ELEM_SIZE` bytes).
    fn write_le(self, out: &mut [u8]);
    /// Deserializes an element from `buf` (exactly `ELEM_SIZE` bytes).
    fn read_le(buf: &[u8]) -> Self;
}

macro_rules! impl_shareable {
    ($($ty:ty),+) => {
        $(
            impl Shareable for $ty {
                const ELEM_SIZE: usize = std::mem::size_of::<$ty>();

                fn write_le(self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }

                fn read_le(buf: &[u8]) -> Self {
                    <$ty>::from_le_bytes(buf.try_into().expect("element size mismatch"))
                }
            }
        )+
    };
}

impl_shareable!(i32, u32, i64, u64, f32, f64);

/// A typed handle to a shared variable declared in a [`MuninProgram`].
///
/// Handles are plain identifiers (cheap to copy and capture in worker
/// closures); all state lives in the runtime.
pub struct SharedVar<T: Shareable> {
    id: VarId,
    len: usize,
    name: &'static str,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Shareable> Clone for SharedVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Shareable> Copy for SharedVar<T> {}

impl<T: Shareable> SharedVar<T> {
    /// Number of elements in the variable.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the variable has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The untyped variable identifier.
    pub fn id(&self) -> VarId {
        self.id
    }

    fn check_range(&self, index: usize, count: usize) -> Result<()> {
        if index + count > self.len {
            Err(MuninError::OutOfBounds {
                var: self.name,
                index: index + count - 1,
                len: self.len,
            })
        } else {
            Ok(())
        }
    }
}

struct VarDecl {
    name: &'static str,
    annotation: SharingAnnotation,
    elem_size: usize,
    len: usize,
    single_object: bool,
}

type InitFn = dyn Fn(&mut InitCtx<'_>) + Send + Sync;
type DoneFn = dyn Fn(&WorkerCtx<'_>) + Send + Sync;

/// A Munin program description: shared variables, synchronization objects,
/// and the sequential initialization / completion routines.
pub struct MuninProgram {
    cfg: MuninConfig,
    vars: Vec<VarDecl>,
    locks: Vec<&'static str>,
    lock_assoc: Vec<Vec<VarId>>,
    barriers: Vec<(&'static str, Option<usize>)>,
    init: Option<Arc<InitFn>>,
    done: Option<Arc<DoneFn>>,
}

impl MuninProgram {
    /// Creates an empty program under the given configuration.
    pub fn new(cfg: MuninConfig) -> Self {
        MuninProgram {
            cfg,
            vars: Vec::new(),
            locks: Vec::new(),
            lock_assoc: Vec::new(),
            barriers: Vec::new(),
            init: None,
            done: None,
        }
    }

    /// The configuration of this program.
    pub fn config(&self) -> &MuninConfig {
        &self.cfg
    }

    /// Declares a shared variable of `len` elements with the given sharing
    /// annotation (the analogue of `shared <annotation> int x[len]`).
    pub fn declare<T: Shareable>(
        &mut self,
        name: &'static str,
        len: usize,
        annotation: SharingAnnotation,
    ) -> SharedVar<T> {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name,
            annotation,
            elem_size: T::ELEM_SIZE,
            len,
            single_object: false,
        });
        SharedVar {
            id,
            len,
            name,
            _marker: PhantomData,
        }
    }

    /// `SingleObject()` hint: treat the variable as a single object rather
    /// than breaking it into page-sized objects.
    pub fn single_object<T: Shareable>(&mut self, var: &SharedVar<T>) {
        self.vars[var.id.as_usize()].single_object = true;
    }

    /// `CreateLock()`: declares a distributed lock (homed at the root).
    pub fn create_lock(&mut self, name: &'static str) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(name);
        self.lock_assoc.push(Vec::new());
        id
    }

    /// `CreateBarrier()`: declares a barrier in which every node
    /// participates.
    pub fn create_barrier(&mut self, name: &'static str) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push((name, None));
        id
    }

    /// Declares a barrier with an explicit participant count.
    pub fn create_barrier_with_parties(&mut self, name: &'static str, parties: usize) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push((name, Some(parties)));
        id
    }

    /// `AssociateDataAndSynch()`: records that `var` is protected by `lock`,
    /// so its contents are piggybacked on lock transfers.
    pub fn associate_data_and_synch<T: Shareable>(&mut self, lock: LockId, var: &SharedVar<T>) {
        self.lock_assoc[lock.0 as usize].push(var.id);
    }

    /// Registers the sequential `user_init()` routine, run once on the root
    /// node before the workers start.
    pub fn user_init<F>(&mut self, f: F)
    where
        F: Fn(&mut InitCtx<'_>) + Send + Sync + 'static,
    {
        self.init = Some(Arc::new(f));
    }

    /// Registers the sequential `user_done()` routine, run once on the root
    /// node after every worker has finished.
    pub fn user_done<F>(&mut self, f: F)
    where
        F: Fn(&WorkerCtx<'_>) + Send + Sync + 'static,
    {
        self.done = Some(Arc::new(f));
    }

    /// Builds the shared data description table from the declarations.
    fn build_table(&self) -> SharedDataTable {
        let mut table = SharedDataTable::new(self.cfg.page_size);
        for v in &self.vars {
            table.declare(v.name, v.annotation, v.elem_size, v.len, v.single_object);
        }
        table
    }

    /// Runs the program: spawns one worker per node, runs `user_init` on the
    /// root first, executes `worker` everywhere, runs `user_done` on the root
    /// after every worker finishes, and collects a [`MuninReport`].
    ///
    /// The worker closure receives a [`WorkerCtx`] and returns a value (or a
    /// runtime error); per-node results are collected in the report.
    pub fn run<R, F>(&self, worker: F) -> Result<MuninReport<R>>
    where
        R: Send,
        F: Fn(&WorkerCtx<'_>) -> Result<R> + Sync,
    {
        if self.cfg.access_mode == crate::config::AccessMode::VmTraps {
            // Typed failure before any node thread spawns: unsupported
            // platform or a broken trap substrate in this process.
            crate::runtime::vm_traps_preflight()?;
        }
        let nodes = self.cfg.nodes;
        let table = Arc::new(self.build_table());
        let cfg = Arc::new(self.cfg.clone());
        let root = NodeId::new(0);
        let lock_homes = vec![root; self.locks.len()];
        let lock_assoc: Vec<Vec<ObjectId>> = self
            .lock_assoc
            .iter()
            .map(|vars| {
                vars.iter()
                    .flat_map(|v| table.var(*v).objects.clone())
                    .collect()
            })
            .collect();
        let mut barriers: Vec<(NodeId, usize)> = self
            .barriers
            .iter()
            .map(|(_, parties)| (root, parties.unwrap_or(nodes)))
            .collect();
        // Internal start barrier: workers must not begin faulting before the
        // root has finished `user_init`.
        let start_barrier = BarrierId(barriers.len() as u32);
        barriers.push((root, nodes));

        let init = self.init.clone();
        let done = self.done.clone();
        let worker = &worker;

        let cluster: Cluster<DsmMsg> =
            Cluster::new(nodes, self.cfg.cost.clone()).with_engine(self.cfg.engine);
        let report = cluster
            .run(move |ctx| -> NodeOutcome<R> {
                let (node, n, clock, cost, sender, receiver) = ctx.into_parts();
                let rt = NodeRuntime::new(
                    node,
                    n,
                    Arc::clone(&cfg),
                    Arc::clone(&table),
                    lock_homes.clone(),
                    barriers.clone(),
                    clock,
                    cost,
                    sender,
                );
                rt.apply_lock_associations(&lock_assoc);
                let server_rt = Arc::clone(&rt);
                let server = std::thread::spawn(move || server_rt.server_loop(receiver));

                if rt.is_root() {
                    let mut ictx = InitCtx {
                        rt: &rt,
                        table: &table,
                        touched: HashSet::new(),
                    };
                    if let Some(f) = &init {
                        f(&mut ictx);
                    }
                    let touched = ictx.touched;
                    rt.finish_root_init(&touched);
                }

                let wctx = WorkerCtx {
                    rt: Arc::clone(&rt),
                    table: Arc::clone(&table),
                    _marker: std::marker::PhantomData,
                };
                let mut outcome = NodeOutcome {
                    result: Err(MuninError::ProtocolViolation("worker did not run")),
                    stats: Default::default(),
                    obs: Default::default(),
                    root_memory: None,
                };
                // Synchronize the start so no worker faults before the root
                // finished initializing the shared segment.
                let start = rt.wait_at_barrier(start_barrier);
                outcome.result = match start {
                    Ok(()) => worker(&wctx),
                    Err(e) => Err(e),
                };
                // A worker that ends with coalesced outbox items (e.g. a
                // trailing `Flush()` hint with no later release) transmits
                // them now, so no buffered change can outlive the run.
                if outcome.result.is_ok() {
                    if let Err(e) = rt.close_coalescing_window() {
                        outcome.result = Err(e);
                    }
                }

                if rt.is_root() {
                    match rt.wait_workers_done() {
                        Ok(()) => {
                            if let Some(f) = &done {
                                f(&wctx);
                            }
                        }
                        Err(e) => {
                            // A stalled completion wait is a run failure even
                            // when the root's own worker succeeded.
                            if outcome.result.is_ok() {
                                outcome.result = Err(e);
                            }
                        }
                    }
                    outcome.root_memory = Some(rt.memory_snapshot());
                    let _ = rt.broadcast_shutdown();
                } else {
                    let _ = rt.signal_worker_done();
                    if let Err(e) = rt.wait_for_shutdown() {
                        if outcome.result.is_ok() {
                            outcome.result = Err(e);
                        }
                    }
                }
                if outcome.result.is_err() {
                    // After an error the shutdown handshake cannot be
                    // trusted — under injected loss the `Shutdown` messages
                    // themselves may have been dropped (and with the
                    // reliability layer off nothing retransmits them).
                    // Close the inbox so the service thread observes
                    // disconnection and exits instead of wedging the join.
                    rt.abort_service();
                }
                let _ = server.join();
                outcome.stats = rt.stats().snapshot();
                // Both threads have stopped, so this snapshot is the node's
                // complete event and histogram record for the run.
                outcome.obs = rt.obs().snapshot();
                outcome
            })
            .map_err(MuninError::from)?;

        let mut results = Vec::with_capacity(nodes);
        let mut stats = Vec::with_capacity(nodes);
        let mut obs = Vec::with_capacity(nodes);
        let mut root_memory = Vec::new();
        for outcome in report.results {
            results.push(outcome.result);
            stats.push(outcome.stats);
            obs.push(outcome.obs);
            if let Some(mem) = outcome.root_memory {
                root_memory = mem;
            }
        }
        // The watchdog could only attach the stalled node's own event tail
        // when it raised; now that every runtime has stopped, extend each
        // stall report with the forensics of all nodes.
        let tails: Vec<(usize, Vec<String>)> = obs
            .iter()
            .map(|s| (s.node, s.tail(crate::obs::STALL_TAIL_EVENTS)))
            .collect();
        for r in &mut results {
            if let Err(MuninError::Stalled(rep)) = r {
                rep.last_events = tails.clone();
            }
        }
        if let Some(path) = &self.cfg.trace_out {
            // Trace export is best-effort diagnostics: an unwritable path
            // must not turn a successful run into a failure.
            if let Err(e) = crate::obs::perfetto::write_trace_file(path, &obs) {
                eprintln!("munin: failed to write trace to {path}: {e}");
            }
        }
        Ok(MuninReport {
            elapsed: report.elapsed,
            node_times: report.node_times,
            net: report.net,
            engine_stats: report.engine_stats,
            trace_digest: report.trace_digest,
            stats,
            obs,
            results,
            root_memory,
            table: Arc::new(self.build_table()),
        })
    }
}

struct NodeOutcome<R> {
    result: Result<R>,
    stats: MuninStatsSnapshot,
    obs: ObsSnapshot,
    root_memory: Option<Vec<u8>>,
}

/// Context handed to the sequential `user_init()` routine on the root node.
///
/// Initialization writes go directly into the root's copy of the shared data
/// segment (there are no other copies yet), and the runtime records which
/// objects were touched so it can set up the initial access rights.
pub struct InitCtx<'a> {
    rt: &'a Arc<NodeRuntime>,
    table: &'a Arc<SharedDataTable>,
    touched: HashSet<ObjectId>,
}

impl InitCtx<'_> {
    /// Writes one element of a shared variable.
    pub fn write<T: Shareable>(
        &mut self,
        var: &SharedVar<T>,
        index: usize,
        value: T,
    ) -> Result<()> {
        var.check_range(index, 1)?;
        self.write_slice(var, index, &[value])
    }

    /// Writes a slice of elements starting at `offset`.
    pub fn write_slice<T: Shareable>(
        &mut self,
        var: &SharedVar<T>,
        offset: usize,
        values: &[T],
    ) -> Result<()> {
        var.check_range(offset, values.len())?;
        let mut bytes = vec![0u8; values.len() * T::ELEM_SIZE];
        for (i, v) in values.iter().enumerate() {
            v.write_le(&mut bytes[i * T::ELEM_SIZE..(i + 1) * T::ELEM_SIZE]);
        }
        let byte_off = offset * T::ELEM_SIZE;
        for obj in self
            .table
            .objects_in_range(var.id, byte_off, byte_off + bytes.len())
        {
            self.touched.insert(obj);
        }
        let base = self.table.var(var.id).segment_offset;
        self.rt.init_write(base + byte_off, &bytes);
        // Initialization is ordinary sequential computation on the root.
        self.rt.compute(values.len() as u64);
        Ok(())
    }

    /// Number of nodes the program will run on.
    pub fn nodes(&self) -> usize {
        self.rt.nodes()
    }
}

/// Context handed to every worker thread (and to `user_done` on the root).
///
/// All shared-memory access, synchronization, and hint operations go through
/// this context, which makes every access visible to the runtime — the
/// simulated analogue of the virtual-memory protection check.
pub struct WorkerCtx<'a> {
    rt: Arc<NodeRuntime>,
    table: Arc<SharedDataTable>,
    _marker: std::marker::PhantomData<&'a ()>,
}

// Manual constructor to keep the lifetime parameter (tied to the program run)
// without storing references.
impl WorkerCtx<'_> {
    /// Index of this node (0 is the root).
    pub fn node_id(&self) -> usize {
        self.rt.node_id().as_usize()
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.rt.nodes()
    }

    /// Reads one element of a shared variable.
    pub fn read<T: Shareable>(&self, var: &SharedVar<T>, index: usize) -> Result<T> {
        var.check_range(index, 1)?;
        let mut out = vec![T::read_le(&vec![0u8; T::ELEM_SIZE]); 1];
        self.read_slice_into(var, index, &mut out)?;
        Ok(out[0])
    }

    /// Writes one element of a shared variable.
    pub fn write<T: Shareable>(&self, var: &SharedVar<T>, index: usize, value: T) -> Result<()> {
        var.check_range(index, 1)?;
        self.write_slice(var, index, &[value])
    }

    /// Reads `out.len()` elements starting at `offset` into `out`.
    pub fn read_slice_into<T: Shareable>(
        &self,
        var: &SharedVar<T>,
        offset: usize,
        out: &mut [T],
    ) -> Result<()> {
        var.check_range(offset, out.len())?;
        if out.is_empty() {
            return Ok(());
        }
        // Reduction objects are accessed only through Fetch_and_Φ at their
        // fixed owner, never through cached local copies.
        if self.annotation_of(var.id) == SharingAnnotation::Reduction {
            for (i, slot) in out.iter_mut().enumerate() {
                let obj_offset = (offset + i) * T::ELEM_SIZE;
                let (object, within) =
                    self.table
                        .locate(var.id, obj_offset)
                        .ok_or(MuninError::OutOfBounds {
                            var: var.name,
                            index: offset + i,
                            len: var.len,
                        })?;
                let old = self.rt.reduce(object, within, ReduceOp::Read)?;
                *slot = T::read_le(&old[..T::ELEM_SIZE]);
            }
            return Ok(());
        }
        let mut bytes = vec![0u8; out.len() * T::ELEM_SIZE];
        self.rt
            .read_var_bytes(var.id, offset * T::ELEM_SIZE, &mut bytes)?;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = T::read_le(&bytes[i * T::ELEM_SIZE..(i + 1) * T::ELEM_SIZE]);
        }
        Ok(())
    }

    /// Reads `count` elements starting at `offset`.
    pub fn read_slice<T: Shareable>(
        &self,
        var: &SharedVar<T>,
        offset: usize,
        count: usize,
    ) -> Result<Vec<T>> {
        var.check_range(offset, count)?;
        let zero = vec![0u8; T::ELEM_SIZE];
        let mut out = vec![T::read_le(&zero); count];
        self.read_slice_into(var, offset, &mut out)?;
        Ok(out)
    }

    /// Writes a slice of elements starting at `offset`.
    pub fn write_slice<T: Shareable>(
        &self,
        var: &SharedVar<T>,
        offset: usize,
        values: &[T],
    ) -> Result<()> {
        var.check_range(offset, values.len())?;
        if values.is_empty() {
            return Ok(());
        }
        let mut bytes = vec![0u8; values.len() * T::ELEM_SIZE];
        for (i, v) in values.iter().enumerate() {
            v.write_le(&mut bytes[i * T::ELEM_SIZE..(i + 1) * T::ELEM_SIZE]);
        }
        self.rt
            .write_var_bytes(var.id, offset * T::ELEM_SIZE, &bytes)
    }

    /// `AcquireLock()`.
    pub fn acquire_lock(&self, lock: LockId) -> Result<()> {
        self.rt.acquire_lock(lock)
    }

    /// `ReleaseLock()` (a release: flushes the delayed update queue first).
    pub fn release_lock(&self, lock: LockId) -> Result<()> {
        self.rt.release_lock(lock)
    }

    /// `WaitAtBarrier()` (a release followed by an acquire).
    pub fn wait_at_barrier(&self, barrier: BarrierId) -> Result<()> {
        self.rt.wait_at_barrier(barrier)
    }

    /// `Fetch_and_add` on an element of a reduction variable.
    pub fn fetch_and_add_i64(&self, var: &SharedVar<i64>, index: usize, value: i64) -> Result<i64> {
        self.fetch_and(var, index, ReduceOp::AddI64(value))
    }

    /// `Fetch_and_min` on an element of a reduction variable (the paper's
    /// example: the global minimum in a parallel minimum-path algorithm).
    pub fn fetch_and_min_i64(&self, var: &SharedVar<i64>, index: usize, value: i64) -> Result<i64> {
        self.fetch_and(var, index, ReduceOp::MinI64(value))
    }

    /// `Fetch_and_max` on an element of a reduction variable.
    pub fn fetch_and_max_i64(&self, var: &SharedVar<i64>, index: usize, value: i64) -> Result<i64> {
        self.fetch_and(var, index, ReduceOp::MaxI64(value))
    }

    /// `Fetch_and_add` on an element of a floating-point reduction variable.
    pub fn fetch_and_add_f64(&self, var: &SharedVar<f64>, index: usize, value: f64) -> Result<f64> {
        let old = self.fetch_and_raw(var.id, var.name, var.len, index, ReduceOp::AddF64(value))?;
        Ok(f64::from_le_bytes(
            old[..8].try_into().expect("f64 element"),
        ))
    }

    fn fetch_and(&self, var: &SharedVar<i64>, index: usize, op: ReduceOp) -> Result<i64> {
        let old = self.fetch_and_raw(var.id, var.name, var.len, index, op)?;
        Ok(i64::from_le_bytes(
            old[..8].try_into().expect("i64 element"),
        ))
    }

    fn fetch_and_raw(
        &self,
        var: VarId,
        name: &'static str,
        len: usize,
        index: usize,
        op: ReduceOp,
    ) -> Result<Vec<u8>> {
        if index >= len {
            return Err(MuninError::OutOfBounds {
                var: name,
                index,
                len,
            });
        }
        let (object, within) =
            self.table
                .locate(var, index * 8)
                .ok_or(MuninError::OutOfBounds {
                    var: name,
                    index,
                    len,
                })?;
        self.rt.reduce(object, within, op)
    }

    /// Charges `ops` abstract application operations of computation.
    pub fn compute(&self, ops: u64) {
        self.rt.compute(ops);
    }

    // --- hints (Section 2.4) ------------------------------------------------

    /// `Flush()`: push buffered writes out immediately instead of waiting for
    /// the next release.
    pub fn flush(&self) -> Result<()> {
        self.rt.flush_hint()
    }

    /// `Invalidate()`: delete the local copies of a variable's objects
    /// (propagating pending changes first).
    pub fn invalidate(&self, var: VarId) -> Result<()> {
        let objects = self.table.var(var).objects.clone();
        self.rt.invalidate_hint(&objects)
    }

    /// `PhaseChange()`: purge the accumulated producer-consumer sharing
    /// relationships so they are re-determined at the next flush.
    pub fn phase_change(&self) {
        self.rt.phase_change();
    }

    /// `ChangeAnnotation()`: switch the protocol used for a variable.
    pub fn change_annotation<T: Shareable>(
        &self,
        var: &SharedVar<T>,
        annotation: SharingAnnotation,
    ) -> Result<()> {
        let objects = self.table.var(var.id).objects.clone();
        self.rt.change_annotation(&objects, annotation)
    }

    /// `PreAcquire()`: fetch read copies of `count` elements starting at
    /// `offset` in anticipation of future use.
    pub fn pre_acquire<T: Shareable>(
        &self,
        var: &SharedVar<T>,
        offset: usize,
        count: usize,
    ) -> Result<()> {
        var.check_range(offset, count)?;
        let objects = self.table.objects_in_range(
            var.id,
            offset * T::ELEM_SIZE,
            (offset + count) * T::ELEM_SIZE,
        );
        self.rt.pre_acquire(&objects)
    }

    /// Snapshot of this node's runtime statistics.
    pub fn stats(&self) -> MuninStatsSnapshot {
        self.rt.stats().snapshot()
    }

    fn annotation_of(&self, var: VarId) -> SharingAnnotation {
        if let Some(forced) = self.rt.config().annotation_override {
            forced
        } else {
            self.table.var(var).annotation
        }
    }
}

/// The outcome of a Munin program run.
pub struct MuninReport<R> {
    /// Virtual time at which the last node finished (the paper's "Total").
    pub elapsed: VirtTime,
    /// Per-node time accounting (user vs. system split).
    pub node_times: Vec<NodeTimes>,
    /// Network statistics (message and byte counts per class).
    pub net: munin_sim::stats::NetSnapshot,
    /// Engine-level message volume: totals and per-message-kind counts of
    /// every delivery the event engine scheduled (carriers count once, under
    /// the class of the message they frame).
    pub engine_stats: munin_sim::EngineStats,
    /// Digest of the engine's delivery trace, identical across runs with
    /// the same seed and protocol behaviour (the differential observability
    /// tests compare it between recording-on and recording-off runs).
    pub trace_digest: u64,
    /// Per-node Munin runtime statistics.
    pub stats: Vec<MuninStatsSnapshot>,
    /// Per-node observability snapshots: flight-recorder events and
    /// blocking-wait / fault-service latency histograms.
    pub obs: Vec<ObsSnapshot>,
    /// Per-node worker results.
    pub results: Vec<Result<R>>,
    /// Final contents of the root node's shared data segment.
    pub root_memory: Vec<u8>,
    table: Arc<SharedDataTable>,
}

impl<R> MuninReport<R> {
    /// Time accounting on the root node (the node the paper's tables report).
    pub fn root_times(&self) -> NodeTimes {
        self.node_times[0]
    }

    /// Reads the final value of a shared variable out of the root node's
    /// memory. Meaningful for `result` objects (flushed to the root) and any
    /// variable the root holds a current copy of.
    pub fn read_root_slice<T: Shareable>(&self, var: &SharedVar<T>) -> Vec<T> {
        let desc = self.table.var(var.id());
        let base = desc.segment_offset;
        (0..desc.len)
            .map(|i| {
                let off = base + i * T::ELEM_SIZE;
                T::read_le(&self.root_memory[off..off + T::ELEM_SIZE])
            })
            .collect()
    }

    /// Sum of the per-node runtime statistics.
    pub fn stats_total(&self) -> MuninStatsSnapshot {
        self.stats
            .iter()
            .fold(MuninStatsSnapshot::default(), |acc, s| acc.merge(s))
    }

    /// Cluster-wide observability aggregate: every node's wait and
    /// fault-service histograms merged (flight-recorder events stay
    /// per-node and are not included).
    pub fn obs_total(&self) -> ObsSnapshot {
        let mut total = ObsSnapshot::default();
        for s in &self.obs {
            total.merge_hists(s);
        }
        total
    }

    /// The first worker error, if any worker failed.
    pub fn first_error(&self) -> Option<&MuninError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }

    /// Returns the cost model–independent execution time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Convenience constructor for the default (paper) cost model.
pub fn paper_cost_model() -> CostModel {
    CostModel::sun_ethernet_1991()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shareable_round_trips() {
        let mut buf = [0u8; 8];
        42i64.write_le(&mut buf);
        assert_eq!(i64::read_le(&buf), 42);
        let mut buf4 = [0u8; 4];
        (-7i32).write_le(&mut buf4);
        assert_eq!(i32::read_le(&buf4), -7);
        1.5f64.write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), 1.5);
    }

    #[test]
    fn declarations_assign_distinct_ids() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
        let a = prog.declare::<i32>("a", 10, SharingAnnotation::ReadOnly);
        let b = prog.declare::<f64>("b", 4, SharingAnnotation::Result);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.len(), 10);
        assert_eq!(b.name(), "b");
        assert!(!a.is_empty());
    }

    #[test]
    fn out_of_bounds_is_reported_with_context() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
        let a = prog.declare::<i32>("a", 4, SharingAnnotation::WriteShared);
        let err = a.check_range(3, 2).unwrap_err();
        assert!(matches!(err, MuninError::OutOfBounds { var: "a", .. }));
        assert!(a.check_range(0, 4).is_ok());
    }

    #[test]
    fn single_node_program_runs_and_reports() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
        let x = prog.declare::<i32>("x", 8, SharingAnnotation::WriteShared);
        let bar = prog.create_barrier("done");
        prog.user_init(move |init| {
            init.write_slice(&x, 0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        });
        let report = prog
            .run(move |ctx| {
                let v = ctx.read_slice(&x, 0, 8)?;
                let sum: i32 = v.iter().sum();
                ctx.write(&x, 0, sum)?;
                ctx.wait_at_barrier(bar)?;
                Ok(sum)
            })
            .unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(*report.results[0].as_ref().unwrap(), 36);
        assert_eq!(report.read_root_slice(&x)[0], 36);
        assert!(report.elapsed.as_nanos() > 0);
        assert!(report.first_error().is_none());
    }

    #[test]
    fn two_node_read_only_sharing() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
        let input = prog.declare::<i32>("input", 64, SharingAnnotation::ReadOnly);
        let bar = prog.create_barrier("done");
        prog.user_init(move |init| {
            let vals: Vec<i32> = (0..64).collect();
            init.write_slice(&input, 0, &vals).unwrap();
        });
        let report = prog
            .run(move |ctx| {
                let v = ctx.read_slice(&input, 0, 64)?;
                ctx.wait_at_barrier(bar)?;
                Ok(v.iter().map(|x| *x as i64).sum::<i64>())
            })
            .unwrap();
        for r in &report.results {
            assert_eq!(*r.as_ref().unwrap(), (0..64).sum::<i64>());
        }
        // The non-root node must have fetched the data over the network.
        assert!(report.stats[1].objects_fetched > 0);
        assert!(report.net.class("object_fetch").msgs > 0);
    }

    #[test]
    fn write_to_read_only_returns_runtime_error() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(1));
        let input = prog.declare::<i32>("input", 4, SharingAnnotation::ReadOnly);
        let report = prog.run(move |ctx| ctx.write(&input, 0, 1)).unwrap();
        assert!(matches!(
            report.results[0],
            Err(MuninError::ReadOnlyWrite(_))
        ));
        assert_eq!(report.stats_total().runtime_errors, 1);
    }

    #[test]
    fn report_merges_stats() {
        let mut prog = MuninProgram::new(MuninConfig::fast_test(2));
        let x = prog.declare::<i32>("x", 4, SharingAnnotation::ReadOnly);
        prog.user_init(move |init| init.write_slice(&x, 0, &[1, 2, 3, 4]).unwrap());
        let report = prog
            .run(move |ctx| {
                let _ = ctx.read_slice(&x, 0, 4)?;
                Ok(())
            })
            .unwrap();
        let total = report.stats_total();
        assert_eq!(
            total.read_faults,
            report.stats.iter().map(|s| s.read_faults).sum::<u64>()
        );
    }
}
