//! Hand-coded message-passing runtime used as the comparison baseline.
//!
//! The paper evaluates Munin by hand-coding the same applications "on the
//! same hardware using the underlying message passing primitives", taking
//! care that the computational components are identical. This crate provides
//! those primitives on the same simulated substrate (`munin-sim`) and with
//! the same cost model, so the Munin-vs-message-passing comparison of
//! Tables 3–5 is reproduced under controlled conditions.
//!
//! The interface is deliberately minimal: typed `send`/`recv` of tagged
//! integer / float vectors between nodes, plus a barrier collected at the
//! root — exactly what the hand-coded Matrix Multiply and SOR programs need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use munin_sim::{
    Cluster, ClusterReport, CostModel, EngineConfig, Envelope, NodeCtx, NodeId, SimError,
};

/// A message in the hand-coded message-passing programs.
#[derive(Clone, Debug, PartialEq)]
pub enum MpMsg {
    /// A tagged vector of 64-bit integers.
    Ints {
        /// Application-defined tag.
        tag: u32,
        /// Payload.
        data: Vec<i64>,
    },
    /// A tagged vector of 64-bit floats.
    Floats {
        /// Application-defined tag.
        tag: u32,
        /// Payload.
        data: Vec<f64>,
    },
    /// Barrier arrival notification (collected at the root).
    BarrierArrive,
    /// Barrier release broadcast by the root.
    BarrierRelease,
}

impl MpMsg {
    fn class(&self) -> &'static str {
        match self {
            MpMsg::Ints { .. } => "mp_ints",
            MpMsg::Floats { .. } => "mp_floats",
            MpMsg::BarrierArrive => "mp_barrier_arrive",
            MpMsg::BarrierRelease => "mp_barrier_release",
        }
    }

    /// Modelled wire size: a 32-byte header plus the payload. Integer
    /// payloads are modelled as 4 bytes per element to match the `int`
    /// matrices of the paper's programs (the in-memory `i64` representation
    /// is an implementation convenience).
    fn model_bytes(&self) -> u64 {
        32 + match self {
            MpMsg::Ints { data, .. } => 4 * data.len() as u64,
            MpMsg::Floats { data, .. } => 8 * data.len() as u64,
            MpMsg::BarrierArrive | MpMsg::BarrierRelease => 4,
        }
    }
}

/// Per-node context handed to a message-passing worker.
pub struct MpCtx {
    inner: NodeCtx<MpMsg>,
}

impl MpCtx {
    /// This node's index (node 0 is the root).
    pub fn node_id(&self) -> usize {
        self.inner.node_id().as_usize()
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    /// Charges `ops` abstract application operations of computation
    /// (identical to the Munin version's accounting).
    pub fn compute(&self, ops: u64) {
        self.inner.compute(ops);
    }

    /// Sends a message to `dst`.
    pub fn send(&self, dst: usize, msg: MpMsg) -> Result<(), SimError> {
        self.inner
            .sender()
            .send(NodeId::new(dst), msg.class(), msg.model_bytes(), msg)
            .map(|_| ())
    }

    /// Receives the next message (blocking), returning the sender and the
    /// message.
    pub fn recv(&self) -> Result<(usize, MpMsg), SimError> {
        let (env, msg): (Envelope, MpMsg) = self.inner.receiver().recv()?;
        Ok((env.src.as_usize(), msg))
    }

    /// Receives the next integer-vector message, returning `(sender, tag,
    /// data)`.
    pub fn recv_ints(&self) -> Result<(usize, u32, Vec<i64>), SimError> {
        match self.recv()? {
            (src, MpMsg::Ints { tag, data }) => Ok((src, tag, data)),
            _ => Err(SimError::Disconnected),
        }
    }

    /// Simple barrier: workers notify the root; the root releases everyone.
    ///
    /// Unlike Munin's barrier this carries no consistency obligations —
    /// message-passing programs move their data explicitly.
    pub fn barrier(&self) -> Result<(), SimError> {
        let root = 0usize;
        if self.node_id() == root {
            let mut arrived = 1; // the root itself
            while arrived < self.nodes() {
                let (_src, msg) = self.recv()?;
                match msg {
                    MpMsg::BarrierArrive => arrived += 1,
                    _ => return Err(SimError::Disconnected),
                }
            }
            for n in 1..self.nodes() {
                self.send(n, MpMsg::BarrierRelease)?;
            }
            Ok(())
        } else {
            self.send(root, MpMsg::BarrierArrive)?;
            loop {
                let (_src, msg) = self.recv()?;
                if matches!(msg, MpMsg::BarrierRelease) {
                    return Ok(());
                }
            }
        }
    }
}

/// Runs an SPMD message-passing program: one worker closure per node on the
/// simulated cluster, returning the usual cluster report (elapsed virtual
/// time, per-node user/system split, network statistics).
pub fn run_mp_program<R, F>(
    nodes: usize,
    cost: CostModel,
    worker: F,
) -> Result<ClusterReport<R>, SimError>
where
    R: Send,
    F: Fn(&MpCtx) -> R + Sync,
{
    // The baseline models ideal hardware message passing and has no
    // retransmission protocol, so env-injected loss (`MUNIN_LOSS`) is
    // stripped here — it applies to the Munin runtime, which recovers
    // through its reliability layer. Delay/reorder/duplicate injection and
    // the seed still apply.
    let mut engine = EngineConfig::from_env();
    engine.faults.loss_ppm = 0;
    let cluster: Cluster<MpMsg> = Cluster::new(nodes, cost).with_engine(engine);
    cluster.run(|ctx| {
        let mp = MpCtx { inner: ctx };
        worker(&mp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_round_trip_between_nodes() {
        let report = run_mp_program(2, CostModel::fast_test(), |ctx| {
            if ctx.node_id() == 0 {
                ctx.send(
                    1,
                    MpMsg::Ints {
                        tag: 7,
                        data: vec![1, 2, 3],
                    },
                )
                .unwrap();
                0
            } else {
                let (src, tag, data) = ctx.recv_ints().unwrap();
                assert_eq!(src, 0);
                assert_eq!(tag, 7);
                data.iter().sum::<i64>()
            }
        })
        .unwrap();
        assert_eq!(report.results, vec![0, 6]);
    }

    #[test]
    fn barrier_synchronizes_all_nodes() {
        let report = run_mp_program(4, CostModel::fast_test(), |ctx| {
            ctx.compute(10 * (ctx.node_id() as u64 + 1));
            ctx.barrier().unwrap();
            ctx.node_id()
        })
        .unwrap();
        assert_eq!(report.results, vec![0, 1, 2, 3]);
        // The barrier costs 2(N-1) messages.
        assert_eq!(report.net.total.msgs, 6);
    }

    #[test]
    fn message_bytes_scale_with_payload() {
        let small = MpMsg::Floats {
            tag: 0,
            data: vec![0.0; 2],
        };
        let large = MpMsg::Floats {
            tag: 0,
            data: vec![0.0; 100],
        };
        assert!(large.model_bytes() > small.model_bytes());
        assert_eq!(MpMsg::BarrierArrive.model_bytes(), 36);
    }

    #[test]
    fn scatter_gather_pattern() {
        // Root scatters a row to each worker and gathers doubled rows back.
        let report = run_mp_program(3, CostModel::fast_test(), |ctx| {
            if ctx.node_id() == 0 {
                for n in 1..ctx.nodes() {
                    ctx.send(
                        n,
                        MpMsg::Ints {
                            tag: n as u32,
                            data: vec![n as i64; 4],
                        },
                    )
                    .unwrap();
                }
                let mut total = 0i64;
                for _ in 1..ctx.nodes() {
                    let (_src, _tag, data) = ctx.recv_ints().unwrap();
                    total += data.iter().sum::<i64>();
                }
                total
            } else {
                let (_src, tag, data) = ctx.recv_ints().unwrap();
                let doubled: Vec<i64> = data.iter().map(|x| x * 2).collect();
                ctx.send(0, MpMsg::Ints { tag, data: doubled }).unwrap();
                0
            }
        })
        .unwrap();
        // Node 1 contributes 1*2*4 = 8, node 2 contributes 2*2*4 = 16.
        assert_eq!(report.results[0], 24);
    }

    #[test]
    fn mixed_compute_and_communication_advances_time() {
        let report = run_mp_program(2, CostModel::fast_test(), |ctx| {
            if ctx.node_id() == 1 {
                ctx.compute(1000);
                ctx.send(
                    0,
                    MpMsg::Ints {
                        tag: 0,
                        data: vec![1],
                    },
                )
                .unwrap();
            } else {
                let _ = ctx.recv().unwrap();
            }
        })
        .unwrap();
        assert!(report.elapsed.as_nanos() >= 1000 * CostModel::fast_test().compute_op_ns);
    }
}
