//! Real virtual-memory write-fault detection: the mechanism Munin's delayed
//! update queue is built on, implemented with `mmap`/`mprotect` and a
//! `SIGSEGV` handler.
//!
//! The Munin prototype "uses the virtual memory hardware to detect and
//! enqueue changes to objects": shared objects are write-protected, the
//! first write takes a protection fault, the fault handler makes a *twin*
//! copy of the object, removes the protection, and resumes the thread. The
//! simulated runtime in `munin-core` models this with an explicit access
//! check; this crate demonstrates (and measures) the real thing on Linux.
//!
//! # Example
//!
//! ```
//! # #[cfg(all(target_os = "linux", target_pointer_width = "64"))] {
//! use munin_vm::ProtectedRegion;
//!
//! let mut region = ProtectedRegion::new(4).unwrap();
//! region.protect_all().unwrap();
//! // SAFETY: offset 10 is inside the 4-page region mapped above.
//! unsafe { std::ptr::write_volatile(region.base_ptr().add(10), 42u8) };
//! assert_eq!(region.dirty_pages(), vec![0]);
//! // The twin holds the pre-write contents of the page.
//! assert_eq!(region.twin(0).unwrap()[10], 0);
//! # }
//! ```
//!
//! # Limitations
//!
//! The fault handler is installed process-wide for `SIGSEGV`; faults that do
//! not fall inside a registered region are forwarded to the previously
//! installed handler (normally producing the usual crash). Twins are written
//! by the faulting thread inside the signal handler, so a given page must be
//! written by one thread at a time — the same discipline Munin itself
//! requires of multiple writers between synchronization points.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

// The write-trap substrate binds to glibc's 64-bit Linux ABI (matching the
// in-tree libc shim); other platforms get the error type only.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod unix;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub use unix::ProtectedRegion;

/// Error type for the VM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// `mmap` failed.
    Map(i32),
    /// `mprotect` failed.
    Protect(i32),
    /// Installing the signal handler failed.
    Handler(i32),
    /// The global region registry is full.
    TooManyRegions,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Map(e) => write!(f, "mmap failed: errno {e}"),
            VmError::Protect(e) => write!(f, "mprotect failed: errno {e}"),
            VmError::Handler(e) => write!(f, "sigaction failed: errno {e}"),
            VmError::TooManyRegions => write!(f, "too many protected regions registered"),
        }
    }
}

impl std::error::Error for VmError {}
