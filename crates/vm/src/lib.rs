//! Real virtual-memory write-fault detection: the mechanism Munin's delayed
//! update queue is built on, implemented with `mmap`/`mprotect` and a
//! `SIGSEGV` handler.
//!
//! The Munin prototype "uses the virtual memory hardware to detect and
//! enqueue changes to objects": shared objects are write-protected, the
//! first write takes a protection fault, the fault handler makes a *twin*
//! copy of the object, removes the protection, and resumes the thread. The
//! runtime in `munin-core` models this with an explicit access check by
//! default and, on Linux/x86_64, can instead run on this crate's real traps
//! (`AccessMode::VmTraps`): callback-mode regions route each fault — with
//! its address and read/write kind — into the runtime's fault protocol, and
//! [`ProtectedRegion::set_rights`] mirrors the directory's access rights
//! into page protections. The legacy twin-and-unprotect mode below remains
//! for standalone use and measurement.
//!
//! # Example
//!
//! ```
//! # #[cfg(all(target_os = "linux", target_pointer_width = "64"))] {
//! use munin_vm::ProtectedRegion;
//!
//! let mut region = ProtectedRegion::new(4).unwrap();
//! region.protect_all().unwrap();
//! // SAFETY: offset 10 is inside the 4-page region mapped above.
//! unsafe { std::ptr::write_volatile(region.base_ptr().add(10), 42u8) };
//! assert_eq!(region.dirty_pages(), vec![0]);
//! // The twin holds the pre-write contents of the page.
//! assert_eq!(region.twin(0).unwrap()[10], 0);
//! # }
//! ```
//!
//! # Limitations
//!
//! The fault handler is installed process-wide for `SIGSEGV`; faults that do
//! not fall inside a registered region are forwarded to the previously
//! installed handler (normally producing the usual crash). Twins are written
//! by the faulting thread inside the signal handler, so a given page must be
//! written by one thread at a time — the same discipline Munin itself
//! requires of multiple writers between synchronization points.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

// The write-trap substrate binds to glibc's 64-bit Linux ABI (matching the
// in-tree libc shim); other platforms get the error type only.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod unix;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub use unix::{FaultCallback, ProtectedRegion};

/// Per-page access rights, the hardware analogue of a DSM directory's access
/// rights: `None` traps on any access, `Read` traps on writes, `ReadWrite`
/// never traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PageRights {
    /// No access: reads and writes both fault (`PROT_NONE`).
    #[default]
    None,
    /// Read-only: writes fault (`PROT_READ`).
    Read,
    /// Full access: no faults (`PROT_READ | PROT_WRITE`).
    ReadWrite,
}

/// Whether the full trap substrate — including read-vs-write fault decoding
/// and callback-mode regions as used by `munin-core`'s `AccessMode::VmTraps`
/// — is available on this target (64-bit Linux on x86_64 with glibc). The
/// read-vs-write decode reaches into glibc's `ucontext_t` layout at a
/// hard-coded offset; musl lays `ucontext_t` out differently, so non-gnu
/// targets report unsupported and `AccessMode::VmTraps` fails with the clean
/// capability error instead of mis-classifying faults.
pub const fn traps_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        target_arch = "x86_64",
        target_pointer_width = "64",
        target_env = "gnu"
    ))
}

/// Error type for the VM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// `mmap` failed.
    Map(i32),
    /// `mprotect` failed.
    Protect(i32),
    /// Installing the signal handler failed.
    Handler(i32),
    /// The global region registry is full.
    TooManyRegions,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Map(e) => write!(f, "mmap failed: errno {e}"),
            VmError::Protect(e) => write!(f, "mprotect failed: errno {e}"),
            VmError::Handler(e) => write!(f, "sigaction failed: errno {e}"),
            VmError::TooManyRegions => write!(f, "too many protected regions registered"),
        }
    }
}

impl std::error::Error for VmError {}
