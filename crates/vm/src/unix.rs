//! Unix implementation of the write-trap substrate.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Once;

use crate::{PageRights, VmError};

/// Maximum number of simultaneously registered regions. The core runtime
/// creates one region per simulated node, so a parallel test run can hold
/// many clusters' worth at once; 512 covers that with a wide margin while the
/// registry stays a 4 KB static array. Registration fails loudly beyond it.
const MAX_REGIONS: usize = 512;

/// A fault-resolution callback installed with
/// [`ProtectedRegion::with_callback`]. Receives the byte offset of the
/// faulting address within the region and whether the faulting access was a
/// write; returns `true` if the fault was resolved (the faulting instruction
/// is restarted), `false` to fall through to the previously installed
/// handler. Runs on the faulting thread, from signal context — see the
/// crate-level signal-safety notes.
pub type FaultCallback = Box<dyn Fn(usize, bool) -> bool + Send + Sync>;

/// State shared between a [`ProtectedRegion`] and the signal handler.
///
/// The handler only reads `base`, `len`, and `page_size`, copies the faulting
/// page into its twin buffer, sets the dirty flag, and re-enables writes; all
/// of these operations are async-signal-safe (raw memory copies, atomics, and
/// the `mprotect` system call).
struct RegionShared {
    base: usize,
    len: usize,
    page_size: usize,
    /// One pre-allocated twin buffer per page, written only by the faulting
    /// thread from inside the handler. Empty in callback mode.
    twins: Vec<*mut u8>,
    dirty: Vec<AtomicBool>,
    /// When set, faults inside the region are routed to this callback instead
    /// of the built-in twin-and-unprotect behaviour. The callback performs
    /// its own protection transitions (via [`ProtectedRegion::set_rights`]).
    callback: Option<FaultCallback>,
}

// SAFETY: the raw twin pointers refer to heap buffers owned by the region and
// are only written by the thread that takes the fault for the corresponding
// page; the dirty flags are atomics.
unsafe impl Send for RegionShared {}
// SAFETY: see above — shared access is confined to atomics and per-page
// buffers written by a single thread at a time.
unsafe impl Sync for RegionShared {}

/// Global registry consulted by the signal handler. Slots hold raw pointers
/// obtained from `Box::into_raw`; a null pointer marks a free slot.
static REGISTRY: [AtomicPtr<RegionShared>; MAX_REGIONS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_REGIONS];

static INSTALL_HANDLER: Once = Once::new();
static PREVIOUS_HANDLER: AtomicUsize = AtomicUsize::new(0);

/// Decodes whether a SIGSEGV was caused by a write access, from the saved
/// user context.
///
/// On x86_64/Linux/glibc the page-fault error code is saved in the `REG_ERR`
/// slot of `uc_mcontext.gregs`; bit 1 is set for write accesses. The glibc
/// `ucontext_t` layout places `gregs` at byte offset 40 (`uc_flags` 8 +
/// `uc_link` 8 + `stack_t` 24) and `REG_ERR` is greg index 19. That offset is
/// a *glibc* ABI fact — musl lays `ucontext_t` out differently, so the decode
/// is gated on `target_env = "gnu"`: elsewhere the distinction is not decoded
/// and every fault is reported as a write (the legacy twin behaviour only
/// ever sees write faults, and the callback integration in `munin-core` is
/// gated behind `traps_supported`, which is false off x86_64/gnu — those
/// targets get the clean `VmUnavailable` capability error instead of garbage
/// fault classification).
fn fault_is_write(ctx: *mut libc::c_void) -> bool {
    #[cfg(all(target_arch = "x86_64", target_env = "gnu"))]
    {
        if ctx.is_null() {
            return true;
        }
        // SAFETY: the kernel hands a valid `ucontext_t` to SA_SIGINFO
        // handlers; the offset arithmetic matches glibc's x86_64 layout
        // (asserted against published constants, stable for the glibc ABI).
        let err = unsafe { *((ctx as *const u8).add(40 + 19 * 8) as *const u64) };
        err & 0x2 != 0
    }
    #[cfg(not(all(target_arch = "x86_64", target_env = "gnu")))]
    {
        let _ = ctx;
        true
    }
}

/// The process-wide SIGSEGV handler: if the faulting address falls inside a
/// registered region, either route the fault to the region's callback or
/// (legacy mode) make a twin of the page, mark it dirty, unprotect it, and
/// resume; otherwise forward to the previously installed handler.
extern "C" fn segv_handler(sig: libc::c_int, info: *mut libc::siginfo_t, ctx: *mut libc::c_void) {
    // SAFETY: `info` is provided by the kernel for a SA_SIGINFO handler.
    let addr = unsafe { (*info).si_addr() } as usize;
    for slot in &REGISTRY {
        let ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            continue;
        }
        // SAFETY: non-null slots point to live, registered RegionShared
        // blocks; they are only freed after being removed from the registry.
        let region = unsafe { &*ptr };
        if addr < region.base || addr >= region.base + region.len {
            continue;
        }
        if let Some(cb) = &region.callback {
            if cb(addr - region.base, fault_is_write(ctx)) {
                return;
            }
            // Unresolved by the callback: fall through to the previous
            // handler (normally the default crash), which is the loud
            // failure we want for a protocol bug.
            break;
        }
        let page = (addr - region.base) / region.page_size;
        let page_base = region.base + page * region.page_size;
        // SAFETY: the page lies inside the mapped region; the twin buffer was
        // allocated with the page size. The page is currently readable
        // (PROT_READ), so copying from it is permitted.
        unsafe {
            std::ptr::copy_nonoverlapping(
                page_base as *const u8,
                region.twins[page],
                region.page_size,
            );
        }
        region.dirty[page].store(true, Ordering::Release);
        // SAFETY: page_base/page_size describe one page of our own mapping.
        let rc = unsafe {
            libc::mprotect(
                page_base as *mut libc::c_void,
                region.page_size,
                libc::PROT_READ | libc::PROT_WRITE,
            )
        };
        if rc == 0 {
            return;
        }
        break;
    }
    // Not ours (or mprotect failed): forward to the previous handler, or
    // restore the default disposition and let the fault re-raise.
    let prev = PREVIOUS_HANDLER.load(Ordering::Acquire);
    if prev != 0 && prev != libc::SIG_IGN {
        if prev == libc::SIG_DFL {
            // SAFETY: restoring the default disposition for SIGSEGV.
            unsafe { libc::signal(sig, libc::SIG_DFL) };
            return;
        }
        // SAFETY: `prev` was stored from the previously installed sa_sigaction.
        let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
            unsafe { std::mem::transmute(prev) };
        f(sig, info, ctx);
    } else {
        // SAFETY: restoring the default disposition for SIGSEGV.
        unsafe { libc::signal(sig, libc::SIG_DFL) };
    }
}

fn install_handler() -> Result<(), VmError> {
    let mut result = Ok(());
    INSTALL_HANDLER.call_once(|| {
        // SAFETY: zero-initialised sigaction is a valid starting point; we
        // fill in the fields the kernel requires before calling sigaction.
        unsafe {
            let mut action: libc::sigaction = std::mem::zeroed();
            action.sa_sigaction = segv_handler as *const () as usize;
            action.sa_flags = libc::SA_SIGINFO | libc::SA_NODEFER;
            libc::sigemptyset(&mut action.sa_mask);
            let mut old: libc::sigaction = std::mem::zeroed();
            if libc::sigaction(libc::SIGSEGV, &action, &mut old) != 0 {
                result = Err(VmError::Handler(*libc::__errno_location()));
                return;
            }
            PREVIOUS_HANDLER.store(old.sa_sigaction, Ordering::Release);
        }
    });
    result
}

/// A page-aligned, write-protectable memory region with twin-on-first-write
/// semantics — the real-VM counterpart of Munin's DUQ write detection.
pub struct ProtectedRegion {
    shared: *mut RegionShared,
    slot: usize,
    pages: usize,
    /// Owned twin buffers (the raw pointers in `RegionShared` point here).
    twin_storage: Vec<Vec<u8>>,
}

// SAFETY: the raw `shared` pointer refers to a heap block that stays valid
// until Drop and whose cross-thread state (dirty flags) is atomic;
// `set_rights` is a bare syscall and safe to issue concurrently. Access to
// the mapped data pages themselves is the caller's concurrency protocol to
// enforce (same contract as the signal handler's twin writes).
unsafe impl Send for ProtectedRegion {}
// SAFETY: see above — all `&self` methods touch atomics, immutable layout
// metadata, or issue syscalls.
unsafe impl Sync for ProtectedRegion {}

impl ProtectedRegion {
    /// Maps `pages` system pages of zeroed memory and registers them with the
    /// fault handler. The region starts read-write (unprotected).
    pub fn new(pages: usize) -> Result<Self, VmError> {
        Self::build(pages, None)
    }

    /// Maps `pages` system pages of zeroed memory whose faults are resolved
    /// by `callback` instead of the built-in twin-and-unprotect behaviour.
    ///
    /// The callback receives `(region_byte_offset, is_write)` and runs on the
    /// faulting thread from signal context; it must resolve the fault (grant
    /// access via [`ProtectedRegion::set_rights`]) before returning `true`,
    /// or the faulting instruction will trap again. No per-page twins are
    /// allocated in this mode — twinning is the callback's business.
    pub fn with_callback(pages: usize, callback: FaultCallback) -> Result<Self, VmError> {
        Self::build(pages, Some(callback))
    }

    fn build(pages: usize, callback: Option<FaultCallback>) -> Result<Self, VmError> {
        install_handler()?;
        // SAFETY: querying the system page size has no preconditions.
        let page_size = unsafe { libc::sysconf(libc::_SC_PAGESIZE) } as usize;
        let len = pages * page_size;
        // SAFETY: anonymous private mapping with no address hint.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            // SAFETY: reading errno after a failed libc call.
            return Err(VmError::Map(unsafe { *libc::__errno_location() }));
        }
        let twin_pages = if callback.is_some() { 0 } else { pages };
        let mut twin_storage: Vec<Vec<u8>> =
            (0..twin_pages).map(|_| vec![0u8; page_size]).collect();
        let twins: Vec<*mut u8> = twin_storage.iter_mut().map(|t| t.as_mut_ptr()).collect();
        let shared = Box::into_raw(Box::new(RegionShared {
            base: base as usize,
            len,
            page_size,
            twins,
            dirty: (0..pages).map(|_| AtomicBool::new(false)).collect(),
            callback,
        }));
        // Register in a free slot.
        let mut slot = usize::MAX;
        for (i, s) in REGISTRY.iter().enumerate() {
            if s.compare_exchange(
                std::ptr::null_mut(),
                shared,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
            {
                slot = i;
                break;
            }
        }
        if slot == usize::MAX {
            // SAFETY: unmapping the region we just mapped; reclaiming the box.
            unsafe {
                libc::munmap(base, len);
                drop(Box::from_raw(shared));
            }
            return Err(VmError::TooManyRegions);
        }
        Ok(ProtectedRegion {
            shared,
            slot,
            pages,
            twin_storage,
        })
    }

    fn shared(&self) -> &RegionShared {
        // SAFETY: `self.shared` stays valid until Drop.
        unsafe { &*self.shared }
    }

    /// The system page size used by this region.
    pub fn page_size(&self) -> usize {
        self.shared().page_size
    }

    /// The system page size, queryable before any region exists (layout
    /// planning needs it to size the mapping).
    pub fn system_page_size() -> usize {
        // SAFETY: querying the system page size has no preconditions.
        unsafe { libc::sysconf(libc::_SC_PAGESIZE) as usize }
    }

    /// Number of pages in the region.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Base pointer of the mapped region.
    pub fn base_ptr(&self) -> *mut u8 {
        self.shared().base as *mut u8
    }

    /// Sets the protection of `count` pages starting at `first_page` to
    /// `rights` — the full rights ladder the Munin directory needs
    /// (invalid/read/read-write), beyond the write-protect-only cycle of
    /// [`ProtectedRegion::protect_all`]. Async-signal-safe (one `mprotect`
    /// call), so fault callbacks may use it to grant access.
    pub fn set_rights(
        &self,
        first_page: usize,
        count: usize,
        rights: PageRights,
    ) -> Result<(), VmError> {
        let shared = self.shared();
        assert!(first_page + count <= self.pages, "page range out of bounds");
        let prot = match rights {
            PageRights::None => libc::PROT_NONE,
            PageRights::Read => libc::PROT_READ,
            PageRights::ReadWrite => libc::PROT_READ | libc::PROT_WRITE,
        };
        // SAFETY: the range lies inside this region's own mapping.
        let rc = unsafe {
            libc::mprotect(
                (shared.base + first_page * shared.page_size) as *mut libc::c_void,
                count * shared.page_size,
                prot,
            )
        };
        if rc != 0 {
            // SAFETY: reading errno after a failed libc call.
            return Err(VmError::Protect(unsafe { *libc::__errno_location() }));
        }
        Ok(())
    }

    /// Write-protects every page and clears the dirty state, so the next
    /// write to each page traps and produces a fresh twin — what Munin does
    /// after every DUQ flush.
    pub fn protect_all(&mut self) -> Result<(), VmError> {
        let shared = self.shared();
        for d in &shared.dirty {
            d.store(false, Ordering::Release);
        }
        // SAFETY: protecting our own mapping.
        let rc = unsafe {
            libc::mprotect(
                shared.base as *mut libc::c_void,
                shared.len,
                libc::PROT_READ,
            )
        };
        if rc != 0 {
            // SAFETY: reading errno after a failed libc call.
            return Err(VmError::Protect(unsafe { *libc::__errno_location() }));
        }
        Ok(())
    }

    /// Indices of the pages written since the last [`ProtectedRegion::protect_all`].
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.shared()
            .dirty
            .iter()
            .enumerate()
            .filter(|(_, d)| d.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// The twin (pre-write snapshot) of a page, if the page has trapped since
    /// the last protection pass.
    pub fn twin(&self, page: usize) -> Option<&[u8]> {
        if self.shared().dirty[page].load(Ordering::Acquire) {
            Some(&self.twin_storage[page])
        } else {
            None
        }
    }

    /// Current contents of a page.
    pub fn page(&self, page: usize) -> &[u8] {
        let shared = self.shared();
        // SAFETY: the page lies inside the mapping and is at least readable.
        unsafe {
            std::slice::from_raw_parts(
                (shared.base + page * shared.page_size) as *const u8,
                shared.page_size,
            )
        }
    }
}

impl Drop for ProtectedRegion {
    fn drop(&mut self) {
        REGISTRY[self.slot].store(std::ptr::null_mut(), Ordering::Release);
        let shared = self.shared();
        // SAFETY: unmapping the region this struct owns; the registry no
        // longer references it, and signal handlers racing with this drop are
        // prevented by the caller not writing to the region while dropping it.
        unsafe {
            libc::munmap(shared.base as *mut libc::c_void, shared.len);
            drop(Box::from_raw(self.shared));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_trap_creates_twin_and_dirty_bit() {
        let mut region = ProtectedRegion::new(4).unwrap();
        // Pre-fill page 2 with a recognizable pattern while writable.
        // SAFETY: offsets lie inside the mapping.
        unsafe {
            for i in 0..region.page_size() {
                std::ptr::write_volatile(region.base_ptr().add(2 * region.page_size() + i), 0xAB);
            }
        }
        region.protect_all().unwrap();
        assert!(region.dirty_pages().is_empty());
        // SAFETY: writing one byte inside page 2 of the mapping.
        unsafe {
            std::ptr::write_volatile(region.base_ptr().add(2 * region.page_size() + 5), 0x11);
        }
        assert_eq!(region.dirty_pages(), vec![2]);
        // The twin preserves the pre-write contents; the page has the new byte.
        assert_eq!(region.twin(2).unwrap()[5], 0xAB);
        assert_eq!(region.page(2)[5], 0x11);
        assert_eq!(region.page(2)[6], 0xAB);
        // Untouched pages have no twin.
        assert!(region.twin(0).is_none());
    }

    #[test]
    fn subsequent_writes_do_not_retrap() {
        let mut region = ProtectedRegion::new(1).unwrap();
        region.protect_all().unwrap();
        // SAFETY: offsets 0 and 1 are inside the single mapped page.
        unsafe {
            std::ptr::write_volatile(region.base_ptr(), 1u8);
            std::ptr::write_volatile(region.base_ptr().add(1), 2u8);
        }
        assert_eq!(region.dirty_pages(), vec![0]);
        // The twin reflects the state before the *first* write only.
        assert_eq!(region.twin(0).unwrap()[0], 0);
        assert_eq!(region.twin(0).unwrap()[1], 0);
    }

    #[test]
    fn reprotect_resets_dirty_state() {
        let mut region = ProtectedRegion::new(2).unwrap();
        region.protect_all().unwrap();
        // SAFETY: writing inside page 1.
        unsafe { std::ptr::write_volatile(region.base_ptr().add(region.page_size()), 7u8) };
        assert_eq!(region.dirty_pages(), vec![1]);
        region.protect_all().unwrap();
        assert!(region.dirty_pages().is_empty());
        // A new write traps again and snapshots the *current* contents.
        // SAFETY: same page as above.
        unsafe { std::ptr::write_volatile(region.base_ptr().add(region.page_size()), 9u8) };
        assert_eq!(region.twin(1).unwrap()[0], 7);
    }

    /// Callback-mode region: faults are routed to the callback with the
    /// faulting offset and access kind, and the callback's own rights
    /// transitions resolve them. Read-vs-write decoding is x86_64/glibc-only.
    #[test]
    #[cfg(all(target_arch = "x86_64", target_env = "gnu"))]
    fn callback_receives_offset_and_access_kind() {
        use std::sync::Mutex;

        static FAULTS: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());

        let region = std::sync::Arc::new_cyclic(|weak: &std::sync::Weak<ProtectedRegion>| {
            let weak = weak.clone();
            ProtectedRegion::with_callback(
                2,
                Box::new(move |offset, is_write| {
                    FAULTS.lock().unwrap().push((offset, is_write));
                    let Some(region) = weak.upgrade() else {
                        return false;
                    };
                    let page = offset / region.page_size();
                    region.set_rights(page, 1, PageRights::ReadWrite).unwrap();
                    true
                }),
            )
            .unwrap()
        });
        let ps = region.page_size();
        // Page 0 unreadable, page 1 read-only.
        region.set_rights(0, 1, PageRights::None).unwrap();
        region.set_rights(1, 1, PageRights::Read).unwrap();
        // A read of page 0 traps as a read fault; a write of page 1 traps as
        // a write fault; after the callback grants rights, both complete.
        // SAFETY: offsets lie inside the mapped region.
        unsafe {
            let v = std::ptr::read_volatile(region.base_ptr().add(3));
            assert_eq!(v, 0);
            std::ptr::write_volatile(region.base_ptr().add(ps + 5), 42);
            assert_eq!(std::ptr::read_volatile(region.base_ptr().add(ps + 5)), 42);
        }
        let faults = FAULTS.lock().unwrap().clone();
        assert_eq!(faults, vec![(3, false), (ps + 5, true)]);
    }

    /// `set_rights` transitions compose: a page can go invalid → read-only →
    /// writable and back, and reads of a read-only page never trap.
    #[test]
    fn set_rights_full_ladder() {
        let mut region = ProtectedRegion::new(1).unwrap();
        // SAFETY: in-bounds write while the region is fully writable.
        unsafe { std::ptr::write_volatile(region.base_ptr(), 9) };
        region.set_rights(0, 1, PageRights::Read).unwrap();
        // SAFETY: in-bounds read of a PROT_READ page — must not fault.
        assert_eq!(unsafe { std::ptr::read_volatile(region.base_ptr()) }, 9);
        region.set_rights(0, 1, PageRights::ReadWrite).unwrap();
        // SAFETY: in-bounds write of a writable page — must not fault (and
        // must not reach the legacy twin machinery: protect_all not called).
        unsafe { std::ptr::write_volatile(region.base_ptr(), 11) };
        assert!(region.dirty_pages().is_empty());
        // Legacy twin cycle still works after manual transitions.
        region.protect_all().unwrap();
        // SAFETY: in-bounds write to a protected page (legacy twin path).
        unsafe { std::ptr::write_volatile(region.base_ptr(), 12) };
        assert_eq!(region.dirty_pages(), vec![0]);
        assert_eq!(region.twin(0).unwrap()[0], 11);
    }

    #[test]
    fn diffing_a_twin_matches_the_core_encoder_expectations() {
        // The twin produced by the trap is exactly what munin-core's diff
        // encoder consumes: only the written word differs.
        let mut region = ProtectedRegion::new(1).unwrap();
        region.protect_all().unwrap();
        // SAFETY: writing a u32 at word 3 of the mapped page.
        unsafe {
            let p = region.base_ptr().add(12) as *mut u32;
            std::ptr::write_volatile(p, 0xDEAD_BEEF);
        }
        let twin = region.twin(0).unwrap().to_vec();
        let current = region.page(0).to_vec();
        let changed: Vec<usize> = (0..current.len() / 4)
            .filter(|w| current[w * 4..w * 4 + 4] != twin[w * 4..w * 4 + 4])
            .collect();
        assert_eq!(changed, vec![3]);
    }
}
